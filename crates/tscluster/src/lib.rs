//! Baseline clustering algorithms for the k-Shape evaluation
//! (Sections 2.4, 4, and 5 of the paper).
//!
//! Scalable baselines (Table 3):
//!
//! * [`kmeans`] — the k-means / k-AVG family with a pluggable distance and
//!   arithmetic-mean centroids (`k-AVG+ED`, `k-AVG+SBD`, `k-AVG+DTW`),
//! * [`dba`] — DTW Barycenter Averaging and the `k-DBA` algorithm,
//! * [`ksc`] — K-Spectral Centroid clustering (Yang & Leskovec).
//!
//! Non-scalable baselines (Table 4):
//!
//! * [`pam`] — Partitioning Around Medoids (k-medoids),
//! * [`hierarchical`] — agglomerative clustering with single / average /
//!   complete linkage,
//! * [`spectral`] — normalized spectral clustering (Ng–Jordan–Weiss).
//!
//! [`averaging`] adds the earlier DTW averaging schemes the paper reviews
//! in Section 2.5 (NLAAF, PSA) so the averaging design space is complete;
//! [`fuzzy`] adds the Golay-style fuzzy c-means the related work cites
//! ([28]), parameterized by any distance.
//!
//! [`matrix`] computes the full dissimilarity matrices the non-scalable
//! methods require — the very cost that makes them impractical, which the
//! runtime experiments quantify.
//!
//! Every clusterer ships a fallible `try_*` twin (`try_kmeans`,
//! `try_kdba`, `try_ksc`, `try_pam`, `try_hierarchical_cluster`,
//! `try_spectral_cluster`, `try_fuzzy_cmeans`) that validates inputs once
//! up front and returns a typed [`tserror::TsError`] instead of
//! panicking; the panicking entry points are thin wrappers kept for
//! backward compatibility.
//!
//! Every iterative loop additionally ships a `*_with_control` variant
//! that threads a [`tsrun::RunControl`] through the refinement, the
//! pairwise-matrix builders, and the hierarchical merging: deadlines,
//! iteration caps, cost quotas, and cooperative cancellation all surface
//! as a typed [`tserror::TsError::Stopped`] carrying the best labels so
//! far. [`ladder`] composes these into a degradation ladder
//! (k-Shape → SBD-medoid → k-AVG) with retry-with-reseed per rung.

#![warn(missing_docs)]

pub mod averaging;
pub mod dba;
pub mod fuzzy;
pub mod hierarchical;
pub mod kmeans;
pub mod ksc;
pub mod ladder;
pub mod matrix;
pub mod pam;
pub mod spectral;

pub use hierarchical::Linkage;
pub use kmeans::{kmeans, try_kmeans, KMeansConfig, KMeansResult};
pub use ladder::{cluster_with_ladder, LadderConfig, LadderOutcome, LadderRung};
pub use tserror::{TsError, TsResult};
