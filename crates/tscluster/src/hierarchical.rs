//! Agglomerative hierarchical clustering with single, average, and
//! complete linkage — the `H-S`, `H-A`, `H-C` baselines of Table 4.
//!
//! Starts from singleton clusters and repeatedly merges the closest pair
//! under the chosen linkage, updating inter-cluster distances with the
//! Lance–Williams recurrences. The resulting dendrogram is cut at the
//! minimum height producing exactly `k` clusters, as the paper does.

use crate::matrix::DissimilarityMatrix;
use tserror::{ensure_k, TsError, TsResult};
use tsrun::RunControl;

pub use crate::options::HierarchicalOptions;

/// Linkage criterion for merging clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Minimum pairwise distance between members.
    Single,
    /// Unweighted average pairwise distance (UPGMA).
    Average,
    /// Maximum pairwise distance between members.
    Complete,
}

impl Linkage {
    /// Short name matching the paper's table labels.
    #[must_use]
    pub fn short_name(self) -> &'static str {
        match self {
            Linkage::Single => "H-S",
            Linkage::Average => "H-A",
            Linkage::Complete => "H-C",
        }
    }
}

/// Configuration for [`hierarchical_cluster_with`]: the number of flat
/// clusters to cut and the linkage criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchicalConfig {
    /// Number of clusters after cutting the dendrogram.
    pub k: usize,
    /// Linkage criterion used while merging.
    pub linkage: Linkage,
}

impl Default for HierarchicalConfig {
    fn default() -> Self {
        HierarchicalConfig {
            k: 2,
            linkage: Linkage::Average,
        }
    }
}

/// One merge step of the dendrogram.
#[derive(Debug, Clone, Copy)]
pub struct Merge {
    /// First merged cluster id (ids `0..n` are leaves, `n..2n−1` merges).
    pub a: usize,
    /// Second merged cluster id.
    pub b: usize,
    /// Linkage distance at which the merge happened.
    pub height: f64,
}

/// A full agglomeration history over `n` items.
#[derive(Debug, Clone)]
pub struct Dendrogram {
    n: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Number of leaves.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if there are no leaves.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The merge steps, in the order performed (heights are
    /// non-decreasing for complete/average linkage on a metric; single
    /// linkage is always non-decreasing).
    #[must_use]
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Cuts the dendrogram to exactly `k` clusters: applies the first
    /// `n − k` merges.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > n`. See [`Dendrogram::try_cut`] for the
    /// fallible variant.
    #[must_use]
    pub fn cut(&self, k: usize) -> Vec<usize> {
        self.try_cut(k).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible cut: validates `k` up front, never panics.
    ///
    /// # Errors
    ///
    /// [`TsError::InvalidK`] when `k == 0` or `k > n`.
    pub fn try_cut(&self, k: usize) -> TsResult<Vec<usize>> {
        ensure_k(k, self.n)?;
        // Union-find over leaves; apply the first n - k merges.
        let mut parent: Vec<usize> = (0..2 * self.n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (step, merge) in self.merges.iter().enumerate() {
            if step >= self.n - k {
                break;
            }
            let ra = find(&mut parent, merge.a);
            let rb = find(&mut parent, merge.b);
            let id = self.n + step;
            parent[ra] = id;
            parent[rb] = id;
        }
        // Densify root ids to 0..k.
        let mut roots: Vec<usize> = Vec::new();
        Ok((0..self.n)
            .map(|i| {
                let r = find(&mut parent, i);
                match roots.iter().position(|&x| x == r) {
                    Some(p) => p,
                    None => {
                        roots.push(r);
                        roots.len() - 1
                    }
                }
            })
            .collect())
    }
}

/// Builds the dendrogram for a dissimilarity matrix under `linkage`.
///
/// O(n³) naive agglomeration — adequate for the non-scalable baselines
/// whose cost is dominated by the distance matrix anyway.
///
/// # Panics
///
/// Panics if the matrix is empty or holds non-finite entries. See
/// [`try_agglomerate`] for the fallible variant.
#[must_use]
pub fn agglomerate(matrix: &DissimilarityMatrix, linkage: Linkage) -> Dendrogram {
    assert!(!matrix.is_empty(), "cannot agglomerate an empty matrix");
    try_agglomerate(matrix, linkage).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible agglomeration: validates the matrix once up front, never
/// panics.
///
/// # Errors
///
/// [`TsError::EmptyInput`] or [`TsError::NonFinite`] (a corrupt matrix
/// entry).
pub fn try_agglomerate(matrix: &DissimilarityMatrix, linkage: Linkage) -> TsResult<Dendrogram> {
    try_agglomerate_with_control(matrix, linkage, &RunControl::unlimited())
}

/// Budget- and cancellation-aware [`try_agglomerate`]: every merge step
/// charges its O(n²) closest-pair scan, so a deadline on a large matrix
/// trips after a bounded number of merges.
///
/// # Errors
///
/// Everything [`try_agglomerate`] reports, plus [`TsError::Stopped`]
/// when the control trips; since a partial dendrogram has no meaningful
/// flat labeling, the error carries empty labels and `iterations` = the
/// number of merges completed.
pub fn try_agglomerate_with_control(
    matrix: &DissimilarityMatrix,
    linkage: Linkage,
    ctrl: &RunControl,
) -> TsResult<Dendrogram> {
    let n = matrix.len();
    if n == 0 {
        return Err(TsError::EmptyInput);
    }
    matrix.validate_finite()?;

    // Working distance matrix between active clusters.
    let mut d: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..n).map(|j| matrix.get(i, j)).collect())
        .collect();
    // active[i]: cluster id (leaf or merge id) currently in slot i; sizes
    // for average linkage.
    let mut id: Vec<usize> = (0..n).collect();
    let mut size: Vec<usize> = vec![1; n];
    let mut alive: Vec<bool> = vec![true; n];
    let mut merges = Vec::with_capacity(n.saturating_sub(1));

    let scan_cost = (n as u64).saturating_mul(n as u64).max(1);
    for step in 0..n.saturating_sub(1) {
        if let Err(reason) = ctrl.check_iteration(step) {
            return Err(RunControl::stop_error(Vec::new(), step, reason));
        }
        if let Err(reason) = ctrl.charge(scan_cost) {
            return Err(RunControl::stop_error(Vec::new(), step, reason));
        }
        // Find the closest active pair.
        let mut best = f64::INFINITY;
        let mut pair = (0, 0);
        for i in 0..n {
            if !alive[i] {
                continue;
            }
            for j in i + 1..n {
                if !alive[j] {
                    continue;
                }
                if d[i][j] < best {
                    best = d[i][j];
                    pair = (i, j);
                }
            }
        }
        let (i, j) = pair;
        merges.push(Merge {
            a: id[i],
            b: id[j],
            height: best,
        });

        // Merge j into i with Lance–Williams updates.
        for l in 0..n {
            if !alive[l] || l == i || l == j {
                continue;
            }
            let dil = d[i][l];
            let djl = d[j][l];
            let new = match linkage {
                Linkage::Single => dil.min(djl),
                Linkage::Complete => dil.max(djl),
                Linkage::Average => {
                    let si = size[i] as f64;
                    let sj = size[j] as f64;
                    (si * dil + sj * djl) / (si + sj)
                }
            };
            d[i][l] = new;
            d[l][i] = new;
        }
        size[i] += size[j];
        alive[j] = false;
        id[i] = n + step;
    }

    Ok(Dendrogram { n, merges })
}

/// Agglomerates and cuts to `config.k` flat clusters in one call, with
/// optional budget, cancellation, and observability carried by
/// [`HierarchicalOptions`].
///
/// Emits a `hierarchical.fit` span and a `hierarchical.merges` counter
/// when a recorder is attached; the clustering itself is bit-identical
/// armed or disarmed.
///
/// # Errors
///
/// [`TsError::EmptyInput`], [`TsError::NonFinite`],
/// [`TsError::InvalidK`], or [`TsError::Stopped`] when the attached
/// control trips.
///
/// # Examples
///
/// ```
/// use tscluster::hierarchical::{hierarchical_cluster_with, HierarchicalOptions, Linkage};
/// use tscluster::matrix::DissimilarityMatrix;
/// use tsdist::EuclideanDistance;
///
/// let series: Vec<Vec<f64>> = vec![vec![0.0], vec![0.1], vec![9.0], vec![9.1]];
/// let matrix = DissimilarityMatrix::compute(&series, &EuclideanDistance);
/// let opts = HierarchicalOptions::new(2).with_linkage(Linkage::Single);
/// let labels = hierarchical_cluster_with(&matrix, &opts).unwrap();
/// assert_eq!(labels[0], labels[1]);
/// assert_ne!(labels[0], labels[2]);
/// ```
pub fn hierarchical_cluster_with(
    matrix: &DissimilarityMatrix,
    opts: &HierarchicalOptions<'_>,
) -> TsResult<Vec<usize>> {
    let ctrl = opts.control();
    let obs = opts.obs();
    let fit_span = obs.span(HierarchicalOptions::FIT_SPAN);
    let dendro = try_agglomerate_with_control(matrix, opts.config.linkage, &ctrl)?;
    obs.counter("hierarchical.merges", dendro.merges().len() as u64);
    let labels = dendro.try_cut(opts.config.k)?;
    fit_span.end();
    ctrl.report_cost(obs);
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::{agglomerate, hierarchical_cluster_with, HierarchicalOptions, Linkage};
    use crate::matrix::DissimilarityMatrix;
    use tsdist::EuclideanDistance;

    fn cluster(m: &DissimilarityMatrix, linkage: Linkage, k: usize) -> Vec<usize> {
        hierarchical_cluster_with(m, &HierarchicalOptions::new(k).with_linkage(linkage))
            .expect("clean matrix")
    }

    fn line_points(values: &[f64]) -> DissimilarityMatrix {
        let series: Vec<Vec<f64>> = values.iter().map(|&v| vec![v]).collect();
        DissimilarityMatrix::compute(&series, &EuclideanDistance)
    }

    #[test]
    fn merges_closest_first() {
        let m = line_points(&[0.0, 0.1, 5.0, 9.0]);
        let dendro = agglomerate(&m, Linkage::Single);
        let first = dendro.merges()[0];
        assert!((first.height - 0.1).abs() < 1e-12);
        assert!(
            (first.a == 0 && first.b == 1) || (first.a == 1 && first.b == 0),
            "first merge {first:?}"
        );
    }

    #[test]
    fn cut_to_two_separates_groups() {
        let m = line_points(&[0.0, 0.2, 0.4, 10.0, 10.2, 10.4]);
        for linkage in [Linkage::Single, Linkage::Average, Linkage::Complete] {
            let labels = cluster(&m, linkage, 2);
            assert_eq!(labels[0], labels[1]);
            assert_eq!(labels[1], labels[2]);
            assert_eq!(labels[3], labels[4]);
            assert_eq!(labels[4], labels[5]);
            assert_ne!(labels[0], labels[3], "{linkage:?}");
        }
    }

    #[test]
    fn cut_k_one_and_k_n() {
        let m = line_points(&[1.0, 2.0, 3.0]);
        let dendro = agglomerate(&m, Linkage::Average);
        assert!(dendro.cut(1).iter().all(|&l| l == 0));
        let all = dendro.cut(3);
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn single_linkage_chains_but_complete_does_not() {
        // A chain of points: 0, 1, 2, ..., 7 spaced 1 apart, plus a pair
        // far away. Single linkage keeps the chain together at k=2;
        // complete linkage may split it, but the far pair is always apart.
        let m = line_points(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 100.0, 101.0]);
        let single = cluster(&m, Linkage::Single, 2);
        assert!(single[..6].iter().all(|&l| l == single[0]));
        assert_eq!(single[6], single[7]);
        assert_ne!(single[0], single[6]);
    }

    #[test]
    fn average_linkage_heights_nondecreasing() {
        let m = line_points(&[0.0, 0.5, 1.8, 4.0, 8.5, 9.0]);
        let dendro = agglomerate(&m, Linkage::Average);
        let heights: Vec<f64> = dendro.merges().iter().map(|mg| mg.height).collect();
        for w in heights.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "{heights:?}");
        }
    }

    #[test]
    fn deterministic() {
        let m = line_points(&[3.0, 1.0, 4.0, 1.5, 9.0, 2.6]);
        let a = cluster(&m, Linkage::Complete, 3);
        let b = cluster(&m, Linkage::Complete, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn singleton_input() {
        let m = line_points(&[42.0]);
        let dendro = agglomerate(&m, Linkage::Single);
        assert!(dendro.merges().is_empty());
        assert_eq!(dendro.cut(1), vec![0]);
    }

    #[test]
    #[should_panic(expected = "k must not exceed")]
    fn cut_rejects_large_k() {
        let m = line_points(&[1.0, 2.0]);
        let _ = agglomerate(&m, Linkage::Single).cut(3);
    }

    #[test]
    fn try_variants_match_and_report_typed_errors() {
        use super::try_agglomerate;
        use tserror::TsError;
        let m = line_points(&[0.0, 0.2, 10.0, 10.2]);
        let a = cluster(&m, Linkage::Average, 2);
        assert_eq!(a.len(), 4);
        assert!(matches!(
            try_agglomerate(&DissimilarityMatrix::from_full(0, vec![]), Linkage::Single),
            Err(TsError::EmptyInput)
        ));
        let corrupt = DissimilarityMatrix::from_full(2, vec![0.0, f64::INFINITY, 1.0, 0.0]);
        assert!(matches!(
            try_agglomerate(&corrupt, Linkage::Complete),
            Err(TsError::NonFinite {
                series: 0,
                index: 1
            })
        ));
        let dendro = try_agglomerate(&m, Linkage::Single).expect("clean matrix");
        assert!(matches!(
            dendro.try_cut(0),
            Err(TsError::InvalidK { k: 0, .. })
        ));
        assert!(matches!(
            dendro.try_cut(5),
            Err(TsError::InvalidK { k: 5, n: 4 })
        ));
    }

    #[test]
    fn hierarchical_with_matches_and_emits_telemetry() {
        let m = line_points(&[0.0, 0.2, 0.4, 10.0, 10.2, 10.4]);
        for linkage in [Linkage::Single, Linkage::Average, Linkage::Complete] {
            let old = cluster(&m, linkage, 2);
            let sink = tsobs::MemorySink::new();
            let opts = HierarchicalOptions::new(2)
                .with_linkage(linkage)
                .with_recorder(&sink);
            let new = hierarchical_cluster_with(&m, &opts).expect("clean matrix");
            assert_eq!(old, new, "{linkage:?}");
            assert_eq!(sink.span_count(HierarchicalOptions::FIT_SPAN), 1);
            assert_eq!(sink.counter_total("hierarchical.merges"), 5);
        }
        let bad = HierarchicalOptions::new(0);
        assert!(hierarchical_cluster_with(&m, &bad).is_err());
    }
}
