//! Normalized spectral clustering (Ng, Jordan & Weiss, NIPS 2002) — the
//! `S+ED`, `S+cDTW`, `S+SBD` baselines of Table 4.
//!
//! Pipeline:
//!
//! 1. Gaussian affinity `A_ij = exp(−d_ij² / (2σ²))` with `A_ii = 0`,
//!    `σ` set by the median-distance heuristic (no per-dataset tuning, in
//!    keeping with the paper's unsupervised setting),
//! 2. symmetric normalized Laplacian `L = D^{-1/2} A D^{-1/2}`,
//! 3. top-`k` eigenvectors of `L` (via the `tslinalg` symmetric solver),
//! 4. row normalization of the spectral embedding,
//! 5. k-means (Euclidean) on the embedded rows.

use tsrand::StdRng;

use kshape::init::random_assignment;
use tslinalg::eigen::symmetric_eigen;
use tslinalg::matrix::Matrix;

use crate::matrix::DissimilarityMatrix;

/// Configuration for spectral clustering.
#[derive(Debug, Clone, Copy)]
pub struct SpectralConfig {
    /// Number of clusters (and of spectral embedding dimensions).
    pub k: usize,
    /// Maximum k-means iterations on the embedding.
    pub max_iter: usize,
    /// RNG seed for the embedding k-means.
    pub seed: u64,
    /// Optional kernel bandwidth; `None` uses the median-distance
    /// heuristic.
    pub sigma: Option<f64>,
}

impl Default for SpectralConfig {
    fn default() -> Self {
        SpectralConfig {
            k: 2,
            max_iter: 100,
            seed: 0,
            sigma: None,
        }
    }
}

/// Median of the strictly-positive off-diagonal distances; 1.0 when all
/// distances are zero (degenerate input).
#[must_use]
pub fn median_bandwidth(matrix: &DissimilarityMatrix) -> f64 {
    let n = matrix.len();
    let mut ds: Vec<f64> = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in i + 1..n {
            let d = matrix.get(i, j);
            if d > 0.0 {
                ds.push(d);
            }
        }
    }
    if ds.is_empty() {
        return 1.0;
    }
    ds.sort_by(|a, b| a.partial_cmp(b).expect("NaN distance"));
    ds[ds.len() / 2]
}

/// Builds the spectral embedding: rows are the row-normalized coordinates
/// of the top-`k` eigenvectors of the normalized Laplacian.
///
/// # Panics
///
/// Panics if the matrix is empty or `k` is 0 or exceeds `n`.
#[must_use]
pub fn spectral_embedding(
    matrix: &DissimilarityMatrix,
    k: usize,
    sigma: Option<f64>,
) -> Vec<Vec<f64>> {
    let n = matrix.len();
    assert!(n > 0, "cannot embed an empty matrix");
    assert!(k > 0 && k <= n, "k must be in 1..=n");
    let sigma = sigma.unwrap_or_else(|| median_bandwidth(matrix));
    let denom = 2.0 * sigma * sigma;

    // Affinity with zero diagonal.
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                let d = matrix.get(i, j);
                a[(i, j)] = (-d * d / denom).exp();
            }
        }
    }
    // L = D^{-1/2} A D^{-1/2}.
    let deg: Vec<f64> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| a[(i, j)])
                .sum::<f64>()
                .max(f64::MIN_POSITIVE)
        })
        .collect();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            l[(i, j)] = a[(i, j)] / (deg[i] * deg[j]).sqrt();
        }
    }

    // Top-k eigenvectors (largest eigenvalues of L).
    let eig = symmetric_eigen(&l);
    let mut rows: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..k).map(|c| eig.vectors[(i, c)]).collect())
        .collect();
    // Row normalization.
    for row in &mut rows {
        let norm: f64 = row.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > 0.0 {
            row.iter_mut().for_each(|v| *v /= norm);
        }
    }
    rows
}

/// Outcome of a spectral clustering run.
#[derive(Debug, Clone)]
pub struct SpectralResult {
    /// Cluster index per item.
    pub labels: Vec<usize>,
    /// Whether the embedding k-means converged.
    pub converged: bool,
    /// Kernel bandwidth actually used.
    pub sigma: f64,
}

/// Runs normalized spectral clustering on a dissimilarity matrix.
///
/// # Panics
///
/// Panics if the matrix is empty or `k` is 0 or exceeds `n`.
#[must_use]
pub fn spectral_cluster(matrix: &DissimilarityMatrix, config: &SpectralConfig) -> SpectralResult {
    let sigma = config.sigma.unwrap_or_else(|| median_bandwidth(matrix));
    let embedding = spectral_embedding(matrix, config.k, Some(sigma));
    let (labels, converged) = embedding_kmeans(&embedding, config.k, config.max_iter, config.seed);
    SpectralResult {
        labels,
        converged,
        sigma,
    }
}

/// Plain Euclidean k-means on embedding rows (kept local: the rows are
/// points, not time series, so the tsdist machinery is not needed).
fn embedding_kmeans(rows: &[Vec<f64>], k: usize, max_iter: usize, seed: u64) -> (Vec<usize>, bool) {
    let n = rows.len();
    let dim = rows[0].len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut labels = random_assignment(n, k, &mut rng);
    let mut centroids = vec![vec![0.0; dim]; k];
    let mut dists = vec![0.0f64; n];
    for _ in 0..max_iter {
        let mut counts = vec![0usize; k];
        for c in &mut centroids {
            c.iter_mut().for_each(|v| *v = 0.0);
        }
        for (row, &l) in rows.iter().zip(labels.iter()) {
            counts[l] += 1;
            for (acc, v) in centroids[l].iter_mut().zip(row.iter()) {
                *acc += v;
            }
        }
        for (j, c) in centroids.iter_mut().enumerate() {
            if counts[j] == 0 {
                let worst = dists
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN"))
                    .map_or(0, |(i, _)| i);
                c.copy_from_slice(&rows[worst]);
                labels[worst] = j;
            } else {
                let inv = 1.0 / counts[j] as f64;
                c.iter_mut().for_each(|v| *v *= inv);
            }
        }
        let mut changed = false;
        for (i, row) in rows.iter().enumerate() {
            let mut best = f64::INFINITY;
            let mut best_j = labels[i];
            for (j, c) in centroids.iter().enumerate() {
                let d: f64 = row
                    .iter()
                    .zip(c.iter())
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                if d < best {
                    best = d;
                    best_j = j;
                }
            }
            dists[i] = best;
            if best_j != labels[i] {
                labels[i] = best_j;
                changed = true;
            }
        }
        if !changed {
            return (labels, true);
        }
    }
    (labels, false)
}

#[cfg(test)]
mod tests {
    use super::{median_bandwidth, spectral_cluster, spectral_embedding, SpectralConfig};
    use crate::matrix::DissimilarityMatrix;
    use tsdist::EuclideanDistance;

    fn two_blob_matrix() -> DissimilarityMatrix {
        let mut series = Vec::new();
        for j in 0..6 {
            series.push(vec![0.0 + j as f64 * 0.05, 0.0]);
            series.push(vec![8.0 - j as f64 * 0.05, 8.0]);
        }
        DissimilarityMatrix::compute(&series, &EuclideanDistance)
    }

    #[test]
    fn median_bandwidth_positive() {
        let m = two_blob_matrix();
        let s = median_bandwidth(&m);
        assert!(s > 0.0);
    }

    #[test]
    fn median_bandwidth_degenerate() {
        let m = DissimilarityMatrix::from_full(2, vec![0.0; 4]);
        assert_eq!(median_bandwidth(&m), 1.0);
    }

    #[test]
    fn embedding_rows_unit_norm() {
        let m = two_blob_matrix();
        let emb = spectral_embedding(&m, 2, None);
        for row in &emb {
            let norm: f64 = row.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn separates_blobs() {
        let m = two_blob_matrix();
        let r = spectral_cluster(
            &m,
            &SpectralConfig {
                k: 2,
                seed: 1,
                ..Default::default()
            },
        );
        for i in (0..12).step_by(2) {
            assert_eq!(r.labels[i], r.labels[0]);
            assert_eq!(r.labels[i + 1], r.labels[1]);
        }
        assert_ne!(r.labels[0], r.labels[1]);
    }

    #[test]
    fn detects_non_convex_rings() {
        // Two concentric rings — the canonical case where spectral beats
        // centroid methods.
        let mut series = Vec::new();
        for i in 0..16 {
            let theta = i as f64 * std::f64::consts::TAU / 16.0;
            series.push(vec![theta.cos(), theta.sin()]);
            series.push(vec![6.0 * theta.cos(), 6.0 * theta.sin()]);
        }
        let m = DissimilarityMatrix::compute(&series, &EuclideanDistance);
        let r = spectral_cluster(
            &m,
            &SpectralConfig {
                k: 2,
                seed: 3,
                sigma: Some(0.8),
                ..Default::default()
            },
        );
        for i in (0..series.len()).step_by(2) {
            assert_eq!(r.labels[i], r.labels[0], "inner ring split");
            assert_eq!(r.labels[i + 1], r.labels[1], "outer ring split");
        }
        assert_ne!(r.labels[0], r.labels[1]);
    }

    #[test]
    fn deterministic_for_seed() {
        let m = two_blob_matrix();
        let cfg = SpectralConfig {
            k: 2,
            seed: 5,
            ..Default::default()
        };
        let a = spectral_cluster(&m, &cfg);
        let b = spectral_cluster(&m, &cfg);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn rejects_bad_k() {
        let m = two_blob_matrix();
        let _ = spectral_embedding(&m, 0, None);
    }
}
