//! Normalized spectral clustering (Ng, Jordan & Weiss, NIPS 2002) — the
//! `S+ED`, `S+cDTW`, `S+SBD` baselines of Table 4.
//!
//! Pipeline:
//!
//! 1. Gaussian affinity `A_ij = exp(−d_ij² / (2σ²))` with `A_ii = 0`,
//!    `σ` set by the median-distance heuristic (no per-dataset tuning, in
//!    keeping with the paper's unsupervised setting),
//! 2. symmetric normalized Laplacian `L = D^{-1/2} A D^{-1/2}`,
//! 3. top-`k` eigenvectors of `L` (via the `tslinalg` symmetric solver),
//! 4. row normalization of the spectral embedding,
//! 5. k-means (Euclidean) on the embedded rows.

use tsrand::StdRng;

use kshape::init::random_assignment;
use tserror::{ensure_k, TsError, TsResult};
use tslinalg::eigen::try_symmetric_eigen;
use tslinalg::matrix::Matrix;
use tsobs::{IterationEvent, Obs};
use tsrun::RunControl;

use crate::matrix::DissimilarityMatrix;
use crate::options::centroid_shift;
pub use crate::options::SpectralOptions;

/// Configuration for spectral clustering.
#[derive(Debug, Clone, Copy)]
pub struct SpectralConfig {
    /// Number of clusters (and of spectral embedding dimensions).
    pub k: usize,
    /// Maximum k-means iterations on the embedding.
    pub max_iter: usize,
    /// RNG seed for the embedding k-means.
    pub seed: u64,
    /// Optional kernel bandwidth; `None` uses the median-distance
    /// heuristic.
    pub sigma: Option<f64>,
}

impl Default for SpectralConfig {
    fn default() -> Self {
        SpectralConfig {
            k: 2,
            max_iter: 100,
            seed: 0,
            sigma: None,
        }
    }
}

/// Median of the strictly-positive off-diagonal distances; 1.0 when all
/// distances are zero (degenerate input).
#[must_use]
pub fn median_bandwidth(matrix: &DissimilarityMatrix) -> f64 {
    let n = matrix.len();
    let mut ds: Vec<f64> = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in i + 1..n {
            let d = matrix.get(i, j);
            if d > 0.0 {
                ds.push(d);
            }
        }
    }
    if ds.is_empty() {
        return 1.0;
    }
    ds.sort_by(f64::total_cmp);
    ds[ds.len() / 2]
}

/// Builds the spectral embedding: rows are the row-normalized coordinates
/// of the top-`k` eigenvectors of the normalized Laplacian.
///
/// # Panics
///
/// Panics if the matrix is empty or non-finite, `k` is 0 or exceeds `n`,
/// or `sigma` is not strictly positive. See [`try_spectral_embedding`] for
/// the fallible variant.
#[must_use]
pub fn spectral_embedding(
    matrix: &DissimilarityMatrix,
    k: usize,
    sigma: Option<f64>,
) -> Vec<Vec<f64>> {
    assert!(!matrix.is_empty(), "cannot embed an empty matrix");
    try_spectral_embedding(matrix, k, sigma).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible spectral embedding: validates once up front, never panics,
/// and guarantees finite rows.
///
/// # Errors
///
/// [`TsError::EmptyInput`], [`TsError::InvalidK`], [`TsError::NonFinite`]
/// (a corrupt matrix entry), or [`TsError::NumericalFailure`] (a
/// non-positive bandwidth or a degenerate eigen decomposition).
pub fn try_spectral_embedding(
    matrix: &DissimilarityMatrix,
    k: usize,
    sigma: Option<f64>,
) -> TsResult<Vec<Vec<f64>>> {
    let n = matrix.len();
    if n == 0 {
        return Err(TsError::EmptyInput);
    }
    ensure_k(k, n)?;
    matrix.validate_finite()?;
    let sigma = sigma.unwrap_or_else(|| median_bandwidth(matrix));
    if !(sigma.is_finite() && sigma > 0.0) {
        return Err(TsError::NumericalFailure {
            context: format!("spectral bandwidth sigma must be finite and positive, got {sigma}"),
        });
    }
    let rows = spectral_embedding_unchecked(matrix, k, sigma)?;
    if rows.iter().any(|row| row.iter().any(|v| !v.is_finite())) {
        return Err(TsError::NumericalFailure {
            context: "spectral embedding produced non-finite coordinates".into(),
        });
    }
    Ok(rows)
}

/// The embedding pipeline itself, with input preconditions already
/// established. Still fallible: the eigensolver can refuse to converge on
/// pathologically scaled affinities, which surfaces as
/// [`TsError::NumericalFailure`] rather than a panic.
fn spectral_embedding_unchecked(
    matrix: &DissimilarityMatrix,
    k: usize,
    sigma: f64,
) -> TsResult<Vec<Vec<f64>>> {
    let n = matrix.len();
    let denom = 2.0 * sigma * sigma;

    // Affinity with zero diagonal.
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                let d = matrix.get(i, j);
                a[(i, j)] = (-d * d / denom).exp();
            }
        }
    }
    // L = D^{-1/2} A D^{-1/2}.
    let deg: Vec<f64> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| a[(i, j)])
                .sum::<f64>()
                .max(f64::MIN_POSITIVE)
        })
        .collect();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            l[(i, j)] = a[(i, j)] / (deg[i] * deg[j]).sqrt();
        }
    }

    // Top-k eigenvectors (largest eigenvalues of L).
    let eig = try_symmetric_eigen(&l)?;
    let mut rows: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..k).map(|c| eig.vectors[(i, c)]).collect())
        .collect();
    // Row normalization.
    for row in &mut rows {
        let norm: f64 = row.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > 0.0 {
            row.iter_mut().for_each(|v| *v /= norm);
        }
    }
    Ok(rows)
}

/// Outcome of a spectral clustering run.
#[derive(Debug, Clone)]
pub struct SpectralResult {
    /// Cluster index per item.
    pub labels: Vec<usize>,
    /// Whether the embedding k-means converged.
    pub converged: bool,
    /// Kernel bandwidth actually used.
    pub sigma: f64,
}

/// Runs normalized spectral clustering through the unified options
/// object, with optional budget / cancellation / telemetry riding on
/// [`SpectralOptions`].
///
/// A non-converged embedding k-means is *not* an error: the returned
/// [`SpectralResult`] carries `converged: false`.
///
/// # Errors
///
/// Everything [`try_spectral_embedding`] reports, plus
/// [`TsError::Stopped`] when the attached budget or cancellation trips.
pub fn spectral_cluster_with(
    matrix: &DissimilarityMatrix,
    opts: &SpectralOptions<'_>,
) -> TsResult<SpectralResult> {
    let ctrl = opts.control();
    let obs = opts.obs();
    let (result, _shifted) = spectral_core(matrix, &opts.config, &ctrl, obs)?;
    ctrl.report_cost(obs);
    Ok(result)
}

/// Shared pipeline: returns the result plus the number of rows that
/// changed cluster in the final embedding k-means iteration.
fn spectral_core(
    matrix: &DissimilarityMatrix,
    config: &SpectralConfig,
    ctrl: &RunControl,
    obs: Obs<'_>,
) -> TsResult<(SpectralResult, usize)> {
    let fit_span = obs.span(SpectralOptions::FIT_SPAN);
    let sigma = config.sigma.unwrap_or_else(|| median_bandwidth(matrix));
    // The eigensolve is the expensive, non-interruptible block: charge its
    // O(n³) cost up front so a tight deadline refuses before entering it.
    let n = matrix.len() as u64;
    if let Err(reason) = ctrl.charge(n.saturating_mul(n).saturating_mul(n)) {
        return Err(RunControl::stop_error(Vec::new(), 0, reason));
    }
    let embed_span = obs.span("spectral.embed");
    let embedding = try_spectral_embedding(matrix, config.k, Some(sigma))?;
    embed_span.end();
    let (labels, converged, shifted) = embedding_kmeans(
        &embedding,
        config.k,
        config.max_iter,
        config.seed,
        ctrl,
        obs,
    )?;
    fit_span.end();
    Ok((
        SpectralResult {
            labels,
            converged,
            sigma,
        },
        shifted,
    ))
}

/// Plain Euclidean k-means on embedding rows (kept local: the rows are
/// points, not time series, so the tsdist machinery is not needed).
/// Returns `(labels, converged, changes in the final iteration)`.
///
/// Budget-polled: one [`RunControl::check_iteration`] per Lloyd pass plus
/// an O(n·k·dim) charge, so the stage participates in deadlines instead
/// of running uncontrolled.
fn embedding_kmeans(
    rows: &[Vec<f64>],
    k: usize,
    max_iter: usize,
    seed: u64,
    ctrl: &RunControl,
    obs: Obs<'_>,
) -> TsResult<(Vec<usize>, bool, usize)> {
    let n = rows.len();
    let dim = rows[0].len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut labels = random_assignment(n, k, &mut rng);
    let mut centroids = vec![vec![0.0; dim]; k];
    let mut dists = vec![0.0f64; n];
    let mut shifted = 0usize;
    let mut prev_centroids: Vec<Vec<f64>> = Vec::new();
    let pass_cost = (n as u64)
        .saturating_mul(k as u64)
        .saturating_mul(dim.max(1) as u64);
    for iter in 0..max_iter {
        if let Err(reason) = ctrl.check_iteration(iter) {
            return Err(RunControl::stop_error(labels, iter, reason));
        }
        if let Err(reason) = ctrl.charge(pass_cost) {
            return Err(RunControl::stop_error(labels, iter, reason));
        }
        if obs.is_armed() {
            prev_centroids = centroids.clone();
        }
        let mut counts = vec![0usize; k];
        for c in &mut centroids {
            c.iter_mut().for_each(|v| *v = 0.0);
        }
        for (row, &l) in rows.iter().zip(labels.iter()) {
            counts[l] += 1;
            for (acc, v) in centroids[l].iter_mut().zip(row.iter()) {
                *acc += v;
            }
        }
        for (j, c) in centroids.iter_mut().enumerate() {
            if counts[j] == 0 {
                obs.counter("spectral.empty_cluster_reseeds", 1);
                let worst = dists
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map_or(0, |(i, _)| i);
                c.copy_from_slice(&rows[worst]);
                labels[worst] = j;
            } else {
                let inv = 1.0 / counts[j] as f64;
                c.iter_mut().for_each(|v| *v *= inv);
            }
        }
        let mut changed = 0usize;
        for (i, row) in rows.iter().enumerate() {
            let mut best = f64::INFINITY;
            let mut best_j = labels[i];
            for (j, c) in centroids.iter().enumerate() {
                let d: f64 = row
                    .iter()
                    .zip(c.iter())
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                if d < best {
                    best = d;
                    best_j = j;
                }
            }
            dists[i] = best;
            if best_j != labels[i] {
                labels[i] = best_j;
                changed += 1;
            }
        }
        shifted = changed;
        if obs.is_armed() {
            obs.iteration(&IterationEvent {
                algorithm: "spectral",
                iter,
                inertia: dists.iter().map(|d| d * d).sum(),
                moved: changed,
                centroid_shift: centroid_shift(&prev_centroids, &centroids),
            });
        }
        if changed == 0 {
            obs.counter("spectral.iterations", iter as u64 + 1);
            return Ok((labels, true, 0));
        }
    }
    obs.counter("spectral.iterations", max_iter as u64);
    Ok((labels, false, shifted))
}

#[cfg(test)]
mod tests {
    use super::{
        median_bandwidth, spectral_cluster_with, spectral_embedding, SpectralConfig,
        SpectralOptions, SpectralResult,
    };
    use crate::matrix::DissimilarityMatrix;
    use tsdist::EuclideanDistance;

    fn fit(m: &DissimilarityMatrix, cfg: SpectralConfig) -> SpectralResult {
        spectral_cluster_with(m, &SpectralOptions::from(cfg)).expect("clean matrix")
    }

    fn two_blob_matrix() -> DissimilarityMatrix {
        let mut series = Vec::new();
        for j in 0..6 {
            series.push(vec![0.0 + j as f64 * 0.05, 0.0]);
            series.push(vec![8.0 - j as f64 * 0.05, 8.0]);
        }
        DissimilarityMatrix::compute(&series, &EuclideanDistance)
    }

    #[test]
    fn median_bandwidth_positive() {
        let m = two_blob_matrix();
        let s = median_bandwidth(&m);
        assert!(s > 0.0);
    }

    #[test]
    fn median_bandwidth_degenerate() {
        let m = DissimilarityMatrix::from_full(2, vec![0.0; 4]);
        assert_eq!(median_bandwidth(&m), 1.0);
    }

    #[test]
    fn embedding_rows_unit_norm() {
        let m = two_blob_matrix();
        let emb = spectral_embedding(&m, 2, None);
        for row in &emb {
            let norm: f64 = row.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn separates_blobs() {
        let m = two_blob_matrix();
        let r = fit(
            &m,
            SpectralConfig {
                k: 2,
                seed: 1,
                ..Default::default()
            },
        );
        for i in (0..12).step_by(2) {
            assert_eq!(r.labels[i], r.labels[0]);
            assert_eq!(r.labels[i + 1], r.labels[1]);
        }
        assert_ne!(r.labels[0], r.labels[1]);
    }

    #[test]
    fn detects_non_convex_rings() {
        // Two concentric rings — the canonical case where spectral beats
        // centroid methods.
        let mut series = Vec::new();
        for i in 0..16 {
            let theta = i as f64 * std::f64::consts::TAU / 16.0;
            series.push(vec![theta.cos(), theta.sin()]);
            series.push(vec![6.0 * theta.cos(), 6.0 * theta.sin()]);
        }
        let m = DissimilarityMatrix::compute(&series, &EuclideanDistance);
        let r = fit(
            &m,
            SpectralConfig {
                k: 2,
                seed: 3,
                sigma: Some(0.8),
                ..Default::default()
            },
        );
        for i in (0..series.len()).step_by(2) {
            assert_eq!(r.labels[i], r.labels[0], "inner ring split");
            assert_eq!(r.labels[i + 1], r.labels[1], "outer ring split");
        }
        assert_ne!(r.labels[0], r.labels[1]);
    }

    #[test]
    fn deterministic_for_seed() {
        let m = two_blob_matrix();
        let cfg = SpectralConfig {
            k: 2,
            seed: 5,
            ..Default::default()
        };
        let a = fit(&m, cfg);
        let b = fit(&m, cfg);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn rejects_bad_k() {
        let m = two_blob_matrix();
        let _ = spectral_embedding(&m, 0, None);
    }

    #[test]
    fn options_api_reports_typed_errors() {
        use super::try_spectral_embedding;
        use tserror::TsError;
        let m = two_blob_matrix();
        assert!(matches!(
            try_spectral_embedding(&m, 0, None),
            Err(TsError::InvalidK { k: 0, .. })
        ));
        assert!(matches!(
            try_spectral_embedding(&DissimilarityMatrix::from_full(0, vec![]), 1, None),
            Err(TsError::EmptyInput)
        ));
        let corrupt = DissimilarityMatrix::from_full(2, vec![0.0, 1.0, 1.0, f64::NAN]);
        assert!(matches!(
            spectral_cluster_with(
                &corrupt,
                &SpectralOptions::from(SpectralConfig {
                    k: 1,
                    ..Default::default()
                })
            ),
            Err(TsError::NonFinite {
                series: 1,
                index: 1
            })
        ));
        assert!(matches!(
            try_spectral_embedding(&m, 2, Some(0.0)),
            Err(TsError::NumericalFailure { .. })
        ));
    }

    #[test]
    fn spectral_with_matches_and_emits_telemetry() {
        let m = two_blob_matrix();
        let cfg = SpectralConfig {
            k: 2,
            seed: 1,
            ..Default::default()
        };
        let old = fit(&m, cfg);
        let sink = tsobs::MemorySink::new();
        let new = spectral_cluster_with(&m, &SpectralOptions::from(cfg).with_recorder(&sink))
            .expect("clean matrix");
        assert_eq!(old.labels, new.labels);
        assert_eq!(old.sigma.to_bits(), new.sigma.to_bits());
        let events = sink.iteration_events();
        assert!(!events.is_empty());
        assert!(events.iter().all(|e| e.algorithm == "spectral"));
        assert_eq!(
            events.len() as u64,
            sink.counter_total("spectral.iterations")
        );
        assert_eq!(sink.span_count(SpectralOptions::FIT_SPAN), 1);
        assert_eq!(sink.span_count("spectral.embed"), 1);
        let capped = spectral_cluster_with(&m, &SpectralOptions::from(cfg).with_max_iter(0))
            .expect("cap is Ok");
        assert!(!capped.converged);
    }
}
