//! DTW Barycenter Averaging (Petitjean et al., 2011) and the k-DBA
//! clustering algorithm (Section 2.5 and the `k-DBA` rows of Table 3).
//!
//! DBA iteratively refines an average sequence under DTW: every member is
//! aligned to the current average via the optimal warping path, each
//! average coordinate collects the member coordinates mapped onto it, and
//! the coordinate is replaced by their barycenter (mean).
//!
//! k-DBA is k-means with DTW assignment and DBA refinement. Following the
//! paper's protocol, each clustering iteration performs **one** DBA
//! refinement of the previous centroid (footnote 8 examines doing five).

use tsrand::StdRng;

use kshape::init::random_assignment;
use tsdist::dtw::{dtw_distance, dtw_path};
use tsdist::Distance;
use tserror::{ensure_finite, ensure_k, validate_series_set, TsError, TsResult};
use tsobs::{IterationEvent, Obs};
use tsrun::RunControl;

use crate::options::centroid_shift;
pub use crate::options::KDbaOptions;

/// One DBA refinement: realigns all members to `average` and replaces each
/// coordinate with the barycenter of its associated member coordinates.
///
/// Coordinates that receive no association (impossible with full DTW but
/// kept defensive for banded paths) retain their previous value.
///
/// # Panics
///
/// Panics if lengths differ, `members` is empty, or samples are
/// non-finite. See [`try_dba_refine`] for the fallible variant.
#[must_use]
pub fn dba_refine(members: &[&[f64]], average: &[f64], window: Option<usize>) -> Vec<f64> {
    assert!(!members.is_empty(), "DBA requires at least one member");
    try_dba_refine(members, average, window)
        .unwrap_or_else(|e| panic!("member length must match the average: {e}"))
}

/// Fallible DBA refinement: validates once up front, never panics.
///
/// # Errors
///
/// [`TsError::EmptyInput`] (no members or an empty average),
/// [`TsError::LengthMismatch`], or [`TsError::NonFinite`].
pub fn try_dba_refine(
    members: &[&[f64]],
    average: &[f64],
    window: Option<usize>,
) -> TsResult<Vec<f64>> {
    validate_dba_inputs(members, average)?;
    Ok(dba_refine_unchecked(members, average, window))
}

/// The refinement pass itself, with preconditions already established.
fn dba_refine_unchecked(members: &[&[f64]], average: &[f64], window: Option<usize>) -> Vec<f64> {
    let m = average.len();
    let mut sums = vec![0.0; m];
    let mut counts = vec![0usize; m];
    for member in members {
        let (_, path) = dtw_path(average, member, window);
        for (ai, mi) in path {
            sums[ai] += member[mi];
            counts[ai] += 1;
        }
    }
    sums.iter()
        .zip(counts.iter())
        .zip(average.iter())
        .map(|((&s, &c), &prev)| if c > 0 { s / c as f64 } else { prev })
        .collect()
}

/// Checks the shared DBA preconditions: at least one member, non-empty
/// average, member lengths equal to the average, finite samples.
fn validate_dba_inputs(members: &[&[f64]], average: &[f64]) -> TsResult<()> {
    if members.is_empty() || average.is_empty() {
        return Err(TsError::EmptyInput);
    }
    ensure_finite(average, 0)?;
    for (i, member) in members.iter().enumerate() {
        if member.len() != average.len() {
            return Err(TsError::LengthMismatch {
                expected: average.len(),
                found: member.len(),
                series: i,
            });
        }
        ensure_finite(member, i)?;
    }
    Ok(())
}

/// Full DBA: starts from `initial` and applies `refinements` refinement
/// passes.
///
/// # Panics
///
/// Panics if lengths differ, `members` is empty, or samples are
/// non-finite. See [`try_dba_average`] for the fallible variant.
#[must_use]
pub fn dba_average(
    members: &[&[f64]],
    initial: &[f64],
    refinements: usize,
    window: Option<usize>,
) -> Vec<f64> {
    assert!(!members.is_empty(), "DBA requires at least one member");
    try_dba_average(members, initial, refinements, window)
        .unwrap_or_else(|e| panic!("member length must match the average: {e}"))
}

/// Fallible full DBA: validates once, then runs all refinement passes
/// without re-validating (means of finite samples stay finite).
///
/// # Errors
///
/// Same as [`try_dba_refine`].
pub fn try_dba_average(
    members: &[&[f64]],
    initial: &[f64],
    refinements: usize,
    window: Option<usize>,
) -> TsResult<Vec<f64>> {
    validate_dba_inputs(members, initial)?;
    let mut avg = initial.to_vec();
    for _ in 0..refinements {
        avg = dba_refine_unchecked(members, &avg, window);
    }
    Ok(avg)
}

/// Configuration for k-DBA.
#[derive(Debug, Clone, Copy)]
pub struct KDbaConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum clustering iterations.
    pub max_iter: usize,
    /// RNG seed.
    pub seed: u64,
    /// DBA refinements per clustering iteration (the paper's default is 1).
    pub refinements_per_iter: usize,
    /// Optional Sakoe–Chiba window for all DTW computations.
    pub window: Option<usize>,
}

impl Default for KDbaConfig {
    fn default() -> Self {
        KDbaConfig {
            k: 2,
            max_iter: 100,
            seed: 0,
            refinements_per_iter: 1,
            window: None,
        }
    }
}

/// Outcome of a k-DBA run.
#[derive(Debug, Clone)]
pub struct KDbaResult {
    /// Cluster index per series.
    pub labels: Vec<usize>,
    /// DBA centroid per cluster.
    pub centroids: Vec<Vec<f64>>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether memberships converged before the cap.
    pub converged: bool,
    /// Final sum of squared DTW assignment distances.
    pub inertia: f64,
}

/// Runs k-DBA through the unified options object: DTW assignment, DBA
/// centroid refinement, and optional budget / cancellation / telemetry
/// riding on [`KDbaOptions`].
///
/// Hitting the iteration cap is *not* an error: the returned
/// [`KDbaResult`] carries `converged: false`.
///
/// # Errors
///
/// [`TsError::EmptyInput`], [`TsError::LengthMismatch`],
/// [`TsError::NonFinite`], [`TsError::InvalidK`], or
/// [`TsError::Stopped`] when the attached budget or cancellation trips.
pub fn kdba_with(series: &[Vec<f64>], opts: &KDbaOptions<'_>) -> TsResult<KDbaResult> {
    let ctrl = opts.control();
    let obs = opts.obs();
    let (result, _shifted) = kdba_core(series, &opts.config, &ctrl, obs)?;
    ctrl.report_cost(obs);
    Ok(result)
}

/// Shared k-DBA iteration: returns the result plus the number of series
/// that changed cluster in the final iteration.
fn kdba_core(
    series: &[Vec<f64>],
    config: &KDbaConfig,
    ctrl: &RunControl,
    obs: Obs<'_>,
) -> TsResult<(KDbaResult, usize)> {
    let n = series.len();
    let m = validate_series_set(series)?;
    ensure_k(config.k, n)?;
    let fit_span = obs.span(KDbaOptions::FIT_SPAN);
    let mut prev_centroids: Vec<Vec<f64>> = Vec::new();

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut labels = random_assignment(n, config.k, &mut rng);
    // Initialize centroids as the arithmetic means of the random clusters.
    let mut centroids = vec![vec![0.0; m]; config.k];
    let mut dists = vec![0.0f64; n];

    let mut iterations = 0;
    let mut converged = false;
    let mut shifted = 0usize;
    let dtw_cost = tsdist::dtw::Dtw {
        window: config.window,
    }
    .cost_hint(m);
    while iterations < config.max_iter {
        if let Err(reason) = ctrl.check_iteration(iterations) {
            return Err(RunControl::stop_error(labels, iterations, reason));
        }
        iterations += 1;
        if obs.is_armed() {
            prev_centroids = centroids.clone();
        }

        #[allow(clippy::needless_range_loop)]
        for j in 0..config.k {
            let members: Vec<&[f64]> = series
                .iter()
                .zip(labels.iter())
                .filter(|&(_, &l)| l == j)
                .map(|(s, _)| s.as_slice())
                .collect();
            if members.is_empty() {
                obs.counter("kdba.empty_cluster_reseeds", 1);
                let worst = dists
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map_or(0, |(i, _)| i);
                labels[worst] = j;
                centroids[j] = series[worst].clone();
                continue;
            }
            if iterations == 1 {
                // First pass: seed with the arithmetic mean, then refine.
                let mut mean = vec![0.0; m];
                for s in &members {
                    for (a, v) in mean.iter_mut().zip(s.iter()) {
                        *a += v / members.len() as f64;
                    }
                }
                centroids[j] = mean;
            }
            // Preconditions hold: series were validated and DBA barycenters
            // of finite members stay finite.
            for _ in 0..config.refinements_per_iter {
                // One DTW alignment per member per refinement pass.
                if let Err(reason) = ctrl.charge(members.len() as u64 * dtw_cost) {
                    return Err(RunControl::stop_error(labels, iterations - 1, reason));
                }
                centroids[j] = dba_refine_unchecked(&members, &centroids[j], config.window);
            }
        }

        let mut changed = 0usize;
        for (i, s) in series.iter().enumerate() {
            if let Err(reason) = ctrl.charge(config.k as u64 * dtw_cost) {
                return Err(RunControl::stop_error(labels, iterations - 1, reason));
            }
            let mut best = f64::INFINITY;
            let mut best_j = labels[i];
            for (j, c) in centroids.iter().enumerate() {
                let d = dtw_distance(s, c, config.window);
                if d < best {
                    best = d;
                    best_j = j;
                }
            }
            dists[i] = best;
            if best_j != labels[i] {
                labels[i] = best_j;
                changed += 1;
            }
        }
        shifted = changed;
        if obs.is_armed() {
            obs.iteration(&IterationEvent {
                algorithm: "kdba",
                iter: iterations - 1,
                inertia: dists.iter().map(|d| d * d).sum(),
                moved: changed,
                centroid_shift: centroid_shift(&prev_centroids, &centroids),
            });
        }
        if changed == 0 {
            converged = true;
            break;
        }
    }

    obs.counter("kdba.iterations", iterations as u64);
    fit_span.end();
    Ok((
        KDbaResult {
            labels,
            centroids,
            iterations,
            converged,
            inertia: dists.iter().map(|d| d * d).sum(),
        },
        shifted,
    ))
}

#[cfg(test)]
mod tests {
    use super::{dba_average, dba_refine, kdba_with, KDbaConfig, KDbaOptions};
    use tsdist::dtw::dtw_distance;

    fn bump(m: usize, center: f64) -> Vec<f64> {
        (0..m)
            .map(|i| (-((i as f64 - center) / 2.5).powi(2)).exp())
            .collect()
    }

    #[test]
    fn dba_of_identical_members_is_the_member() {
        let x = bump(32, 16.0);
        let members: Vec<&[f64]> = vec![&x, &x, &x];
        let avg = dba_average(&members, &x, 3, None);
        for (a, b) in avg.iter().zip(x.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn dba_reduces_average_dtw_distance() {
        // Members are phase-shifted bumps; DBA should beat the arithmetic
        // mean as a DTW representative.
        let members_owned: Vec<Vec<f64>> = [12.0, 14.0, 16.0, 18.0, 20.0]
            .iter()
            .map(|&c| bump(48, c))
            .collect();
        let members: Vec<&[f64]> = members_owned.iter().map(Vec::as_slice).collect();
        let mut mean = vec![0.0; 48];
        for s in &members {
            for (a, v) in mean.iter_mut().zip(s.iter()) {
                *a += v / members.len() as f64;
            }
        }
        let refined = dba_average(&members, &mean, 10, None);
        let cost = |c: &[f64]| -> f64 {
            members
                .iter()
                .map(|s| dtw_distance(c, s, None).powi(2))
                .sum()
        };
        assert!(
            cost(&refined) < cost(&mean),
            "DBA {} vs mean {}",
            cost(&refined),
            cost(&mean)
        );
    }

    #[test]
    fn refine_is_a_fixed_point_for_singleton() {
        let x = bump(24, 10.0);
        let members: Vec<&[f64]> = vec![&x];
        let out = dba_refine(&members, &x, None);
        for (a, b) in out.iter().zip(x.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn kdba_separates_shifted_shape_classes() {
        let mut series = Vec::new();
        for j in 0..5 {
            series.push(bump(40, 10.0 + j as f64));
            let neg: Vec<f64> = bump(40, 28.0 + j as f64).iter().map(|v| -v).collect();
            series.push(neg);
        }
        let cfg = KDbaConfig {
            k: 2,
            seed: 4,
            ..Default::default()
        };
        let r = kdba_with(&series, &KDbaOptions::from(cfg)).expect("separable data");
        for i in (0..series.len()).step_by(2) {
            assert_eq!(r.labels[i], r.labels[0], "labels {:?}", r.labels);
            assert_eq!(r.labels[i + 1], r.labels[1], "labels {:?}", r.labels);
        }
        assert_ne!(r.labels[0], r.labels[1]);
    }

    #[test]
    fn kdba_respects_window_config() {
        let series: Vec<Vec<f64>> = (0..6).map(|j| bump(32, 12.0 + j as f64)).collect();
        let cfg = KDbaConfig {
            k: 2,
            seed: 1,
            window: Some(3),
            max_iter: 10,
            ..Default::default()
        };
        let r = kdba_with(&series, &KDbaOptions::from(cfg)).expect("clean input");
        assert_eq!(r.labels.len(), 6);
        assert!(r.iterations <= 10);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn dba_rejects_empty_members() {
        let _ = dba_refine(&[], &[1.0, 2.0], None);
    }

    #[test]
    fn try_variants_match_and_report_typed_errors() {
        use super::{try_dba_average, try_dba_refine};
        use tserror::TsError;
        let x = bump(24, 10.0);
        let members: Vec<&[f64]> = vec![&x];
        let a = dba_refine(&members, &x, None);
        let b = try_dba_refine(&members, &x, None).expect("clean data");
        assert_eq!(a, b);
        assert!(matches!(
            try_dba_refine(&[], &[1.0], None),
            Err(TsError::EmptyInput)
        ));
        assert!(matches!(
            try_dba_average(&members, &[1.0], 2, None),
            Err(TsError::LengthMismatch { series: 0, .. })
        ));
        let bad = [1.0, f64::NAN];
        assert!(matches!(
            try_dba_refine(&[&bad], &[1.0, 2.0], None),
            Err(TsError::NonFinite {
                series: 0,
                index: 1
            })
        ));
        assert!(matches!(
            kdba_with(&[], &KDbaOptions::from(KDbaConfig::default())),
            Err(TsError::EmptyInput)
        ));
        assert!(matches!(
            kdba_with(
                std::slice::from_ref(&x),
                &KDbaOptions::from(KDbaConfig {
                    k: 3,
                    ..Default::default()
                })
            ),
            Err(TsError::InvalidK { k: 3, n: 1 })
        ));
        // Clean, separable data converges.
        let mut series = Vec::new();
        for j in 0..4 {
            series.push(bump(32, 10.0 + j as f64));
            let neg: Vec<f64> = bump(32, 22.0 + j as f64).iter().map(|v| -v).collect();
            series.push(neg);
        }
        let cfg = KDbaConfig {
            k: 2,
            seed: 4,
            ..Default::default()
        };
        let t = kdba_with(&series, &KDbaOptions::from(cfg)).expect("clean data converges");
        assert!(t.converged);
        assert_eq!(t.labels.len(), series.len());
    }

    #[test]
    fn kdba_with_matches_and_emits_telemetry() {
        let mut series = Vec::new();
        for j in 0..5 {
            series.push(bump(40, 10.0 + j as f64));
            let neg: Vec<f64> = bump(40, 28.0 + j as f64).iter().map(|v| -v).collect();
            series.push(neg);
        }
        let cfg = KDbaConfig {
            k: 2,
            seed: 4,
            ..Default::default()
        };
        let old = kdba_with(&series, &KDbaOptions::from(cfg)).expect("clean input");
        let sink = tsobs::MemorySink::new();
        let new =
            kdba_with(&series, &KDbaOptions::from(cfg).with_recorder(&sink)).expect("clean input");
        assert_eq!(old.labels, new.labels);
        let events = sink.iteration_events();
        assert_eq!(events.len(), new.iterations);
        assert!(events.iter().all(|e| e.algorithm == "kdba"));
        assert_eq!(sink.span_count(KDbaOptions::FIT_SPAN), 1);
        // Unconverged runs return Ok under the options API.
        let capped = kdba_with(&series, &KDbaOptions::from(cfg).with_max_iter(0))
            .expect("cap is not an error");
        assert!(!capped.converged);
    }
}
