//! Degradation ladder: k-Shape with graceful fallback.
//!
//! Production pipelines would rather get *a* clustering than a
//! [`TsError::NumericalFailure`]. The ladder runs the paper's preferred
//! method first and, only when it fails numerically after bounded
//! retry-with-reseed, descends to a simpler rung:
//!
//! 1. [`LadderRung::KShape`] — the full algorithm (SBD + shape
//!    extraction),
//! 2. [`LadderRung::SbdMedoid`] — SBD dissimilarity matrix + PAM, which
//!    keeps the paper's distance but swaps the eigen-decomposition
//!    centroid for a medoid (no linear algebra to degenerate),
//! 3. [`LadderRung::KAvg`] — plain k-means with Euclidean distance, the
//!    `k-AVG+ED` baseline that cannot fail numerically on finite input.
//!
//! Semantics, deliberately narrow:
//!
//! * each rung is retried with [`tsrun::retry_with_reseed`] (derived
//!   seeds, capped attempts) before the ladder descends;
//! * [`TsError::NotConverged`] is *not* a failure — the labels are
//!   usable, the outcome records `converged: false`;
//! * [`TsError::Stopped`] and input errors ([`TsError::EmptyInput`],
//!   [`TsError::LengthMismatch`], [`TsError::NonFinite`],
//!   [`TsError::InvalidK`]) propagate immediately: a deadline or a
//!   corrupt input will not improve on a lower rung;
//! * only [`TsError::NumericalFailure`] (after retries) triggers a
//!   descent, and every abandoned rung is recorded in
//!   [`LadderOutcome::descents`] for observability.

use kshape::{KShape, KShapeConfig};
use tsdist::EuclideanDistance;
use tserror::{TsError, TsResult};
use tsrun::{retry_with_reseed, RunControl};

// The deprecated `_with_control` entry points are imported deliberately:
// see the note on `run_rung` below.
#[allow(deprecated)]
use crate::kmeans::try_kmeans_with_control;
use crate::kmeans::KMeansConfig;
use crate::matrix::DissimilarityMatrix;
#[allow(deprecated)]
use crate::pam::try_pam_with_control;

/// One rung of the degradation ladder, ordered from most to least
/// sophisticated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LadderRung {
    /// Full k-Shape (SBD assignment + shape extraction).
    KShape,
    /// SBD dissimilarity matrix + PAM medoids.
    SbdMedoid,
    /// k-means with Euclidean distance (`k-AVG+ED`).
    KAvg,
}

impl LadderRung {
    /// The next rung down, or `None` at the bottom.
    #[must_use]
    pub fn next(self) -> Option<LadderRung> {
        match self {
            LadderRung::KShape => Some(LadderRung::SbdMedoid),
            LadderRung::SbdMedoid => Some(LadderRung::KAvg),
            LadderRung::KAvg => None,
        }
    }

    /// Human-readable rung name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LadderRung::KShape => "k-Shape",
            LadderRung::SbdMedoid => "SBD-medoid",
            LadderRung::KAvg => "k-AVG+ED",
        }
    }
}

/// Configuration for a ladder run.
#[derive(Debug, Clone, Copy)]
pub struct LadderConfig {
    /// Number of clusters.
    pub k: usize,
    /// Iteration cap handed to every rung.
    pub max_iter: usize,
    /// Base RNG seed; retries derive fresh seeds from it.
    pub seed: u64,
    /// Retry attempts per rung before descending (>= 1).
    pub max_attempts_per_rung: u32,
    /// Rung to start from (lets callers skip straight to a fallback).
    pub start: LadderRung,
}

impl Default for LadderConfig {
    fn default() -> Self {
        LadderConfig {
            k: 2,
            max_iter: 100,
            seed: 0,
            max_attempts_per_rung: 3,
            start: LadderRung::KShape,
        }
    }
}

/// A rung the ladder abandoned, with the error that evicted it.
#[derive(Debug)]
pub struct Descent {
    /// The rung that failed.
    pub rung: LadderRung,
    /// Its final (post-retry) numerical failure.
    pub error: TsError,
    /// Attempts spent on the rung before giving up.
    pub attempts: u32,
}

/// Outcome of a ladder run.
#[derive(Debug)]
pub struct LadderOutcome {
    /// Cluster index per series.
    pub labels: Vec<usize>,
    /// The rung that produced the labels.
    pub rung: LadderRung,
    /// Whether that rung's refinement converged before its cap.
    pub converged: bool,
    /// Every rung abandoned on the way down (empty on first-rung success).
    pub descents: Vec<Descent>,
}

/// Labels + convergence flag from one rung attempt.
type RungLabels = (Vec<usize>, bool);

/// Maps a rung result into usable labels: convergence-cap outcomes carry
/// their labels and are accepted, everything else stays an error.
fn accept_not_converged(res: TsResult<RungLabels>) -> TsResult<RungLabels> {
    match res {
        Err(TsError::NotConverged { labels, .. }) => Ok((labels, false)),
        other => other,
    }
}

/// Runs the degradation ladder under an execution control.
///
/// # Errors
///
/// [`TsError::Stopped`] when `ctrl` trips (propagated from whichever rung
/// was running), input errors from validation, or the *last* rung's
/// [`TsError::NumericalFailure`] when even `k-AVG+ED` failed — which on
/// finite input does not happen.
pub fn cluster_with_ladder(
    series: &[Vec<f64>],
    config: &LadderConfig,
    ctrl: &RunControl,
) -> TsResult<LadderOutcome> {
    let mut rung = config.start;
    let mut descents = Vec::new();
    loop {
        let report = retry_with_reseed(
            config.seed,
            config.max_attempts_per_rung.max(1),
            tsrun::default_retryable,
            |seed| run_rung(rung, series, config, seed, ctrl),
        );
        match report.outcome {
            Ok((labels, converged)) => {
                return Ok(LadderOutcome {
                    labels,
                    rung,
                    converged,
                    descents,
                });
            }
            Err(err @ TsError::NumericalFailure { .. }) => match rung.next() {
                Some(lower) => {
                    descents.push(Descent {
                        rung,
                        error: err,
                        attempts: report.attempts,
                    });
                    rung = lower;
                }
                None => return Err(err),
            },
            // Stopped, EmptyInput, NonFinite, ... — descending cannot help.
            Err(err) => return Err(err),
        }
    }
}

/// Executes one rung attempt with the given derived seed.
// The ladder shares one externally-armed RunControl across every rung so
// the whole descent spends a single budget; the options-object API owns
// its control per call and cannot express that, so the `_with_control`
// entry points remain the right tool here.
#[allow(deprecated)]
fn run_rung(
    rung: LadderRung,
    series: &[Vec<f64>],
    config: &LadderConfig,
    seed: u64,
    ctrl: &RunControl,
) -> TsResult<RungLabels> {
    match rung {
        LadderRung::KShape => {
            let ks = KShape::new(KShapeConfig {
                k: config.k,
                max_iter: config.max_iter,
                seed,
                ..KShapeConfig::default()
            });
            accept_not_converged(
                ks.try_fit_with_control(series, ctrl)
                    .map(|r| (r.labels, true)),
            )
        }
        LadderRung::SbdMedoid => {
            // Batched frequency-domain matrix build: every series is
            // FFT'd once into the spectrum cache and pairs are swept over
            // cached spectra, instead of re-transforming both sides of
            // every pair through the generic `Distance` path.
            let data = kshape::spectra::try_sbd_matrix_with_control(
                series,
                kshape::spectra::resolve_threads(0),
                ctrl,
            )?;
            let matrix = DissimilarityMatrix::from_full(series.len(), data);
            accept_not_converged(
                try_pam_with_control(&matrix, config.k, config.max_iter, ctrl)
                    .map(|r| (r.labels, true)),
            )
        }
        LadderRung::KAvg => {
            let cfg = KMeansConfig {
                k: config.k,
                max_iter: config.max_iter,
                seed,
            };
            accept_not_converged(
                try_kmeans_with_control(series, &EuclideanDistance, &cfg, ctrl)
                    .map(|r| (r.labels, true)),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{cluster_with_ladder, LadderConfig, LadderRung};
    use tsrun::{Budget, CancelToken, RunControl};

    fn bump(m: usize, center: f64) -> Vec<f64> {
        (0..m)
            .map(|i| (-((i as f64 - center) / 2.5).powi(2)).exp())
            .collect()
    }

    fn two_class_series() -> Vec<Vec<f64>> {
        let mut series = Vec::new();
        for j in 0..5 {
            series.push(tsdata::normalize::z_normalize(&bump(48, 12.0 + j as f64)));
            let neg: Vec<f64> = bump(48, 32.0 + j as f64).iter().map(|v| -v).collect();
            series.push(tsdata::normalize::z_normalize(&neg));
        }
        series
    }

    #[test]
    fn top_rung_succeeds_on_clean_data() {
        let series = two_class_series();
        let out = cluster_with_ladder(
            &series,
            &LadderConfig {
                seed: 3,
                ..Default::default()
            },
            &RunControl::unlimited(),
        )
        .expect("clean data clusters");
        assert_eq!(out.rung, LadderRung::KShape);
        assert!(out.descents.is_empty());
        assert_eq!(out.labels.len(), series.len());
        assert!(out.labels.iter().all(|&l| l < 2));
    }

    #[test]
    fn start_rung_is_respected() {
        let series = two_class_series();
        for start in [LadderRung::SbdMedoid, LadderRung::KAvg] {
            let out = cluster_with_ladder(
                &series,
                &LadderConfig {
                    seed: 1,
                    start,
                    ..Default::default()
                },
                &RunControl::unlimited(),
            )
            .expect("fallback rungs cluster");
            assert_eq!(out.rung, start);
        }
    }

    #[test]
    fn input_errors_propagate_without_descending() {
        let err = cluster_with_ladder(&[], &LadderConfig::default(), &RunControl::unlimited())
            .unwrap_err();
        assert!(matches!(err, tserror::TsError::EmptyInput), "{err:?}");
    }

    #[test]
    fn cancellation_propagates_immediately() {
        let series = two_class_series();
        let token = CancelToken::new();
        token.cancel();
        let ctrl = RunControl::new(Budget::unlimited(), Some(token));
        let err = cluster_with_ladder(&series, &LadderConfig::default(), &ctrl).unwrap_err();
        assert!(
            matches!(
                err,
                tserror::TsError::Stopped {
                    reason: tserror::StopReason::Cancelled,
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn rung_ordering_and_names() {
        assert_eq!(LadderRung::KShape.next(), Some(LadderRung::SbdMedoid));
        assert_eq!(LadderRung::SbdMedoid.next(), Some(LadderRung::KAvg));
        assert_eq!(LadderRung::KAvg.next(), None);
        assert_eq!(LadderRung::KShape.name(), "k-Shape");
        assert_eq!(LadderRung::SbdMedoid.name(), "SBD-medoid");
        assert_eq!(LadderRung::KAvg.name(), "k-AVG+ED");
    }
}
