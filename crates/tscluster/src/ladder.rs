//! Degradation ladder: k-Shape with graceful fallback.
//!
//! Production pipelines would rather get *a* clustering than a
//! [`TsError::NumericalFailure`]. The ladder runs the paper's preferred
//! method first and, only when it fails numerically after bounded
//! retry-with-reseed, descends to a simpler rung:
//!
//! 1. [`LadderRung::KShape`] — the full algorithm (SBD + shape
//!    extraction),
//! 2. [`LadderRung::SbdMedoid`] — SBD dissimilarity matrix + PAM, which
//!    keeps the paper's distance but swaps the eigen-decomposition
//!    centroid for a medoid (no linear algebra to degenerate),
//! 3. [`LadderRung::KAvg`] — plain k-means with Euclidean distance, the
//!    `k-AVG+ED` baseline that cannot fail numerically on finite input.
//!
//! Semantics, deliberately narrow:
//!
//! * each rung is retried with [`tsrun::retry_with_reseed`] (derived
//!   seeds, capped attempts) before the ladder descends;
//! * a rung that hits its iteration cap is *not* a failure — the labels
//!   are usable, the outcome records `converged: false`;
//! * input errors ([`TsError::EmptyInput`], [`TsError::LengthMismatch`],
//!   [`TsError::NonFinite`], [`TsError::InvalidK`]) and cancellation
//!   propagate immediately: neither improves on a lower rung;
//! * [`TsError::NumericalFailure`] (after retries) always triggers a
//!   descent; budget trips ([`TsError::Stopped`] on a deadline /
//!   cost-cap / iteration-cap) additionally descend when
//!   [`LadderConfig::descend_on_stop`] is set — the mode `tsserve` runs
//!   under pressure, where a cheaper answer inside the deadline beats a
//!   partial one. Every abandoned rung is recorded in
//!   [`LadderOutcome::descents`] for observability.
//!
//! # Budget semantics
//!
//! The ladder takes one [`LadderOptions`] (the workspace options-object
//! idiom). A wall-clock budget is a *whole-ladder* deadline: the ladder
//! stamps the deadline when it starts and each rung is armed with the
//! time still remaining (under [`LadderConfig::descend_on_stop`], a
//! non-final rung gets [`LadderConfig::rung_wall_fraction`] of the
//! remainder so a descent still has time to run). Iteration and cost
//! caps apply *per rung attempt* — each attempt arms a fresh control, so
//! a quota describes one fit, not the whole descent.

use std::time::Instant;

use kshape::{KShapeOptions, KShapeResult};
use tsdist::EuclideanDistance;
use tserror::{StopReason, TsError, TsResult};
use tsrun::{retry_with_reseed, Budget, CancelToken, RunControl};

use crate::kmeans::kmeans_with;
use crate::matrix::DissimilarityMatrix;
use crate::options::{KMeansOptions, PamOptions};
use crate::pam::pam_with;

/// One rung of the degradation ladder, ordered from most to least
/// sophisticated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LadderRung {
    /// Full k-Shape (SBD assignment + shape extraction).
    KShape,
    /// SBD dissimilarity matrix + PAM medoids.
    SbdMedoid,
    /// k-means with Euclidean distance (`k-AVG+ED`).
    KAvg,
}

impl LadderRung {
    /// The next rung down, or `None` at the bottom.
    #[must_use]
    pub fn next(self) -> Option<LadderRung> {
        match self {
            LadderRung::KShape => Some(LadderRung::SbdMedoid),
            LadderRung::SbdMedoid => Some(LadderRung::KAvg),
            LadderRung::KAvg => None,
        }
    }

    /// Human-readable rung name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LadderRung::KShape => "k-Shape",
            LadderRung::SbdMedoid => "SBD-medoid",
            LadderRung::KAvg => "k-AVG+ED",
        }
    }

    /// Parses a rung from its [`LadderRung::name`] (for serialized
    /// models and request payloads).
    #[must_use]
    pub fn from_name(name: &str) -> Option<LadderRung> {
        match name {
            "k-Shape" => Some(LadderRung::KShape),
            "SBD-medoid" => Some(LadderRung::SbdMedoid),
            "k-AVG+ED" => Some(LadderRung::KAvg),
            _ => None,
        }
    }
}

/// Configuration for a ladder run.
#[derive(Debug, Clone, Copy)]
pub struct LadderConfig {
    /// Number of clusters.
    pub k: usize,
    /// Iteration cap handed to every rung.
    pub max_iter: usize,
    /// Base RNG seed; retries derive fresh seeds from it.
    pub seed: u64,
    /// Retry attempts per rung before descending (>= 1).
    pub max_attempts_per_rung: u32,
    /// Rung to start from (lets callers skip straight to a fallback).
    pub start: LadderRung,
    /// Also descend when a rung trips its budget (deadline, cost cap,
    /// iteration cap) instead of propagating [`TsError::Stopped`].
    /// Cancellation always propagates — the caller is gone.
    pub descend_on_stop: bool,
    /// Under [`LadderConfig::descend_on_stop`], the fraction of the
    /// remaining wall budget a non-final rung may spend (the final rung
    /// always gets the full remainder). `1.0` gives every rung the full
    /// remainder, which means a deadline-tripped top rung leaves nothing
    /// for the fallbacks; `tsserve` runs at `0.5` so half the deadline
    /// survives each descent. Clamped to `(0, 1]`.
    pub rung_wall_fraction: f64,
}

impl Default for LadderConfig {
    fn default() -> Self {
        LadderConfig {
            k: 2,
            max_iter: 100,
            seed: 0,
            max_attempts_per_rung: 3,
            start: LadderRung::KShape,
            descend_on_stop: false,
            rung_wall_fraction: 1.0,
        }
    }
}

/// Options for [`cluster_with_ladder`]: the ladder configuration plus
/// the three optional execution concerns (budget, cancellation,
/// telemetry), following the workspace options-object idiom.
#[derive(Clone, Default)]
pub struct LadderOptions<'a> {
    /// Ladder configuration (cluster count, rungs, retries, ...).
    pub config: LadderConfig,
    /// Optional whole-ladder execution budget; `None` means unlimited.
    /// See the module docs for how the wall clock is shared across rungs.
    pub budget: Option<Budget>,
    /// Optional cooperative cancellation token (shared by every rung).
    pub cancel: Option<CancelToken>,
    /// Optional telemetry recorder; `None` keeps telemetry disarmed.
    pub recorder: Option<&'a dyn tsobs::Recorder>,
}

impl std::fmt::Debug for LadderOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LadderOptions")
            .field("config", &self.config)
            .field("budget", &self.budget)
            .field("cancel", &self.cancel.is_some())
            .field("recorder", &self.recorder.is_some())
            .finish()
    }
}

impl From<LadderConfig> for LadderOptions<'_> {
    fn from(config: LadderConfig) -> Self {
        Self {
            config,
            ..Default::default()
        }
    }
}

impl<'a> LadderOptions<'a> {
    /// Default configuration with the given cluster count `k`.
    #[must_use]
    pub fn new(k: usize) -> Self {
        LadderOptions::from(LadderConfig {
            k,
            ..LadderConfig::default()
        })
    }

    /// Sets the base RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the per-rung iteration cap.
    #[must_use]
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.config.max_iter = max_iter;
        self
    }

    /// Sets the rung to start from.
    #[must_use]
    pub fn with_start(mut self, start: LadderRung) -> Self {
        self.config.start = start;
        self
    }

    /// Enables descending on budget trips (see
    /// [`LadderConfig::descend_on_stop`]).
    #[must_use]
    pub fn with_descend_on_stop(mut self, descend: bool) -> Self {
        self.config.descend_on_stop = descend;
        self
    }

    /// Attaches a whole-ladder execution budget.
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Attaches a cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Attaches a telemetry recorder.
    #[must_use]
    pub fn with_recorder(mut self, recorder: &'a dyn tsobs::Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }
}

/// A rung the ladder abandoned, with the error that evicted it.
#[derive(Debug)]
pub struct Descent {
    /// The rung that failed.
    pub rung: LadderRung,
    /// Its final (post-retry) error: a numerical failure, or a budget
    /// trip under [`LadderConfig::descend_on_stop`].
    pub error: TsError,
    /// Attempts spent on the rung before giving up.
    pub attempts: u32,
}

/// Outcome of a ladder run.
#[derive(Debug)]
pub struct LadderOutcome {
    /// Cluster index per series.
    pub labels: Vec<usize>,
    /// One centroid per cluster, from the rung that produced the labels
    /// (shape centroids, medoid series, or arithmetic means).
    pub centroids: Vec<Vec<f64>>,
    /// Refinement iterations the winning rung executed.
    pub iterations: usize,
    /// The rung that produced the labels.
    pub rung: LadderRung,
    /// Whether that rung's refinement converged before its cap.
    pub converged: bool,
    /// Every rung abandoned on the way down (empty on first-rung success).
    pub descents: Vec<Descent>,
}

/// Labels + centroids + convergence from one rung attempt.
struct RungFit {
    labels: Vec<usize>,
    centroids: Vec<Vec<f64>>,
    iterations: usize,
    converged: bool,
}

impl From<KShapeResult> for RungFit {
    fn from(r: KShapeResult) -> Self {
        RungFit {
            labels: r.labels,
            centroids: r.centroids,
            iterations: r.iterations,
            converged: r.converged,
        }
    }
}

/// Whether `err` sends the ladder down a rung instead of out.
fn descends(err: &TsError, descend_on_stop: bool) -> bool {
    match err {
        TsError::NumericalFailure { .. } => true,
        TsError::Stopped { reason, .. } => descend_on_stop && *reason != StopReason::Cancelled,
        _ => false,
    }
}

/// The budget a rung attempt is armed with *right now*: iteration/cost
/// caps pass through verbatim, the wall clock becomes the time remaining
/// until the whole-ladder deadline (scaled by `rung_wall_fraction` for
/// non-final rungs under descend-on-stop, so a descent still has time).
fn rung_budget(
    base: Option<Budget>,
    deadline: Option<Instant>,
    config: &LadderConfig,
    is_last_rung: bool,
) -> Option<Budget> {
    let mut budget = base?;
    if let Some(deadline) = deadline {
        let mut remaining = deadline.saturating_duration_since(Instant::now());
        if config.descend_on_stop && !is_last_rung {
            remaining = remaining.mul_f64(config.rung_wall_fraction.clamp(0.01, 1.0));
        }
        budget.wall = Some(remaining);
    }
    Some(budget)
}

/// Runs the degradation ladder.
///
/// # Errors
///
/// [`TsError::Stopped`] when the budget or cancellation trips (from
/// whichever rung was running; under
/// [`LadderConfig::descend_on_stop`] only after the *bottom* rung also
/// tripped), input errors from validation, or the last rung's
/// [`TsError::NumericalFailure`] when even `k-AVG+ED` failed — which on
/// finite input does not happen.
pub fn cluster_with_ladder(
    series: &[Vec<f64>],
    opts: &LadderOptions<'_>,
) -> TsResult<LadderOutcome> {
    let config = opts.config;
    let obs = tsobs::Obs::from_option(opts.recorder);
    // The whole-ladder deadline is stamped once, up front: every rung
    // (and every retry) spends from the same clock.
    let deadline = opts.budget.and_then(|b| b.wall).map(|w| Instant::now() + w);
    let mut rung = config.start;
    let mut descents = Vec::new();
    loop {
        let is_last = rung.next().is_none();
        let report = retry_with_reseed(
            config.seed,
            config.max_attempts_per_rung.max(1),
            tsrun::default_retryable,
            |seed| {
                let budget = rung_budget(opts.budget, deadline, &config, is_last);
                run_rung(rung, series, &config, seed, budget, deadline, opts)
            },
        );
        match report.outcome {
            Ok(fit) => {
                return Ok(LadderOutcome {
                    labels: fit.labels,
                    centroids: fit.centroids,
                    iterations: fit.iterations,
                    rung,
                    converged: fit.converged,
                    descents,
                });
            }
            Err(err) if descends(&err, config.descend_on_stop) => match rung.next() {
                Some(lower) => {
                    obs.counter("ladder.descents", 1);
                    descents.push(Descent {
                        rung,
                        error: err,
                        attempts: report.attempts,
                    });
                    rung = lower;
                }
                None => return Err(err),
            },
            // Cancellation, EmptyInput, NonFinite, ... — descending
            // cannot help.
            Err(err) => return Err(err),
        }
    }
}

/// Executes one rung attempt with the given derived seed and budget.
fn run_rung(
    rung: LadderRung,
    series: &[Vec<f64>],
    config: &LadderConfig,
    seed: u64,
    budget: Option<Budget>,
    deadline: Option<Instant>,
    opts: &LadderOptions<'_>,
) -> TsResult<RungFit> {
    match rung {
        LadderRung::KShape => {
            let mut ks = KShapeOptions::new(config.k)
                .with_seed(seed)
                .with_max_iter(config.max_iter);
            ks.budget = budget;
            ks.cancel = opts.cancel.clone();
            ks.recorder = opts.recorder;
            kshape::KShape::fit_with(series, &ks).map(RungFit::from)
        }
        LadderRung::SbdMedoid => {
            // Batched frequency-domain matrix build: every series is
            // FFT'd once into the spectrum cache and pairs are swept over
            // cached spectra, instead of re-transforming both sides of
            // every pair through the generic `Distance` path.
            let ctrl = RunControl::from_parts(budget, opts.cancel.clone());
            let data = kshape::spectra::try_sbd_matrix_with_control(
                series,
                kshape::spectra::resolve_threads(0),
                &ctrl,
            )?;
            let matrix = DissimilarityMatrix::from_full(series.len(), data);
            // The matrix build spent part of this rung's wall budget;
            // re-derive the remainder for the PAM sweep.
            let is_last = rung.next().is_none();
            let mut pam = PamOptions::new(config.k).with_max_iter(config.max_iter);
            pam.budget = rung_budget(opts.budget, deadline, config, is_last);
            pam.cancel = opts.cancel.clone();
            pam.recorder = opts.recorder;
            pam_with(&matrix, &pam).map(|r| RungFit {
                centroids: r.medoids.iter().map(|&i| series[i].clone()).collect(),
                labels: r.labels,
                iterations: r.iterations,
                converged: r.converged,
            })
        }
        LadderRung::KAvg => {
            let mut km = KMeansOptions::new(config.k)
                .with_seed(seed)
                .with_max_iter(config.max_iter);
            km.budget = budget;
            km.cancel = opts.cancel.clone();
            km.recorder = opts.recorder;
            kmeans_with(series, &EuclideanDistance, &km).map(|r| RungFit {
                labels: r.labels,
                centroids: r.centroids,
                iterations: r.iterations,
                converged: r.converged,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{cluster_with_ladder, LadderConfig, LadderOptions, LadderRung};
    use std::time::Duration;
    use tsrun::{Budget, CancelToken};

    fn bump(m: usize, center: f64) -> Vec<f64> {
        (0..m)
            .map(|i| (-((i as f64 - center) / 2.5).powi(2)).exp())
            .collect()
    }

    fn two_class_series() -> Vec<Vec<f64>> {
        let mut series = Vec::new();
        for j in 0..5 {
            series.push(tsdata::normalize::z_normalize(&bump(48, 12.0 + j as f64)));
            let neg: Vec<f64> = bump(48, 32.0 + j as f64).iter().map(|v| -v).collect();
            series.push(tsdata::normalize::z_normalize(&neg));
        }
        series
    }

    #[test]
    fn top_rung_succeeds_on_clean_data() {
        let series = two_class_series();
        let out = cluster_with_ladder(&series, &LadderOptions::new(2).with_seed(3))
            .expect("clean data clusters");
        assert_eq!(out.rung, LadderRung::KShape);
        assert!(out.descents.is_empty());
        assert_eq!(out.labels.len(), series.len());
        assert!(out.labels.iter().all(|&l| l < 2));
        assert_eq!(out.centroids.len(), 2);
        assert!(out.centroids.iter().all(|c| c.len() == 48));
    }

    #[test]
    fn start_rung_is_respected() {
        let series = two_class_series();
        for start in [LadderRung::SbdMedoid, LadderRung::KAvg] {
            let out = cluster_with_ladder(
                &series,
                &LadderOptions::new(2).with_seed(1).with_start(start),
            )
            .expect("fallback rungs cluster");
            assert_eq!(out.rung, start);
            assert_eq!(out.centroids.len(), 2);
        }
    }

    #[test]
    fn input_errors_propagate_without_descending() {
        let err = cluster_with_ladder(&[], &LadderOptions::new(2)).unwrap_err();
        assert!(matches!(err, tserror::TsError::EmptyInput), "{err:?}");
    }

    #[test]
    fn cancellation_propagates_immediately() {
        let series = two_class_series();
        let token = CancelToken::new();
        token.cancel();
        // Even with descend_on_stop: the caller is gone, do not descend.
        let opts = LadderOptions::new(2)
            .with_cancel(token)
            .with_descend_on_stop(true);
        let err = cluster_with_ladder(&series, &opts).unwrap_err();
        assert!(
            matches!(
                err,
                tserror::TsError::Stopped {
                    reason: tserror::StopReason::Cancelled,
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn deadline_stop_propagates_by_default() {
        let series = two_class_series();
        let opts =
            LadderOptions::new(2).with_budget(Budget::unlimited().with_deadline(Duration::ZERO));
        let err = cluster_with_ladder(&series, &opts).unwrap_err();
        assert!(
            matches!(
                err,
                tserror::TsError::Stopped {
                    reason: tserror::StopReason::Deadline,
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn descend_on_stop_bottoms_out_bounded() {
        let series = two_class_series();
        let opts = LadderOptions::new(2)
            .with_budget(Budget::unlimited().with_deadline(Duration::ZERO))
            .with_descend_on_stop(true);
        let start = std::time::Instant::now();
        let err = cluster_with_ladder(&series, &opts).unwrap_err();
        assert!(
            matches!(err, tserror::TsError::Stopped { .. }),
            "expired deadline must surface as Stopped even after descending: {err:?}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "descent must stay bounded"
        );
    }

    #[test]
    fn descend_on_stop_lands_on_a_cheaper_rung_given_time() {
        // A deadline long enough for the cheap rungs but tripped by the
        // top rung's per-rung fraction is timing-dependent; instead pin
        // the deterministic contract: a per-rung cost cap that k-Shape
        // exhausts immediately still yields labels from a lower rung,
        // because each rung arms a fresh quota.
        let series = two_class_series();
        let opts = LadderOptions::new(2)
            .with_budget(Budget::unlimited().with_cost_cap(200_000))
            .with_descend_on_stop(true);
        match cluster_with_ladder(&series, &opts) {
            Ok(out) => {
                assert_eq!(out.labels.len(), series.len());
                if out.rung == LadderRung::KShape {
                    assert!(out.descents.is_empty());
                } else {
                    assert!(
                        !out.descents.is_empty(),
                        "landed on {:?} with no record",
                        out.rung
                    );
                }
            }
            Err(err) => {
                assert!(
                    matches!(err, tserror::TsError::Stopped { .. }),
                    "only a budget stop may escape: {err:?}"
                );
            }
        }
    }

    #[test]
    fn rung_ordering_and_names() {
        assert_eq!(LadderRung::KShape.next(), Some(LadderRung::SbdMedoid));
        assert_eq!(LadderRung::SbdMedoid.next(), Some(LadderRung::KAvg));
        assert_eq!(LadderRung::KAvg.next(), None);
        assert_eq!(LadderRung::KShape.name(), "k-Shape");
        assert_eq!(LadderRung::SbdMedoid.name(), "SBD-medoid");
        assert_eq!(LadderRung::KAvg.name(), "k-AVG+ED");
        for rung in [LadderRung::KShape, LadderRung::SbdMedoid, LadderRung::KAvg] {
            assert_eq!(LadderRung::from_name(rung.name()), Some(rung));
        }
        assert_eq!(LadderRung::from_name("nope"), None);
    }

    #[test]
    fn options_builders_compose() {
        let opts = LadderOptions::new(4)
            .with_seed(9)
            .with_max_iter(7)
            .with_start(LadderRung::KAvg)
            .with_descend_on_stop(true)
            .with_budget(Budget::unlimited().with_iteration_cap(3));
        assert_eq!(opts.config.k, 4);
        assert_eq!(opts.config.seed, 9);
        assert_eq!(opts.config.max_iter, 7);
        assert_eq!(opts.config.start, LadderRung::KAvg);
        assert!(opts.config.descend_on_stop);
        assert!(opts.budget.is_some());
        let cfg = LadderConfig::default();
        let from_cfg = LadderOptions::from(cfg);
        assert_eq!(from_cfg.config.k, cfg.k);
        assert!(format!("{from_cfg:?}").contains("LadderOptions"));
    }
}
