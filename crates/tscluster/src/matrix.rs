//! Pairwise dissimilarity matrices.
//!
//! PAM, hierarchical, and spectral clustering all need the full `n × n`
//! dissimilarity matrix — `n(n−1)/2` distance evaluations. This quadratic
//! cost is exactly why the paper calls these methods non-scalable; the
//! experiments measure it, so it is implemented honestly rather than
//! approximated. Rows are computed in parallel with scoped threads.

use tsdist::Distance;
use tserror::{StopReason, TsError, TsResult};
use tsrun::RunControl;

pub use crate::options::MatrixOptions;

/// Configuration for [`DissimilarityMatrix::compute_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixConfig {
    /// Worker threads for the build; `1` keeps it serial.
    pub threads: usize,
}

impl Default for MatrixConfig {
    fn default() -> Self {
        MatrixConfig { threads: 1 }
    }
}

/// A symmetric dissimilarity matrix with zero diagonal.
#[derive(Debug, Clone)]
pub struct DissimilarityMatrix {
    n: usize,
    /// Row-major full storage (kept simple; n is small for these methods).
    data: Vec<f64>,
}

impl DissimilarityMatrix {
    /// Number of items.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if empty.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between items `i` and `j`.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Builds the matrix serially.
    #[must_use]
    pub fn compute<D: Distance + ?Sized>(series: &[Vec<f64>], dist: &D) -> Self {
        let n = series.len();
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            for j in i + 1..n {
                let d = dist.dist(&series[i], &series[j]);
                data[i * n + j] = d;
                data[j * n + i] = d;
            }
        }
        DissimilarityMatrix { n, data }
    }

    /// Builds the matrix with `threads` worker threads (row-striped).
    ///
    /// Falls back to the serial path for `threads <= 1` or tiny inputs.
    #[must_use]
    pub fn compute_parallel<D: Distance + ?Sized>(
        series: &[Vec<f64>],
        dist: &D,
        threads: usize,
    ) -> Self {
        let n = series.len();
        if threads <= 1 || n < 16 {
            return Self::compute(series, dist);
        }
        let mut data = vec![0.0; n * n];
        // Each worker fills complete rows (upper triangle only), striped by
        // row index so the long early rows are spread across workers.
        let rows: Vec<&mut [f64]> = data.chunks_mut(n).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for (t, stripe) in stripes(rows, threads).into_iter().enumerate() {
                handles.push(scope.spawn(move || {
                    for (i, row) in stripe {
                        for (j, s) in series.iter().enumerate().skip(i + 1) {
                            row[j] = dist.dist(&series[i], s);
                        }
                    }
                    t
                }));
            }
            for h in handles {
                h.join().expect("distance worker panicked");
            }
        });
        // Mirror the upper triangle.
        for i in 0..n {
            for j in i + 1..n {
                data[j * n + i] = data[i * n + j];
            }
        }
        DissimilarityMatrix { n, data }
    }

    /// Budget- and cancellation-aware serial build: every pair charges
    /// [`Distance::cost_hint`], so a wall-clock deadline on a quadratic
    /// measure (DTW over thousands of series) trips within a bounded
    /// amount of *work*, not after the whole triangle completes.
    ///
    /// # Errors
    ///
    /// [`TsError::Stopped`] when the control trips; the error carries
    /// empty labels (a partial matrix has no labeling) and `iterations` =
    /// the number of pairs completed.
    pub fn try_compute_with_control<D: Distance + ?Sized>(
        series: &[Vec<f64>],
        dist: &D,
        ctrl: &RunControl,
    ) -> TsResult<Self> {
        let n = series.len();
        let pair_cost = dist.cost_hint(series.first().map_or(1, Vec::len));
        let mut data = vec![0.0; n * n];
        let mut done = 0usize;
        for i in 0..n {
            for j in i + 1..n {
                if let Err(reason) = ctrl.charge(pair_cost) {
                    return Err(RunControl::stop_error(Vec::new(), done, reason));
                }
                let d = dist.dist(&series[i], &series[j]);
                data[i * n + j] = d;
                data[j * n + i] = d;
                done += 1;
            }
        }
        Ok(DissimilarityMatrix { n, data })
    }

    /// Budget- and cancellation-aware parallel build: all workers charge
    /// the shared control, and the first tripped reason wins (cancellation
    /// takes precedence over a deadline).
    ///
    /// # Errors
    ///
    /// [`TsError::Stopped`] as in [`Self::try_compute_with_control`],
    /// with `iterations` = the total pairs completed across workers.
    pub fn try_compute_parallel_with_control<D: Distance + ?Sized>(
        series: &[Vec<f64>],
        dist: &D,
        threads: usize,
        ctrl: &RunControl,
    ) -> TsResult<Self> {
        let n = series.len();
        if threads <= 1 || n < 16 {
            return Self::try_compute_with_control(series, dist, ctrl);
        }
        let pair_cost = dist.cost_hint(series.first().map_or(1, Vec::len));
        let mut data = vec![0.0; n * n];
        let rows: Vec<&mut [f64]> = data.chunks_mut(n).collect();
        let done = std::sync::atomic::AtomicUsize::new(0);
        let mut tripped: Vec<Option<StopReason>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for stripe in stripes(rows, threads) {
                let done = &done;
                handles.push(scope.spawn(move || -> Option<StopReason> {
                    for (i, row) in stripe {
                        for (j, s) in series.iter().enumerate().skip(i + 1) {
                            if let Err(reason) = ctrl.charge(pair_cost) {
                                return Some(reason);
                            }
                            row[j] = dist.dist(&series[i], s);
                            done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                    None
                }));
            }
            for h in handles {
                tripped.push(h.join().expect("distance worker panicked"));
            }
        });
        let reason = tripped.iter().flatten().copied().fold(None, |acc, r| {
            // Cancellation dominates; otherwise keep the first reason seen.
            match (acc, r) {
                (_, StopReason::Cancelled) => Some(StopReason::Cancelled),
                (None, r) => Some(r),
                (acc, _) => acc,
            }
        });
        if let Some(reason) = reason {
            return Err(RunControl::stop_error(
                Vec::new(),
                done.load(std::sync::atomic::Ordering::Relaxed),
                reason,
            ));
        }
        for i in 0..n {
            for j in i + 1..n {
                data[j * n + i] = data[i * n + j];
            }
        }
        Ok(DissimilarityMatrix { n, data })
    }

    /// Builds the matrix with optional budget, cancellation, and
    /// observability carried by [`MatrixOptions`].
    ///
    /// Dispatches to the parallel path when `threads > 1`. Emits a
    /// `matrix.build` span plus `matrix.rows` / `matrix.pairs` counters
    /// when a recorder is attached; the matrix itself is bit-identical
    /// armed or disarmed.
    ///
    /// # Errors
    ///
    /// [`TsError::Stopped`] when the attached control trips.
    ///
    /// # Examples
    ///
    /// ```
    /// use tscluster::matrix::{DissimilarityMatrix, MatrixOptions};
    /// use tsdist::EuclideanDistance;
    ///
    /// let series: Vec<Vec<f64>> = vec![vec![0.0, 1.0], vec![1.0, 0.0], vec![4.0, 4.0]];
    /// let m = DissimilarityMatrix::compute_with(
    ///     &series,
    ///     &EuclideanDistance,
    ///     &MatrixOptions::default(),
    /// )
    /// .unwrap();
    /// assert_eq!(m.len(), 3);
    /// assert_eq!(m.asymmetry(), 0.0);
    /// ```
    pub fn compute_with<D: Distance + ?Sized>(
        series: &[Vec<f64>],
        dist: &D,
        opts: &MatrixOptions<'_>,
    ) -> TsResult<Self> {
        let ctrl = opts.control();
        let obs = opts.obs();
        let build_span = obs.span("matrix.build");
        let result = if opts.config.threads > 1 {
            Self::try_compute_parallel_with_control(series, dist, opts.config.threads, &ctrl)
        } else {
            Self::try_compute_with_control(series, dist, &ctrl)
        }?;
        let n = result.len() as u64;
        obs.counter("matrix.rows", n);
        obs.counter("matrix.pairs", n.saturating_mul(n.saturating_sub(1)) / 2);
        build_span.end();
        ctrl.report_cost(obs);
        Ok(result)
    }

    /// Builds directly from a precomputed full matrix (for tests and for
    /// adapting external data).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n * n`.
    #[must_use]
    pub fn from_full(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "matrix buffer must be n*n");
        DissimilarityMatrix { n, data }
    }

    /// Checks that every entry is finite — the precondition of the
    /// fallible matrix-based clusterers (`try_pam`, `try_agglomerate`,
    /// `try_spectral_cluster`). A NaN sneaks in when the matrix was built
    /// from corrupted series with a panicking-free distance.
    ///
    /// # Errors
    ///
    /// [`TsError::NonFinite`] reporting the first offending `(row, col)`
    /// as `(series, index)`.
    pub fn validate_finite(&self) -> TsResult<()> {
        match self.data.iter().position(|v| !v.is_finite()) {
            Some(flat) => Err(TsError::NonFinite {
                series: flat / self.n,
                index: flat % self.n,
            }),
            None => Ok(()),
        }
    }

    /// Maximum absolute asymmetry — should be 0 by construction.
    #[must_use]
    pub fn asymmetry(&self) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..self.n {
            for j in 0..i {
                worst = worst.max((self.get(i, j) - self.get(j, i)).abs());
            }
        }
        worst
    }
}

/// Distributes `(index, row)` pairs round-robin over `k` stripes.
fn stripes<T>(rows: Vec<T>, k: usize) -> Vec<Vec<(usize, T)>> {
    let mut out: Vec<Vec<(usize, T)>> = (0..k).map(|_| Vec::new()).collect();
    for (i, r) in rows.into_iter().enumerate() {
        out[i % k].push((i, r));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::DissimilarityMatrix;
    use tsdist::EuclideanDistance;

    fn toy_series(n: usize, m: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| (0..m).map(|j| ((i * 31 + j * 7) % 13) as f64).collect())
            .collect()
    }

    #[test]
    fn symmetric_zero_diagonal() {
        let s = toy_series(10, 8);
        let d = DissimilarityMatrix::compute(&s, &EuclideanDistance);
        assert_eq!(d.len(), 10);
        assert_eq!(d.asymmetry(), 0.0);
        for i in 0..10 {
            assert_eq!(d.get(i, i), 0.0);
        }
    }

    #[test]
    fn matches_direct_distance() {
        let s = toy_series(6, 5);
        let d = DissimilarityMatrix::compute(&s, &EuclideanDistance);
        let expect = tsdist::ed::euclidean(&s[1], &s[4]);
        assert!((d.get(1, 4) - expect).abs() < 1e-12);
    }

    #[test]
    fn parallel_matches_serial() {
        let s = toy_series(40, 16);
        let serial = DissimilarityMatrix::compute(&s, &EuclideanDistance);
        let parallel = DissimilarityMatrix::compute_parallel(&s, &EuclideanDistance, 4);
        for i in 0..40 {
            for j in 0..40 {
                assert!((serial.get(i, j) - parallel.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn parallel_small_input_falls_back() {
        let s = toy_series(4, 4);
        let d = DissimilarityMatrix::compute_parallel(&s, &EuclideanDistance, 8);
        assert_eq!(d.len(), 4);
        assert_eq!(d.asymmetry(), 0.0);
    }

    #[test]
    fn empty_input() {
        let d = DissimilarityMatrix::compute(&[], &EuclideanDistance);
        assert!(d.is_empty());
    }

    #[test]
    fn from_full_roundtrip() {
        let d = DissimilarityMatrix::from_full(2, vec![0.0, 3.0, 3.0, 0.0]);
        assert_eq!(d.get(0, 1), 3.0);
    }

    #[test]
    fn compute_with_matches_and_emits_telemetry() {
        use super::MatrixOptions;
        let s = toy_series(20, 8);
        let plain = DissimilarityMatrix::compute(&s, &EuclideanDistance);
        let sink = tsobs::MemorySink::new();
        for threads in [1, 4] {
            let opts = MatrixOptions::default()
                .with_threads(threads)
                .with_recorder(&sink);
            let built = DissimilarityMatrix::compute_with(&s, &EuclideanDistance, &opts)
                .expect("clean series");
            for i in 0..20 {
                for j in 0..20 {
                    assert_eq!(plain.get(i, j).to_bits(), built.get(i, j).to_bits());
                }
            }
        }
        assert_eq!(sink.span_count("matrix.build"), 2);
        assert_eq!(sink.counter_total("matrix.rows"), 40);
        assert_eq!(sink.counter_total("matrix.pairs"), 2 * (20 * 19 / 2));
    }
}
