//! Partitioning Around Medoids (Kaufman & Rousseeuw) — the k-medoids
//! baseline of Table 4 (`PAM+ED`, `PAM+cDTW`, `PAM+SBD`).
//!
//! PAM works on a precomputed dissimilarity matrix and uses *actual series*
//! as cluster centers (medoids), which lets any distance plug in without a
//! centroid method — but costs the full O(n²) matrix, the reason the paper
//! classifies it as non-scalable. The classic two phases:
//!
//! * **BUILD** — greedily seed k medoids minimizing total distance,
//! * **SWAP** — repeatedly exchange a medoid with a non-medoid when the
//!   exchange lowers the total cost, until no improving swap exists.

use crate::matrix::DissimilarityMatrix;
use tserror::{ensure_k, TsResult};
use tsobs::{IterationEvent, Obs};
use tsrun::RunControl;

pub use crate::options::PamOptions;

/// Configuration for a PAM run (bundled by [`PamOptions`]; the
/// deprecated entry points take `k` and `max_iter` positionally).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PamConfig {
    /// Number of medoids.
    pub k: usize,
    /// Maximum SWAP sweeps (the paper uses 100).
    pub max_iter: usize,
}

impl Default for PamConfig {
    fn default() -> Self {
        PamConfig {
            k: 2,
            max_iter: 100,
        }
    }
}

/// Outcome of a PAM run.
#[derive(Debug, Clone)]
pub struct PamResult {
    /// Cluster index per item.
    pub labels: Vec<usize>,
    /// Index of the medoid item for each cluster.
    pub medoids: Vec<usize>,
    /// Total distance of items to their medoids (the PAM objective).
    pub cost: f64,
    /// SWAP iterations executed.
    pub iterations: usize,
    /// Whether SWAP reached a local optimum before the cap.
    pub converged: bool,
}

/// Runs PAM through the unified options object, with optional budget /
/// cancellation / telemetry riding on [`PamOptions`].
///
/// Hitting the SWAP cap is *not* an error: the returned [`PamResult`]
/// carries `converged: false`.
///
/// # Example
///
/// ```
/// use tscluster::matrix::DissimilarityMatrix;
/// use tscluster::pam::{pam_with, PamOptions};
/// use tsdist::EuclideanDistance;
///
/// let series = vec![vec![0.0], vec![0.5], vec![10.0], vec![10.5]];
/// let matrix = DissimilarityMatrix::compute(&series, &EuclideanDistance);
/// let r = pam_with(&matrix, &PamOptions::new(2)).expect("clean matrix");
/// assert_eq!(r.labels[0], r.labels[1]);
/// assert_ne!(r.labels[0], r.labels[2]);
/// // Medoids are actual input items.
/// assert!(r.medoids.iter().all(|&m| m < 4));
/// ```
///
/// # Errors
///
/// [`TsError::InvalidK`], [`TsError::NonFinite`] (a corrupt matrix
/// entry), or [`TsError::Stopped`] when the attached budget or
/// cancellation trips.
pub fn pam_with(matrix: &DissimilarityMatrix, opts: &PamOptions<'_>) -> TsResult<PamResult> {
    let ctrl = opts.control();
    let obs = opts.obs();
    let (result, _shifted) = pam_core(matrix, opts.config.k, opts.config.max_iter, &ctrl, obs)?;
    ctrl.report_cost(obs);
    Ok(result)
}

/// Nearest-chosen-medoid assignment for a (possibly partial) medoid set.
fn assign_to_medoids(matrix: &DissimilarityMatrix, n: usize, medoids: &[usize]) -> Vec<usize> {
    if medoids.is_empty() {
        return Vec::new();
    }
    (0..n)
        .map(|i| {
            medoids
                .iter()
                .enumerate()
                .min_by(|a, b| matrix.get(i, *a.1).total_cmp(&matrix.get(i, *b.1)))
                .map_or(0, |(j, _)| j)
        })
        .collect()
}

/// Shared BUILD + SWAP: returns the result plus a non-convergence measure
/// (1 when an improving swap was still pending at the cap, else 0).
fn pam_core(
    matrix: &DissimilarityMatrix,
    k: usize,
    max_iter: usize,
    ctrl: &RunControl,
    obs: Obs<'_>,
) -> TsResult<(PamResult, usize)> {
    let n = matrix.len();
    ensure_k(k, n)?;
    matrix.validate_finite()?;
    let fit_span = obs.span(PamOptions::FIT_SPAN);

    // ---- BUILD ----
    let mut medoids: Vec<usize> = Vec::with_capacity(k);
    // First medoid: the item minimizing total distance to all others.
    let first = (0..n)
        .min_by(|&a, &b| {
            let ca: f64 = (0..n).map(|j| matrix.get(a, j)).sum();
            let cb: f64 = (0..n).map(|j| matrix.get(b, j)).sum();
            ca.total_cmp(&cb)
        })
        .expect("non-empty matrix");
    medoids.push(first);
    // nearest[i] = distance of i to its closest chosen medoid.
    let mut nearest: Vec<f64> = (0..n).map(|i| matrix.get(i, first)).collect();
    let n2 = (n as u64).saturating_mul(n as u64);
    while medoids.len() < k {
        // Each greedy BUILD step scans all candidates against all items.
        if let Err(reason) = ctrl.charge(n2) {
            let labels = assign_to_medoids(matrix, n, &medoids);
            return Err(RunControl::stop_error(labels, 0, reason));
        }
        // Pick the candidate whose addition reduces total cost the most.
        let mut best_gain = f64::NEG_INFINITY;
        let mut best_c = usize::MAX;
        for c in 0..n {
            if medoids.contains(&c) {
                continue;
            }
            let gain: f64 = (0..n)
                .map(|i| (nearest[i] - matrix.get(i, c)).max(0.0))
                .sum();
            if gain > best_gain {
                best_gain = gain;
                best_c = c;
            }
        }
        medoids.push(best_c);
        for (i, nv) in nearest.iter_mut().enumerate() {
            *nv = nv.min(matrix.get(i, best_c));
        }
    }

    // ---- SWAP ----
    let cost_of = |meds: &[usize]| -> f64 {
        (0..n)
            .map(|i| {
                meds.iter()
                    .map(|&mi| matrix.get(i, mi))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum()
    };
    let mut cost = cost_of(&medoids);
    let mut iterations = 0;
    let mut converged = false;
    // One SWAP sweep evaluates k·(n−k) exchanges, each re-costed in
    // O(n·k): charge the dominant k²·n² term (saturating).
    let sweep_cost = (k as u64)
        .saturating_mul(k as u64)
        .saturating_mul(n2)
        .max(1);
    while iterations < max_iter {
        if let Err(reason) = ctrl.check_iteration(iterations) {
            let labels = assign_to_medoids(matrix, n, &medoids);
            return Err(RunControl::stop_error(labels, iterations, reason));
        }
        if let Err(reason) = ctrl.charge(sweep_cost) {
            let labels = assign_to_medoids(matrix, n, &medoids);
            return Err(RunControl::stop_error(labels, iterations, reason));
        }
        iterations += 1;
        let mut best_delta = -1e-12;
        let mut best_swap: Option<(usize, usize)> = None;
        for (mi, &med) in medoids.iter().enumerate() {
            for cand in 0..n {
                if medoids.contains(&cand) {
                    continue;
                }
                let mut trial = medoids.clone();
                trial[mi] = cand;
                let delta = cost_of(&trial) - cost;
                if delta < best_delta {
                    best_delta = delta;
                    best_swap = Some((mi, cand));
                }
                let _ = med;
            }
        }
        match best_swap {
            Some((mi, cand)) => {
                let prev_cost = cost;
                medoids[mi] = cand;
                // Re-derive exactly rather than accumulating best_delta,
                // to avoid floating-point drift over many swaps.
                cost = cost_of(&medoids);
                if obs.is_armed() {
                    // For PAM the "centroid shift" is the objective
                    // improvement the applied swap bought this sweep.
                    obs.iteration(&IterationEvent {
                        algorithm: "pam",
                        iter: iterations - 1,
                        inertia: cost,
                        moved: 1,
                        centroid_shift: prev_cost - cost,
                    });
                }
            }
            None => {
                if obs.is_armed() {
                    obs.iteration(&IterationEvent {
                        algorithm: "pam",
                        iter: iterations - 1,
                        inertia: cost,
                        moved: 0,
                        centroid_shift: 0.0,
                    });
                }
                converged = true;
                break;
            }
        }
    }

    obs.counter("pam.iterations", iterations as u64);
    fit_span.end();
    // Final assignment.
    let labels = assign_to_medoids(matrix, n, &medoids);

    Ok((
        PamResult {
            labels,
            medoids,
            cost,
            iterations,
            converged,
        },
        usize::from(!converged),
    ))
}

#[cfg(test)]
mod tests {
    use super::{pam_with, PamOptions, PamResult};
    use crate::matrix::DissimilarityMatrix;
    use tsdist::EuclideanDistance;

    fn fit(m: &DissimilarityMatrix, k: usize, max_iter: usize) -> PamResult {
        pam_with(m, &PamOptions::new(k).with_max_iter(max_iter)).expect("clean matrix")
    }

    fn blob_series() -> Vec<Vec<f64>> {
        let mut out = Vec::new();
        for j in 0..5 {
            out.push(vec![0.0 + j as f64 * 0.1, 0.0]);
            out.push(vec![10.0 - j as f64 * 0.1, 10.0]);
        }
        out
    }

    #[test]
    fn separates_blobs() {
        let s = blob_series();
        let m = DissimilarityMatrix::compute(&s, &EuclideanDistance);
        let r = fit(&m, 2, 100);
        assert!(r.converged);
        for i in (0..s.len()).step_by(2) {
            assert_eq!(r.labels[i], r.labels[0]);
            assert_eq!(r.labels[i + 1], r.labels[1]);
        }
        assert_ne!(r.labels[0], r.labels[1]);
    }

    #[test]
    fn medoids_are_members_of_their_clusters() {
        let s = blob_series();
        let m = DissimilarityMatrix::compute(&s, &EuclideanDistance);
        let r = fit(&m, 2, 100);
        for (j, &med) in r.medoids.iter().enumerate() {
            assert_eq!(r.labels[med], j, "medoid {med} not in its own cluster");
        }
    }

    #[test]
    fn k_equals_n_gives_zero_cost() {
        let s = blob_series();
        let m = DissimilarityMatrix::compute(&s, &EuclideanDistance);
        let r = fit(&m, s.len(), 100);
        assert!(r.cost < 1e-12);
    }

    #[test]
    fn k_one_picks_most_central_item() {
        // Points on a line; the median point is the 1-medoid.
        let s: Vec<Vec<f64>> = (0..7).map(|i| vec![i as f64]).collect();
        let m = DissimilarityMatrix::compute(&s, &EuclideanDistance);
        let r = fit(&m, 1, 100);
        assert_eq!(r.medoids, vec![3]);
    }

    #[test]
    fn deterministic() {
        let s = blob_series();
        let m = DissimilarityMatrix::compute(&s, &EuclideanDistance);
        let a = fit(&m, 2, 100);
        let b = fit(&m, 2, 100);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.medoids, b.medoids);
    }

    #[test]
    fn swap_improves_over_build_when_possible() {
        // Construct a case where greedy BUILD is suboptimal: three groups,
        // k = 2; cost after PAM must be a local optimum (no single swap
        // improves), verified by exhaustive check.
        let s: Vec<Vec<f64>> = vec![
            vec![0.0],
            vec![0.5],
            vec![1.0],
            vec![5.0],
            vec![5.5],
            vec![9.0],
            vec![9.5],
            vec![10.0],
        ];
        let m = DissimilarityMatrix::compute(&s, &EuclideanDistance);
        let r = fit(&m, 2, 100);
        assert!(r.converged);
        // Exhaustive: no pair of medoids beats the found cost.
        let n = s.len();
        let mut best = f64::INFINITY;
        for a in 0..n {
            for b in a + 1..n {
                let cost: f64 = (0..n).map(|i| m.get(i, a).min(m.get(i, b))).sum();
                best = best.min(cost);
            }
        }
        assert!(
            (r.cost - best).abs() < 1e-9,
            "PAM {} vs optimal {}",
            r.cost,
            best
        );
    }

    #[test]
    fn rejects_k_too_large() {
        let m = DissimilarityMatrix::compute(&[vec![1.0]], &EuclideanDistance);
        assert!(matches!(
            pam_with(&m, &PamOptions::new(2)),
            Err(tserror::TsError::InvalidK { k: 2, n: 1 })
        ));
    }

    #[test]
    fn options_api_reports_typed_errors() {
        use tserror::TsError;
        let s = blob_series();
        let m = DissimilarityMatrix::compute(&s, &EuclideanDistance);
        assert!(matches!(
            pam_with(&m, &PamOptions::new(0)),
            Err(TsError::InvalidK { k: 0, .. })
        ));
        assert!(matches!(
            pam_with(&m, &PamOptions::new(s.len() + 1)),
            Err(TsError::InvalidK { .. })
        ));
        let corrupt = DissimilarityMatrix::from_full(2, vec![0.0, f64::NAN, f64::NAN, 0.0]);
        assert!(matches!(
            pam_with(&corrupt, &PamOptions::new(1)),
            Err(TsError::NonFinite {
                series: 0,
                index: 1
            })
        ));
        // A SWAP cap of zero cannot certify a local optimum.
        let capped = pam_with(&m, &PamOptions::new(2).with_max_iter(0)).expect("cap is Ok");
        assert!(!capped.converged);
        assert_eq!(capped.iterations, 0);
        assert_eq!(capped.labels.len(), s.len());
    }

    #[test]
    fn pam_with_matches_and_emits_telemetry() {
        let s = blob_series();
        let m = DissimilarityMatrix::compute(&s, &EuclideanDistance);
        let old = fit(&m, 2, 100);
        let sink = tsobs::MemorySink::new();
        let new = pam_with(&m, &PamOptions::new(2).with_recorder(&sink)).expect("clean matrix");
        assert_eq!(old.labels, new.labels);
        assert_eq!(old.medoids, new.medoids);
        assert!(new.converged);
        // One event per SWAP sweep; the last sweep found no improving
        // swap, so it reports moved = 0 at the final cost.
        let events = sink.iteration_events();
        assert_eq!(events.len(), new.iterations);
        let last = events.last().expect("at least one sweep");
        assert_eq!(last.algorithm, "pam");
        assert_eq!(last.moved, 0);
        assert_eq!(last.inertia.to_bits(), new.cost.to_bits());
        assert_eq!(sink.span_count(PamOptions::FIT_SPAN), 1);
        // Unconverged runs return Ok under the options API.
        let capped = pam_with(&m, &PamOptions::new(2).with_max_iter(0)).expect("cap is Ok");
        assert!(!capped.converged);
    }
}
