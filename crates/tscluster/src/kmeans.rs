//! Generic k-means (the k-AVG family of the paper).
//!
//! The classic Lloyd iteration with a *pluggable distance* for assignment
//! and the *arithmetic mean* for centroid refinement. With ED this is the
//! paper's robust `k-AVG+ED` baseline; swapping in SBD or DTW gives
//! `k-AVG+SBD` and `k-AVG+DTW` — the Table 3 rows showing that changing the
//! distance without changing the centroid method can *hurt*.

use tsrand::StdRng;

use kshape::init::random_assignment;
use tsdist::Distance;

/// Configuration for a k-means run.
#[derive(Debug, Clone, Copy)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations (the paper uses 100).
    pub max_iter: usize,
    /// RNG seed for the initial random assignment.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 2,
            max_iter: 100,
            seed: 0,
        }
    }
}

/// Outcome of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster index per series.
    pub labels: Vec<usize>,
    /// Arithmetic-mean centroid per cluster.
    pub centroids: Vec<Vec<f64>>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether memberships converged before the cap.
    pub converged: bool,
    /// Final sum of squared assignment distances.
    pub inertia: f64,
}

/// Runs k-means with arithmetic-mean centroids and the given assignment
/// distance.
///
/// # Example
///
/// ```
/// use tscluster::kmeans::{kmeans, KMeansConfig};
/// use tsdist::EuclideanDistance;
///
/// let series = vec![
///     vec![0.0, 0.1], vec![0.1, 0.0],   // cluster A
///     vec![9.0, 9.1], vec![9.1, 9.0],   // cluster B
/// ];
/// let r = kmeans(&series, &EuclideanDistance,
///                &KMeansConfig { k: 2, seed: 1, ..Default::default() });
/// assert_eq!(r.labels[0], r.labels[1]);
/// assert_ne!(r.labels[0], r.labels[2]);
/// ```
///
/// # Panics
///
/// Panics if `series` is empty or ragged, `k == 0`, or `k > n`.
#[must_use]
pub fn kmeans<D: Distance + ?Sized>(
    series: &[Vec<f64>],
    dist: &D,
    config: &KMeansConfig,
) -> KMeansResult {
    let n = series.len();
    assert!(n > 0, "k-means requires at least one series");
    assert!(config.k > 0, "k must be positive");
    assert!(config.k <= n, "k must not exceed the number of series");
    let m = series[0].len();
    assert!(
        series.iter().all(|s| s.len() == m),
        "all series must have equal length"
    );

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut labels = random_assignment(n, config.k, &mut rng);
    let mut centroids = vec![vec![0.0; m]; config.k];
    let mut dists = vec![0.0f64; n];

    let mut iterations = 0;
    let mut converged = false;
    while iterations < config.max_iter {
        iterations += 1;

        // Refinement: arithmetic means.
        let mut counts = vec![0usize; config.k];
        for c in &mut centroids {
            c.iter_mut().for_each(|v| *v = 0.0);
        }
        for (s, &l) in series.iter().zip(labels.iter()) {
            counts[l] += 1;
            for (acc, v) in centroids[l].iter_mut().zip(s.iter()) {
                *acc += v;
            }
        }
        for (j, c) in centroids.iter_mut().enumerate() {
            if counts[j] == 0 {
                // Re-seed an empty cluster with the worst-served series.
                let worst = dists
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN distance"))
                    .map_or(0, |(i, _)| i);
                c.copy_from_slice(&series[worst]);
                labels[worst] = j;
            } else {
                let inv = 1.0 / counts[j] as f64;
                c.iter_mut().for_each(|v| *v *= inv);
            }
        }

        // Assignment.
        let mut changed = false;
        for (i, s) in series.iter().enumerate() {
            let mut best = f64::INFINITY;
            let mut best_j = labels[i];
            for (j, c) in centroids.iter().enumerate() {
                let d = dist.dist(s, c);
                if d < best {
                    best = d;
                    best_j = j;
                }
            }
            dists[i] = best;
            if best_j != labels[i] {
                labels[i] = best_j;
                changed = true;
            }
        }
        if !changed {
            converged = true;
            break;
        }
    }

    KMeansResult {
        labels,
        centroids,
        iterations,
        converged,
        inertia: dists.iter().map(|d| d * d).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::{kmeans, KMeansConfig};
    use tsdist::EuclideanDistance;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut out = Vec::new();
        for j in 0..6 {
            let eps = j as f64 * 0.01;
            out.push(vec![0.0 + eps, 0.0, 0.1]);
            out.push(vec![9.0 - eps, 9.0, 9.1]);
        }
        out
    }

    #[test]
    fn separates_two_blobs() {
        let series = two_blobs();
        let r = kmeans(
            &series,
            &EuclideanDistance,
            &KMeansConfig {
                k: 2,
                seed: 3,
                ..Default::default()
            },
        );
        assert!(r.converged);
        // Even/odd indices belong to opposite clusters.
        for i in (0..series.len()).step_by(2) {
            assert_eq!(r.labels[i], r.labels[0]);
            assert_eq!(r.labels[i + 1], r.labels[1]);
        }
        assert_ne!(r.labels[0], r.labels[1]);
    }

    #[test]
    fn centroids_are_means_of_members() {
        let series = two_blobs();
        let r = kmeans(
            &series,
            &EuclideanDistance,
            &KMeansConfig {
                k: 2,
                seed: 3,
                ..Default::default()
            },
        );
        for j in 0..2 {
            let members: Vec<&Vec<f64>> = series
                .iter()
                .zip(r.labels.iter())
                .filter(|&(_, &l)| l == j)
                .map(|(s, _)| s)
                .collect();
            for d in 0..3 {
                let mean: f64 = members.iter().map(|s| s[d]).sum::<f64>() / members.len() as f64;
                assert!((r.centroids[j][d] - mean).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let series = two_blobs();
        let r1 = kmeans(
            &series,
            &EuclideanDistance,
            &KMeansConfig {
                k: 1,
                seed: 1,
                ..Default::default()
            },
        );
        let r2 = kmeans(
            &series,
            &EuclideanDistance,
            &KMeansConfig {
                k: 2,
                seed: 1,
                ..Default::default()
            },
        );
        assert!(r2.inertia < r1.inertia);
    }

    #[test]
    fn deterministic_for_seed() {
        let series = two_blobs();
        let cfg = KMeansConfig {
            k: 2,
            seed: 9,
            ..Default::default()
        };
        let a = kmeans(&series, &EuclideanDistance, &cfg);
        let b = kmeans(&series, &EuclideanDistance, &cfg);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn k_equals_n() {
        let series = two_blobs();
        let r = kmeans(
            &series,
            &EuclideanDistance,
            &KMeansConfig {
                k: series.len(),
                seed: 2,
                ..Default::default()
            },
        );
        let mut labels = r.labels.clone();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), series.len());
    }

    #[test]
    #[should_panic(expected = "k must not exceed")]
    fn rejects_k_too_large() {
        let _ = kmeans(
            &[vec![1.0]],
            &EuclideanDistance,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
        );
    }
}
