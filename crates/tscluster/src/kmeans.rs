//! Generic k-means (the k-AVG family of the paper).
//!
//! The classic Lloyd iteration with a *pluggable distance* for assignment
//! and the *arithmetic mean* for centroid refinement. With ED this is the
//! paper's robust `k-AVG+ED` baseline; swapping in SBD or DTW gives
//! `k-AVG+SBD` and `k-AVG+DTW` — the Table 3 rows showing that changing the
//! distance without changing the centroid method can *hurt*.

use tsrand::StdRng;

use kshape::init::random_assignment;
use tsdist::Distance;
use tserror::{ensure_k, validate_series_set, TsResult};
use tsobs::{IterationEvent, Obs};
use tsrun::RunControl;

use crate::options::centroid_shift;
pub use crate::options::KMeansOptions;

/// Configuration for a k-means run.
#[derive(Debug, Clone, Copy)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations (the paper uses 100).
    pub max_iter: usize,
    /// RNG seed for the initial random assignment.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 2,
            max_iter: 100,
            seed: 0,
        }
    }
}

/// Outcome of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster index per series.
    pub labels: Vec<usize>,
    /// Arithmetic-mean centroid per cluster.
    pub centroids: Vec<Vec<f64>>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether memberships converged before the cap.
    pub converged: bool,
    /// Final sum of squared assignment distances.
    pub inertia: f64,
}

/// Runs k-means through the unified options object: arithmetic-mean
/// centroids, the given assignment distance, and optional budget /
/// cancellation / telemetry riding on [`KMeansOptions`].
///
/// Hitting the iteration cap is *not* an error: the returned
/// [`KMeansResult`] carries `converged: false` and the caller inspects
/// the flag.
///
/// # Example
///
/// ```
/// use tscluster::kmeans::{kmeans_with, KMeansOptions};
/// use tsdist::EuclideanDistance;
///
/// let series = vec![
///     vec![0.0, 0.1], vec![0.1, 0.0],   // cluster A
///     vec![9.0, 9.1], vec![9.1, 9.0],   // cluster B
/// ];
/// let r = kmeans_with(&series, &EuclideanDistance,
///                     &KMeansOptions::new(2).with_seed(1))
///     .expect("clean input");
/// assert_eq!(r.labels[0], r.labels[1]);
/// assert_ne!(r.labels[0], r.labels[2]);
/// ```
///
/// # Errors
///
/// [`TsError::EmptyInput`], [`TsError::LengthMismatch`],
/// [`TsError::NonFinite`], [`TsError::InvalidK`], or
/// [`TsError::Stopped`] when the attached budget or cancellation trips.
pub fn kmeans_with<D: Distance + ?Sized>(
    series: &[Vec<f64>],
    dist: &D,
    opts: &KMeansOptions<'_>,
) -> TsResult<KMeansResult> {
    let ctrl = opts.control();
    let obs = opts.obs();
    let (result, _shifted) = kmeans_core(series, dist, &opts.config, &ctrl, obs)?;
    ctrl.report_cost(obs);
    Ok(result)
}

/// Shared Lloyd iteration: returns the result plus the number of series
/// that changed cluster in the final iteration.
pub(crate) fn kmeans_core<D: Distance + ?Sized>(
    series: &[Vec<f64>],
    dist: &D,
    config: &KMeansConfig,
    ctrl: &RunControl,
    obs: Obs<'_>,
) -> TsResult<(KMeansResult, usize)> {
    let n = series.len();
    let m = validate_series_set(series)?;
    ensure_k(config.k, n)?;
    let fit_span = obs.span(KMeansOptions::FIT_SPAN);

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut labels = random_assignment(n, config.k, &mut rng);
    let mut centroids = vec![vec![0.0; m]; config.k];
    let mut dists = vec![0.0f64; n];
    // Telemetry-only snapshot of the previous centroids; empty while
    // disarmed so the armed path never changes the clustering.
    let mut prev_centroids: Vec<Vec<f64>> = Vec::new();

    let mut iterations = 0;
    let mut converged = false;
    let mut shifted = 0usize;
    let pair_cost = dist.cost_hint(m);
    while iterations < config.max_iter {
        if let Err(reason) = ctrl.check_iteration(iterations) {
            return Err(RunControl::stop_error(labels, iterations, reason));
        }
        iterations += 1;
        if obs.is_armed() {
            prev_centroids = centroids.clone();
        }

        // Refinement: arithmetic means.
        let mut counts = vec![0usize; config.k];
        for c in &mut centroids {
            c.iter_mut().for_each(|v| *v = 0.0);
        }
        for (s, &l) in series.iter().zip(labels.iter()) {
            counts[l] += 1;
            for (acc, v) in centroids[l].iter_mut().zip(s.iter()) {
                *acc += v;
            }
        }
        for (j, c) in centroids.iter_mut().enumerate() {
            if counts[j] == 0 {
                // Re-seed an empty cluster with the worst-served series.
                obs.counter("kmeans.empty_cluster_reseeds", 1);
                let worst = dists
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map_or(0, |(i, _)| i);
                c.copy_from_slice(&series[worst]);
                labels[worst] = j;
            } else {
                let inv = 1.0 / counts[j] as f64;
                c.iter_mut().for_each(|v| *v *= inv);
            }
        }

        // Assignment.
        let mut changed = 0usize;
        for (i, s) in series.iter().enumerate() {
            if let Err(reason) = ctrl.charge(config.k as u64 * pair_cost) {
                return Err(RunControl::stop_error(labels, iterations - 1, reason));
            }
            let mut best = f64::INFINITY;
            let mut best_j = labels[i];
            for (j, c) in centroids.iter().enumerate() {
                let d = dist.dist(s, c);
                if d < best {
                    best = d;
                    best_j = j;
                }
            }
            dists[i] = best;
            if best_j != labels[i] {
                labels[i] = best_j;
                changed += 1;
            }
        }
        shifted = changed;
        if obs.is_armed() {
            obs.iteration(&IterationEvent {
                algorithm: "kmeans",
                iter: iterations - 1,
                inertia: dists.iter().map(|d| d * d).sum(),
                moved: changed,
                centroid_shift: centroid_shift(&prev_centroids, &centroids),
            });
        }
        if changed == 0 {
            converged = true;
            break;
        }
    }

    obs.counter("kmeans.iterations", iterations as u64);
    fit_span.end();
    Ok((
        KMeansResult {
            labels,
            centroids,
            iterations,
            converged,
            inertia: dists.iter().map(|d| d * d).sum(),
        },
        shifted,
    ))
}

#[cfg(test)]
mod tests {
    use super::{kmeans_with, KMeansConfig, KMeansOptions, KMeansResult};
    use tsdist::EuclideanDistance;

    fn fit(series: &[Vec<f64>], cfg: KMeansConfig) -> KMeansResult {
        kmeans_with(series, &EuclideanDistance, &KMeansOptions::from(cfg)).expect("clean input")
    }

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut out = Vec::new();
        for j in 0..6 {
            let eps = j as f64 * 0.01;
            out.push(vec![0.0 + eps, 0.0, 0.1]);
            out.push(vec![9.0 - eps, 9.0, 9.1]);
        }
        out
    }

    #[test]
    fn separates_two_blobs() {
        let series = two_blobs();
        let r = fit(
            &series,
            KMeansConfig {
                k: 2,
                seed: 3,
                ..Default::default()
            },
        );
        assert!(r.converged);
        // Even/odd indices belong to opposite clusters.
        for i in (0..series.len()).step_by(2) {
            assert_eq!(r.labels[i], r.labels[0]);
            assert_eq!(r.labels[i + 1], r.labels[1]);
        }
        assert_ne!(r.labels[0], r.labels[1]);
    }

    #[test]
    fn centroids_are_means_of_members() {
        let series = two_blobs();
        let r = fit(
            &series,
            KMeansConfig {
                k: 2,
                seed: 3,
                ..Default::default()
            },
        );
        for j in 0..2 {
            let members: Vec<&Vec<f64>> = series
                .iter()
                .zip(r.labels.iter())
                .filter(|&(_, &l)| l == j)
                .map(|(s, _)| s)
                .collect();
            for d in 0..3 {
                let mean: f64 = members.iter().map(|s| s[d]).sum::<f64>() / members.len() as f64;
                assert!((r.centroids[j][d] - mean).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let series = two_blobs();
        let r1 = fit(
            &series,
            KMeansConfig {
                k: 1,
                seed: 1,
                ..Default::default()
            },
        );
        let r2 = fit(
            &series,
            KMeansConfig {
                k: 2,
                seed: 1,
                ..Default::default()
            },
        );
        assert!(r2.inertia < r1.inertia);
    }

    #[test]
    fn deterministic_for_seed() {
        let series = two_blobs();
        let cfg = KMeansConfig {
            k: 2,
            seed: 9,
            ..Default::default()
        };
        let a = fit(&series, cfg);
        let b = fit(&series, cfg);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn k_equals_n() {
        let series = two_blobs();
        let r = fit(
            &series,
            KMeansConfig {
                k: series.len(),
                seed: 2,
                ..Default::default()
            },
        );
        let mut labels = r.labels.clone();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), series.len());
    }

    #[test]
    fn rejects_k_too_large() {
        assert!(matches!(
            kmeans_with(&[vec![1.0]], &EuclideanDistance, &KMeansOptions::new(2)),
            Err(tserror::TsError::InvalidK { k: 2, n: 1 })
        ));
    }

    #[test]
    fn kmeans_with_reports_typed_errors() {
        use tserror::TsError;
        let opts = KMeansOptions::new(2);
        assert!(matches!(
            kmeans_with(&[], &EuclideanDistance, &opts),
            Err(TsError::EmptyInput)
        ));
        assert!(matches!(
            kmeans_with(&[vec![1.0], vec![1.0, 2.0]], &EuclideanDistance, &opts),
            Err(TsError::LengthMismatch { series: 1, .. })
        ));
        assert!(matches!(
            kmeans_with(&[vec![1.0, f64::NAN]], &EuclideanDistance, &opts),
            Err(TsError::NonFinite {
                series: 0,
                index: 1
            })
        ));
    }

    #[test]
    fn kmeans_with_returns_ok_when_unconverged() {
        let series = two_blobs();
        let r = kmeans_with(
            &series,
            &EuclideanDistance,
            &KMeansOptions::new(2).with_seed(3).with_max_iter(0),
        )
        .expect("cap is not an error under the options API");
        assert!(!r.converged);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn kmeans_with_emits_convergence_telemetry() {
        let series = two_blobs();
        let sink = tsobs::MemorySink::new();
        let opts = KMeansOptions::new(2).with_seed(3).with_recorder(&sink);
        let r = kmeans_with(&series, &EuclideanDistance, &opts).expect("clean input");
        let events = sink.iteration_events();
        assert_eq!(events.len(), r.iterations);
        let last = events.last().expect("at least one iteration");
        assert_eq!(last.algorithm, "kmeans");
        assert_eq!(last.moved, 0, "final iteration has no reassignments");
        assert_eq!(last.inertia.to_bits(), r.inertia.to_bits());
        assert_eq!(sink.span_count(KMeansOptions::FIT_SPAN), 1);
        assert_eq!(sink.counter_total("kmeans.iterations"), r.iterations as u64);
        // Telemetry never changes the fit.
        let plain = kmeans_with(
            &series,
            &EuclideanDistance,
            &KMeansOptions::new(2).with_seed(3),
        )
        .expect("clean input");
        assert_eq!(plain.labels, r.labels);
        assert_eq!(plain.inertia.to_bits(), r.inertia.to_bits());
    }
}
