//! K-Spectral Centroid clustering (Yang & Leskovec, WSDM 2011) — the `KSC`
//! baseline of Table 3.
//!
//! KSC uses a distance invariant to *pairwise scaling and shifting*:
//!
//! ```text
//! d̂(x, y) = min_{α, q} ‖x − α·y_(q)‖ / ‖x‖
//! ```
//!
//! where `y_(q)` is `y` shifted by `q` with zero padding and the optimal
//! scaling for a fixed shift is `α* = xᵀy_(q) / ‖y_(q)‖²`. Its centroid is
//! the eigenvector of the *smallest* eigenvalue of
//! `M = Σᵢ (I − bᵢbᵢᵀ)` with `bᵢ = xᵢ' / ‖xᵢ'‖` over aligned members —
//! matrix-decomposition-based like k-Shape's, but minimizing a different
//! objective.

use tsrand::StdRng;

use kshape::init::random_assignment;
use tsdata::distort::shift_zero_pad;
use tsdist::Distance;
use tserror::{ensure_finite, ensure_k, validate_nonempty_pair, validate_series_set};
use tserror::{TsError, TsResult};
use tslinalg::eigen::try_symmetric_eigen;
use tslinalg::matrix::Matrix;
use tsobs::{IterationEvent, Obs};
use tsrun::RunControl;

use crate::options::centroid_shift;
pub use crate::options::KscOptions;

/// The KSC scale-and-shift-invariant distance.
#[derive(Debug, Clone, Copy, Default)]
pub struct KscDistance;

impl KscDistance {
    /// Computes `d̂(x, y)` together with the optimal shift of `y`.
    ///
    /// Efficient form: the dot products `xᵀy_(q)` over *all* zero-padded
    /// shifts are exactly the cross-correlation sequence of `x` and `y`
    /// (computed with one FFT), and the shifted norms `‖y_(q)‖²` are prefix
    /// and suffix sums of `y²` — so the full shift scan costs
    /// O(m log m) instead of O(m²).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ, inputs are empty, or samples are
    /// non-finite. See [`KscDistance::try_dist_shift`] for the fallible
    /// variant.
    #[must_use]
    pub fn dist_shift(x: &[f64], y: &[f64]) -> (f64, isize) {
        Self::try_dist_shift(x, y).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible `d̂(x, y)`: validates once up front, never panics.
    ///
    /// # Errors
    ///
    /// [`TsError::EmptyInput`], [`TsError::LengthMismatch`], or
    /// [`TsError::NonFinite`].
    pub fn try_dist_shift(x: &[f64], y: &[f64]) -> TsResult<(f64, isize)> {
        validate_nonempty_pair(x, y)?;
        Ok(Self::dist_shift_unchecked(x, y))
    }

    /// The shift scan itself, with preconditions already established.
    fn dist_shift_unchecked(x: &[f64], y: &[f64]) -> (f64, isize) {
        let m = x.len();
        let nx2: f64 = x.iter().map(|v| v * v).sum();
        if nx2 == 0.0 {
            // ‖x‖ = 0: conventionally distance 0 to everything scalable to 0.
            return (0.0, 0);
        }
        // cc[m-1+k] = Σ_l x[l+k]·y[l] = xᵀ y_(k) for lag k.
        let cc = tsfft::correlate::cross_correlate_fft(x, y);
        // prefix[t] = Σ_{l<t} y[l]².
        let mut prefix = vec![0.0; m + 1];
        for (i, v) in y.iter().enumerate() {
            prefix[i + 1] = prefix[i] + v * v;
        }
        let total = prefix[m];
        let mut best = f64::INFINITY;
        let mut best_shift = 0isize;
        for q in -(m as isize - 1)..m as isize {
            // ‖y_(q)‖²: shift right by q keeps y[0..m-q]; shift left by |q|
            // keeps y[|q|..m].
            let ny2 = if q >= 0 {
                prefix[m - q as usize]
            } else {
                total - prefix[(-q) as usize]
            };
            // Shifts that retain essentially no energy of `y` are
            // meaningless and numerically treacherous: the FFT dot product
            // carries absolute noise ~1e-15 which would divide by the tiny
            // retained energy and fake a perfect correlation.
            let d2 = if ny2 <= total * 1e-9 {
                1.0
            } else {
                let dot = cc[(m as isize - 1 + q) as usize];
                // ‖x − α*y_q‖²/‖x‖² = 1 − dot²/(‖x‖²‖y_q‖²)
                (1.0 - (dot * dot / (nx2 * ny2)).min(1.0)).max(0.0)
            };
            if d2 < best {
                best = d2;
                best_shift = q;
            }
        }
        (best.sqrt(), best_shift)
    }
}

impl Distance for KscDistance {
    fn name(&self) -> String {
        "KSC-dist".into()
    }

    fn dist(&self, x: &[f64], y: &[f64]) -> f64 {
        Self::dist_shift(x, y).0
    }
}

/// Computes the KSC centroid of aligned members: the eigenvector of the
/// smallest eigenvalue of `M = Σ (I − bbᵀ)`, oriented toward the members.
///
/// Members are aligned toward `reference` first (unless it is all-zero).
///
/// # Panics
///
/// Panics if member lengths differ from the reference or samples are
/// non-finite. See [`try_ksc_centroid`] for the fallible variant.
#[must_use]
pub fn ksc_centroid(members: &[&[f64]], reference: &[f64]) -> Vec<f64> {
    try_ksc_centroid(members, reference)
        .unwrap_or_else(|e| panic!("member length must match the reference: {e}"))
}

/// Fallible KSC centroid: validates once up front, never panics, and
/// guarantees a finite result (falling back to the normalized aligned mean
/// when the eigen decomposition degenerates, e.g. for all-zero members).
///
/// # Errors
///
/// [`TsError::LengthMismatch`] or [`TsError::NonFinite`].
pub fn try_ksc_centroid(members: &[&[f64]], reference: &[f64]) -> TsResult<Vec<f64>> {
    let m = reference.len();
    ensure_finite(reference, 0)?;
    for (i, member) in members.iter().enumerate() {
        if member.len() != m {
            return Err(TsError::LengthMismatch {
                expected: m,
                found: member.len(),
                series: i,
            });
        }
        ensure_finite(member, i)?;
    }
    if members.is_empty() || m == 0 {
        return Ok(reference.to_vec());
    }
    let ref_is_zero = reference.iter().all(|&v| v == 0.0);

    // M = Σᵢ (I − bᵢbᵢᵀ) = n·I − G with G = BᵀB over the unit-normalized
    // aligned members. The smallest eigenvector of M is the dominant
    // eigenvector of G; when n < m we obtain it from the n×n dual Gram
    // matrix BBᵀ (u dominant there ⇒ Bᵀu dominant for G) — identical
    // result, O(n²m + n³) instead of O(m³).
    let n = members.len();
    let mut b = Matrix::zeros(n, m);
    let mut aligned_sum = vec![0.0; m];
    for (r, member) in members.iter().enumerate() {
        let aligned = if ref_is_zero {
            member.to_vec()
        } else {
            let (_, shift) = KscDistance::dist_shift_unchecked(reference, member);
            // dist_shift aligns `member` toward `reference` by shift `q`.
            shift_zero_pad(member, shift)
        };
        let norm: f64 = aligned.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > 0.0 {
            let row = b.row_mut(r);
            for (o, v) in row.iter_mut().zip(aligned.iter()) {
                *o = v / norm;
            }
        }
        for (acc, v) in aligned_sum.iter_mut().zip(aligned.iter()) {
            *acc += v;
        }
    }

    let mut centroid = if n < m {
        let mut dual = Matrix::zeros(n, n);
        for r in 0..n {
            for c in 0..=r {
                let d = tslinalg::matrix::dot(b.row(r), b.row(c));
                dual[(r, c)] = d;
                dual[(c, r)] = d;
            }
        }
        match try_symmetric_eigen(&dual) {
            Ok(eig) => {
                let u = eig.dominant_vector();
                let mut v = vec![0.0; m];
                for (r, &ur) in u.iter().enumerate() {
                    if ur != 0.0 {
                        for (o, x) in v.iter_mut().zip(b.row(r).iter()) {
                            *o += ur * x;
                        }
                    }
                }
                tslinalg::matrix::normalize(&mut v);
                v
            }
            // Eigensolver refused (QL non-convergence on a pathological
            // Gram matrix): route into the degenerate fallback below.
            Err(_) => vec![f64::NAN; m],
        }
    } else {
        let mut g = Matrix::zeros(m, m);
        for r in 0..n {
            g.rank_one_update(b.row(r), 1.0);
        }
        match try_symmetric_eigen(&g) {
            Ok(eig) => eig.dominant_vector(),
            Err(_) => vec![f64::NAN; m],
        }
    };
    if centroid.iter().any(|v| !v.is_finite()) {
        // Degenerate decomposition (e.g. every member has zero energy):
        // fall back to the unit-normalized aligned mean, or zeros when even
        // that has no energy. Unreachable on clean, non-degenerate data.
        let norm: f64 = aligned_sum.iter().map(|v| v * v).sum::<f64>().sqrt();
        centroid = if norm > 0.0 && norm.is_finite() {
            aligned_sum.iter().map(|v| v / norm).collect()
        } else {
            vec![0.0; m]
        };
        return Ok(centroid);
    }
    let dot: f64 = centroid
        .iter()
        .zip(aligned_sum.iter())
        .map(|(a, b)| a * b)
        .sum();
    if dot < 0.0 {
        centroid.iter_mut().for_each(|v| *v = -*v);
    }
    Ok(centroid)
}

/// Configuration for KSC clustering.
#[derive(Debug, Clone, Copy)]
pub struct KscConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum iterations.
    pub max_iter: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KscConfig {
    fn default() -> Self {
        KscConfig {
            k: 2,
            max_iter: 100,
            seed: 0,
        }
    }
}

/// Outcome of a KSC run.
#[derive(Debug, Clone)]
pub struct KscResult {
    /// Cluster index per series.
    pub labels: Vec<usize>,
    /// Spectral centroid per cluster (unit norm).
    pub centroids: Vec<Vec<f64>>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether memberships converged before the cap.
    pub converged: bool,
    /// Final sum of squared KSC assignment distances.
    pub inertia: f64,
}

/// Runs K-Spectral Centroid clustering through the unified options
/// object, with optional budget / cancellation / telemetry riding on
/// [`KscOptions`].
///
/// Hitting the iteration cap is *not* an error: the returned
/// [`KscResult`] carries `converged: false`.
///
/// # Errors
///
/// [`TsError::EmptyInput`], [`TsError::LengthMismatch`],
/// [`TsError::NonFinite`], [`TsError::InvalidK`], or
/// [`TsError::Stopped`] when the attached budget or cancellation trips.
pub fn ksc_with(series: &[Vec<f64>], opts: &KscOptions<'_>) -> TsResult<KscResult> {
    let ctrl = opts.control();
    let obs = opts.obs();
    let (result, _shifted) = ksc_core(series, &opts.config, &ctrl, obs)?;
    ctrl.report_cost(obs);
    Ok(result)
}

/// Shared KSC iteration: returns the result plus the number of series that
/// changed cluster in the final iteration.
fn ksc_core(
    series: &[Vec<f64>],
    config: &KscConfig,
    ctrl: &RunControl,
    obs: Obs<'_>,
) -> TsResult<(KscResult, usize)> {
    let n = series.len();
    let m = validate_series_set(series)?;
    ensure_k(config.k, n)?;
    let fit_span = obs.span(KscOptions::FIT_SPAN);
    let mut prev_centroids: Vec<Vec<f64>> = Vec::new();

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut labels = random_assignment(n, config.k, &mut rng);
    let mut centroids = vec![vec![0.0; m]; config.k];
    let mut dists = vec![0.0f64; n];

    let mut iterations = 0;
    let mut converged = false;
    let mut shifted = 0usize;
    // Shift scan is FFT-based: O(m log m) with a generous constant.
    let scan_cost = (m as u64).saturating_mul((m.max(2) as u64).ilog2() as u64 + 1);
    while iterations < config.max_iter {
        if let Err(reason) = ctrl.check_iteration(iterations) {
            return Err(RunControl::stop_error(labels, iterations, reason));
        }
        iterations += 1;
        if obs.is_armed() {
            prev_centroids = centroids.clone();
        }

        #[allow(clippy::needless_range_loop)]
        for j in 0..config.k {
            let members: Vec<&[f64]> = series
                .iter()
                .zip(labels.iter())
                .filter(|&(_, &l)| l == j)
                .map(|(s, _)| s.as_slice())
                .collect();
            if members.is_empty() {
                obs.counter("ksc.empty_cluster_reseeds", 1);
                let worst = dists
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map_or(0, |(i, _)| i);
                labels[worst] = j;
                centroids[j] = series[worst].clone();
                continue;
            }
            // Alignment scan per member plus the dual-Gram eigensolve.
            let eig_dim = members.len().min(m) as u64;
            let extraction_cost = (members.len() as u64).saturating_mul(scan_cost)
                + eig_dim.saturating_mul(eig_dim).saturating_mul(eig_dim);
            if let Err(reason) = ctrl.charge(extraction_cost) {
                return Err(RunControl::stop_error(labels, iterations - 1, reason));
            }
            centroids[j] = try_ksc_centroid(&members, &centroids[j])?;
        }

        let mut changed = 0usize;
        for (i, s) in series.iter().enumerate() {
            if let Err(reason) = ctrl.charge(config.k as u64 * scan_cost) {
                return Err(RunControl::stop_error(labels, iterations - 1, reason));
            }
            let mut best = f64::INFINITY;
            let mut best_j = labels[i];
            for (j, c) in centroids.iter().enumerate() {
                // KSC assigns by d̂(series, centroid). Preconditions hold:
                // the series were validated and centroids stay finite.
                let (d, _) = KscDistance::dist_shift_unchecked(s, c);
                if d < best {
                    best = d;
                    best_j = j;
                }
            }
            dists[i] = best;
            if best_j != labels[i] {
                labels[i] = best_j;
                changed += 1;
            }
        }
        shifted = changed;
        if obs.is_armed() {
            obs.iteration(&IterationEvent {
                algorithm: "ksc",
                iter: iterations - 1,
                inertia: dists.iter().map(|d| d * d).sum(),
                moved: changed,
                centroid_shift: centroid_shift(&prev_centroids, &centroids),
            });
        }
        if changed == 0 {
            converged = true;
            break;
        }
    }

    obs.counter("ksc.iterations", iterations as u64);
    fit_span.end();
    Ok((
        KscResult {
            labels,
            centroids,
            iterations,
            converged,
            inertia: dists.iter().map(|d| d * d).sum(),
        },
        shifted,
    ))
}

#[cfg(test)]
mod tests {
    use super::{ksc_centroid, ksc_with, KscConfig, KscDistance, KscOptions};
    use tsdist::Distance;

    fn bump(m: usize, center: f64) -> Vec<f64> {
        (0..m)
            .map(|i| (-((i as f64 - center) / 2.5).powi(2)).exp())
            .collect()
    }

    #[test]
    fn distance_zero_for_scaled_copy() {
        let x = bump(32, 16.0);
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v).collect();
        let (d, shift) = KscDistance::dist_shift(&x, &y);
        assert!(d < 1e-6, "{d}");
        assert_eq!(shift, 0);
    }

    #[test]
    fn distance_small_for_shifted_copy() {
        let x = bump(48, 20.0);
        let y = tsdata::distort::shift_zero_pad(&x, 6);
        let (d, shift) = KscDistance::dist_shift(&x, &y);
        assert!(d < 1e-6, "{d}");
        assert_eq!(shift, -6);
    }

    #[test]
    fn distance_bounded_by_one() {
        let x = bump(24, 8.0);
        let y: Vec<f64> = (0..24).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let d = KscDistance.dist(&x, &y);
        assert!((0.0..=1.0 + 1e-12).contains(&d), "{d}");
    }

    #[test]
    fn centroid_of_identical_members_is_parallel() {
        let x = bump(24, 12.0);
        let members: Vec<&[f64]> = vec![&x, &x];
        let c = ksc_centroid(&members, &x);
        // Centroid is unit norm, parallel to x.
        let nx: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        let dot: f64 = c.iter().zip(x.iter()).map(|(a, b)| a * b).sum::<f64>() / nx;
        assert!((dot.abs() - 1.0).abs() < 1e-8, "cosine {dot}");
        assert!(dot > 0.0, "orientation flipped");
    }

    #[test]
    fn clusters_scaled_and_shifted_families() {
        let mut series = Vec::new();
        for j in 0..5 {
            let a = tsdata::distort::shift_zero_pad(&bump(40, 12.0), j as isize - 2);
            let scaled: Vec<f64> = a.iter().map(|v| v * (1.0 + j as f64 * 0.3)).collect();
            series.push(scaled);
            let b: Vec<f64> = (0..40)
                .map(|i| ((i as f64) * 0.4).sin() * (1.0 + j as f64 * 0.2))
                .collect();
            series.push(b);
        }
        let cfg = KscConfig {
            k: 2,
            seed: 2,
            ..Default::default()
        };
        let r = ksc_with(&series, &KscOptions::from(cfg)).expect("clean input");
        for i in (0..series.len()).step_by(2) {
            assert_eq!(r.labels[i], r.labels[0], "labels {:?}", r.labels);
            assert_eq!(r.labels[i + 1], r.labels[1], "labels {:?}", r.labels);
        }
        assert_ne!(r.labels[0], r.labels[1]);
    }

    #[test]
    fn fft_shift_scan_matches_brute_force() {
        use tsdata::distort::shift_zero_pad;
        let mut state = 41u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for trial in 0..10 {
            let m = 20 + trial;
            let x: Vec<f64> = (0..m).map(|_| next()).collect();
            let y: Vec<f64> = (0..m).map(|_| next()).collect();
            let (fast, _) = KscDistance::dist_shift(&x, &y);
            // Brute force over all zero-padded shifts.
            let nx2: f64 = x.iter().map(|v| v * v).sum();
            let mut best = f64::INFINITY;
            for q in -(m as isize - 1)..m as isize {
                let yq = shift_zero_pad(&y, q);
                let ny2: f64 = yq.iter().map(|v| v * v).sum();
                let d2 = if ny2 == 0.0 {
                    1.0
                } else {
                    let dot: f64 = x.iter().zip(yq.iter()).map(|(a, b)| a * b).sum();
                    (1.0 - dot * dot / (nx2 * ny2)).max(0.0)
                };
                best = best.min(d2);
            }
            assert!(
                (fast - best.sqrt()).abs() < 1e-9,
                "trial {trial}: fast {fast} vs brute {}",
                best.sqrt()
            );
        }
    }

    #[test]
    fn zero_query_has_zero_distance() {
        let z = vec![0.0; 8];
        let x = bump(8, 4.0);
        assert_eq!(KscDistance.dist(&z, &x), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn rejects_mismatch() {
        let _ = KscDistance::dist_shift(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn try_variants_match_and_report_typed_errors() {
        use super::try_ksc_centroid;
        use tserror::TsError;
        let x = bump(32, 16.0);
        let y = tsdata::distort::shift_zero_pad(&x, 3);
        let (d, s) = KscDistance::dist_shift(&x, &y);
        let (td, ts) = KscDistance::try_dist_shift(&x, &y).expect("clean data");
        assert_eq!(s, ts);
        assert!((d - td).abs() < 1e-15);
        assert!(matches!(
            KscDistance::try_dist_shift(&[], &[]),
            Err(TsError::EmptyInput)
        ));
        assert!(matches!(
            KscDistance::try_dist_shift(&[1.0], &[1.0, 2.0]),
            Err(TsError::LengthMismatch { .. })
        ));
        assert!(matches!(
            KscDistance::try_dist_shift(&[f64::NAN], &[1.0]),
            Err(TsError::NonFinite {
                series: 0,
                index: 0
            })
        ));
        assert!(matches!(
            try_ksc_centroid(&[&x], &[1.0]),
            Err(TsError::LengthMismatch { .. })
        ));
        assert!(matches!(
            ksc_with(
                std::slice::from_ref(&x),
                &KscOptions::from(KscConfig {
                    k: 2,
                    ..Default::default()
                })
            ),
            Err(TsError::InvalidK { k: 2, n: 1 })
        ));
        assert!(matches!(
            ksc_with(&[], &KscOptions::from(KscConfig::default())),
            Err(TsError::EmptyInput)
        ));
    }

    #[test]
    fn ksc_with_matches_and_emits_telemetry() {
        let mut series = Vec::new();
        for j in 0..5 {
            let a = tsdata::distort::shift_zero_pad(&bump(40, 12.0), j as isize - 2);
            series.push(a);
            let b: Vec<f64> = (0..40).map(|i| ((i as f64) * 0.4).sin()).collect();
            series.push(b);
        }
        let cfg = KscConfig {
            k: 2,
            seed: 2,
            ..Default::default()
        };
        let old = ksc_with(&series, &KscOptions::from(cfg)).expect("clean input");
        let sink = tsobs::MemorySink::new();
        let new =
            ksc_with(&series, &KscOptions::from(cfg).with_recorder(&sink)).expect("clean input");
        assert_eq!(old.labels, new.labels);
        let events = sink.iteration_events();
        assert_eq!(events.len(), new.iterations);
        assert!(events.iter().all(|e| e.algorithm == "ksc"));
        assert_eq!(sink.span_count(KscOptions::FIT_SPAN), 1);
        let capped = ksc_with(&series, &KscOptions::from(cfg).with_max_iter(0)).expect("cap is Ok");
        assert!(!capped.converged);
    }

    #[test]
    fn centroid_of_zero_members_stays_finite() {
        let z = vec![0.0; 16];
        let members: Vec<&[f64]> = vec![&z, &z];
        let c = super::try_ksc_centroid(&members, &z).expect("valid input");
        assert_eq!(c.len(), 16);
        assert!(c.iter().all(|v| v.is_finite()));
    }
}
