//! K-Spectral Centroid clustering (Yang & Leskovec, WSDM 2011) — the `KSC`
//! baseline of Table 3.
//!
//! KSC uses a distance invariant to *pairwise scaling and shifting*:
//!
//! ```text
//! d̂(x, y) = min_{α, q} ‖x − α·y_(q)‖ / ‖x‖
//! ```
//!
//! where `y_(q)` is `y` shifted by `q` with zero padding and the optimal
//! scaling for a fixed shift is `α* = xᵀy_(q) / ‖y_(q)‖²`. Its centroid is
//! the eigenvector of the *smallest* eigenvalue of
//! `M = Σᵢ (I − bᵢbᵢᵀ)` with `bᵢ = xᵢ' / ‖xᵢ'‖` over aligned members —
//! matrix-decomposition-based like k-Shape's, but minimizing a different
//! objective.

use tsrand::StdRng;

use kshape::init::random_assignment;
use tsdata::distort::shift_zero_pad;
use tsdist::Distance;
use tslinalg::eigen::symmetric_eigen;
use tslinalg::matrix::Matrix;

/// The KSC scale-and-shift-invariant distance.
#[derive(Debug, Clone, Copy, Default)]
pub struct KscDistance;

impl KscDistance {
    /// Computes `d̂(x, y)` together with the optimal shift of `y`.
    ///
    /// Efficient form: the dot products `xᵀy_(q)` over *all* zero-padded
    /// shifts are exactly the cross-correlation sequence of `x` and `y`
    /// (computed with one FFT), and the shifted norms `‖y_(q)‖²` are prefix
    /// and suffix sums of `y²` — so the full shift scan costs
    /// O(m log m) instead of O(m²).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or inputs are empty.
    #[must_use]
    pub fn dist_shift(x: &[f64], y: &[f64]) -> (f64, isize) {
        assert_eq!(x.len(), y.len(), "KSC requires equal-length sequences");
        assert!(!x.is_empty(), "KSC requires non-empty sequences");
        let m = x.len();
        let nx2: f64 = x.iter().map(|v| v * v).sum();
        if nx2 == 0.0 {
            // ‖x‖ = 0: conventionally distance 0 to everything scalable to 0.
            return (0.0, 0);
        }
        // cc[m-1+k] = Σ_l x[l+k]·y[l] = xᵀ y_(k) for lag k.
        let cc = tsfft::correlate::cross_correlate_fft(x, y);
        // prefix[t] = Σ_{l<t} y[l]².
        let mut prefix = vec![0.0; m + 1];
        for (i, v) in y.iter().enumerate() {
            prefix[i + 1] = prefix[i] + v * v;
        }
        let total = prefix[m];
        let mut best = f64::INFINITY;
        let mut best_shift = 0isize;
        for q in -(m as isize - 1)..m as isize {
            // ‖y_(q)‖²: shift right by q keeps y[0..m-q]; shift left by |q|
            // keeps y[|q|..m].
            let ny2 = if q >= 0 {
                prefix[m - q as usize]
            } else {
                total - prefix[(-q) as usize]
            };
            // Shifts that retain essentially no energy of `y` are
            // meaningless and numerically treacherous: the FFT dot product
            // carries absolute noise ~1e-15 which would divide by the tiny
            // retained energy and fake a perfect correlation.
            let d2 = if ny2 <= total * 1e-9 {
                1.0
            } else {
                let dot = cc[(m as isize - 1 + q) as usize];
                // ‖x − α*y_q‖²/‖x‖² = 1 − dot²/(‖x‖²‖y_q‖²)
                (1.0 - (dot * dot / (nx2 * ny2)).min(1.0)).max(0.0)
            };
            if d2 < best {
                best = d2;
                best_shift = q;
            }
        }
        (best.sqrt(), best_shift)
    }
}

impl Distance for KscDistance {
    fn name(&self) -> String {
        "KSC-dist".into()
    }

    fn dist(&self, x: &[f64], y: &[f64]) -> f64 {
        Self::dist_shift(x, y).0
    }
}

/// Computes the KSC centroid of aligned members: the eigenvector of the
/// smallest eigenvalue of `M = Σ (I − bbᵀ)`, oriented toward the members.
///
/// Members are aligned toward `reference` first (unless it is all-zero).
///
/// # Panics
///
/// Panics if member lengths differ from the reference.
#[must_use]
pub fn ksc_centroid(members: &[&[f64]], reference: &[f64]) -> Vec<f64> {
    let m = reference.len();
    if members.is_empty() || m == 0 {
        return reference.to_vec();
    }
    let ref_is_zero = reference.iter().all(|&v| v == 0.0);

    // M = Σᵢ (I − bᵢbᵢᵀ) = n·I − G with G = BᵀB over the unit-normalized
    // aligned members. The smallest eigenvector of M is the dominant
    // eigenvector of G; when n < m we obtain it from the n×n dual Gram
    // matrix BBᵀ (u dominant there ⇒ Bᵀu dominant for G) — identical
    // result, O(n²m + n³) instead of O(m³).
    let n = members.len();
    let mut b = Matrix::zeros(n, m);
    let mut aligned_sum = vec![0.0; m];
    for (r, member) in members.iter().enumerate() {
        assert_eq!(member.len(), m, "member length must match the reference");
        let aligned = if ref_is_zero {
            member.to_vec()
        } else {
            let (_, shift) = KscDistance::dist_shift(reference, member);
            // dist_shift aligns `member` toward `reference` by shift `q`.
            shift_zero_pad(member, shift)
        };
        let norm: f64 = aligned.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > 0.0 {
            let row = b.row_mut(r);
            for (o, v) in row.iter_mut().zip(aligned.iter()) {
                *o = v / norm;
            }
        }
        for (acc, v) in aligned_sum.iter_mut().zip(aligned.iter()) {
            *acc += v;
        }
    }

    let mut centroid = if n < m {
        let mut dual = Matrix::zeros(n, n);
        for r in 0..n {
            for c in 0..=r {
                let d = tslinalg::matrix::dot(b.row(r), b.row(c));
                dual[(r, c)] = d;
                dual[(c, r)] = d;
            }
        }
        let u = symmetric_eigen(&dual).dominant_vector();
        let mut v = vec![0.0; m];
        for (r, &ur) in u.iter().enumerate() {
            if ur != 0.0 {
                for (o, x) in v.iter_mut().zip(b.row(r).iter()) {
                    *o += ur * x;
                }
            }
        }
        tslinalg::matrix::normalize(&mut v);
        v
    } else {
        let mut g = Matrix::zeros(m, m);
        for r in 0..n {
            g.rank_one_update(b.row(r), 1.0);
        }
        symmetric_eigen(&g).dominant_vector()
    };
    let dot: f64 = centroid
        .iter()
        .zip(aligned_sum.iter())
        .map(|(a, b)| a * b)
        .sum();
    if dot < 0.0 {
        centroid.iter_mut().for_each(|v| *v = -*v);
    }
    centroid
}

/// Configuration for KSC clustering.
#[derive(Debug, Clone, Copy)]
pub struct KscConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum iterations.
    pub max_iter: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KscConfig {
    fn default() -> Self {
        KscConfig {
            k: 2,
            max_iter: 100,
            seed: 0,
        }
    }
}

/// Outcome of a KSC run.
#[derive(Debug, Clone)]
pub struct KscResult {
    /// Cluster index per series.
    pub labels: Vec<usize>,
    /// Spectral centroid per cluster (unit norm).
    pub centroids: Vec<Vec<f64>>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether memberships converged before the cap.
    pub converged: bool,
    /// Final sum of squared KSC assignment distances.
    pub inertia: f64,
}

/// Runs K-Spectral Centroid clustering.
///
/// # Panics
///
/// Panics if `series` is empty or ragged, `k == 0`, or `k > n`.
#[must_use]
pub fn ksc(series: &[Vec<f64>], config: &KscConfig) -> KscResult {
    let n = series.len();
    assert!(n > 0, "KSC requires at least one series");
    assert!(config.k > 0, "k must be positive");
    assert!(config.k <= n, "k must not exceed the number of series");
    let m = series[0].len();
    assert!(
        series.iter().all(|s| s.len() == m),
        "all series must have equal length"
    );

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut labels = random_assignment(n, config.k, &mut rng);
    let mut centroids = vec![vec![0.0; m]; config.k];
    let mut dists = vec![0.0f64; n];

    let mut iterations = 0;
    let mut converged = false;
    while iterations < config.max_iter {
        iterations += 1;

        #[allow(clippy::needless_range_loop)]
        for j in 0..config.k {
            let members: Vec<&[f64]> = series
                .iter()
                .zip(labels.iter())
                .filter(|&(_, &l)| l == j)
                .map(|(s, _)| s.as_slice())
                .collect();
            if members.is_empty() {
                let worst = dists
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN distance"))
                    .map_or(0, |(i, _)| i);
                labels[worst] = j;
                centroids[j] = series[worst].clone();
                continue;
            }
            centroids[j] = ksc_centroid(&members, &centroids[j]);
        }

        let mut changed = false;
        for (i, s) in series.iter().enumerate() {
            let mut best = f64::INFINITY;
            let mut best_j = labels[i];
            for (j, c) in centroids.iter().enumerate() {
                // KSC assigns by d̂(series, centroid).
                let (d, _) = KscDistance::dist_shift(s, c);
                if d < best {
                    best = d;
                    best_j = j;
                }
            }
            dists[i] = best;
            if best_j != labels[i] {
                labels[i] = best_j;
                changed = true;
            }
        }
        if !changed {
            converged = true;
            break;
        }
    }

    KscResult {
        labels,
        centroids,
        iterations,
        converged,
        inertia: dists.iter().map(|d| d * d).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::{ksc, ksc_centroid, KscConfig, KscDistance};
    use tsdist::Distance;

    fn bump(m: usize, center: f64) -> Vec<f64> {
        (0..m)
            .map(|i| (-((i as f64 - center) / 2.5).powi(2)).exp())
            .collect()
    }

    #[test]
    fn distance_zero_for_scaled_copy() {
        let x = bump(32, 16.0);
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v).collect();
        let (d, shift) = KscDistance::dist_shift(&x, &y);
        assert!(d < 1e-6, "{d}");
        assert_eq!(shift, 0);
    }

    #[test]
    fn distance_small_for_shifted_copy() {
        let x = bump(48, 20.0);
        let y = tsdata::distort::shift_zero_pad(&x, 6);
        let (d, shift) = KscDistance::dist_shift(&x, &y);
        assert!(d < 1e-6, "{d}");
        assert_eq!(shift, -6);
    }

    #[test]
    fn distance_bounded_by_one() {
        let x = bump(24, 8.0);
        let y: Vec<f64> = (0..24).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let d = KscDistance.dist(&x, &y);
        assert!((0.0..=1.0 + 1e-12).contains(&d), "{d}");
    }

    #[test]
    fn centroid_of_identical_members_is_parallel() {
        let x = bump(24, 12.0);
        let members: Vec<&[f64]> = vec![&x, &x];
        let c = ksc_centroid(&members, &x);
        // Centroid is unit norm, parallel to x.
        let nx: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        let dot: f64 = c.iter().zip(x.iter()).map(|(a, b)| a * b).sum::<f64>() / nx;
        assert!((dot.abs() - 1.0).abs() < 1e-8, "cosine {dot}");
        assert!(dot > 0.0, "orientation flipped");
    }

    #[test]
    fn clusters_scaled_and_shifted_families() {
        let mut series = Vec::new();
        for j in 0..5 {
            let a = tsdata::distort::shift_zero_pad(&bump(40, 12.0), j as isize - 2);
            let scaled: Vec<f64> = a.iter().map(|v| v * (1.0 + j as f64 * 0.3)).collect();
            series.push(scaled);
            let b: Vec<f64> = (0..40)
                .map(|i| ((i as f64) * 0.4).sin() * (1.0 + j as f64 * 0.2))
                .collect();
            series.push(b);
        }
        let r = ksc(
            &series,
            &KscConfig {
                k: 2,
                seed: 2,
                ..Default::default()
            },
        );
        for i in (0..series.len()).step_by(2) {
            assert_eq!(r.labels[i], r.labels[0], "labels {:?}", r.labels);
            assert_eq!(r.labels[i + 1], r.labels[1], "labels {:?}", r.labels);
        }
        assert_ne!(r.labels[0], r.labels[1]);
    }

    #[test]
    fn fft_shift_scan_matches_brute_force() {
        use tsdata::distort::shift_zero_pad;
        let mut state = 41u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for trial in 0..10 {
            let m = 20 + trial;
            let x: Vec<f64> = (0..m).map(|_| next()).collect();
            let y: Vec<f64> = (0..m).map(|_| next()).collect();
            let (fast, _) = KscDistance::dist_shift(&x, &y);
            // Brute force over all zero-padded shifts.
            let nx2: f64 = x.iter().map(|v| v * v).sum();
            let mut best = f64::INFINITY;
            for q in -(m as isize - 1)..m as isize {
                let yq = shift_zero_pad(&y, q);
                let ny2: f64 = yq.iter().map(|v| v * v).sum();
                let d2 = if ny2 == 0.0 {
                    1.0
                } else {
                    let dot: f64 = x.iter().zip(yq.iter()).map(|(a, b)| a * b).sum();
                    (1.0 - dot * dot / (nx2 * ny2)).max(0.0)
                };
                best = best.min(d2);
            }
            assert!(
                (fast - best.sqrt()).abs() < 1e-9,
                "trial {trial}: fast {fast} vs brute {}",
                best.sqrt()
            );
        }
    }

    #[test]
    fn zero_query_has_zero_distance() {
        let z = vec![0.0; 8];
        let x = bump(8, 4.0);
        assert_eq!(KscDistance.dist(&z, &x), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn rejects_mismatch() {
        let _ = KscDistance::dist_shift(&[1.0], &[1.0, 2.0]);
    }
}
