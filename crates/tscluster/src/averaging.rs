//! Time-series averaging techniques reviewed in paper Section 2.5.
//!
//! Besides DBA (in [`crate::dba`]), the paper surveys two earlier
//! DTW-based averaging schemes; both are implemented here so the averaging
//! design space the paper describes is fully exercised by the ablation
//! bench and tests:
//!
//! * **NLAAF** (Gupta et al., 1996) — nonlinear alignment and averaging
//!   filters: average *pairs* of sequences by taking the midpoint of each
//!   DTW-coupled coordinate pair, resampling back to length `m`, and apply
//!   this pairwise reduction sequentially until one sequence remains.
//! * **PSA** (Niennattrakul & Ratanamahatana, 2009) — prioritized shape
//!   averaging: a hierarchical (guide-tree) variant where each averaged
//!   node carries a weight equal to the number of sequences it represents
//!   and coupled coordinates are combined as the weighted center.

use tsdata::distort::resample;
use tsdist::dtw::{dtw_distance, dtw_path};

/// DTW-couples `a` and `b` and returns the weighted-center sequence of the
/// coupling, resampled back to the common length.
///
/// With `wa = wb` this is NLAAF's midpoint average; with unequal weights it
/// is PSA's weighted center.
///
/// # Panics
///
/// Panics if lengths differ, inputs are empty, or weights are not positive.
#[must_use]
pub fn pairwise_average(a: &[f64], b: &[f64], wa: f64, wb: f64, window: Option<usize>) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "averaging requires equal lengths");
    assert!(!a.is_empty(), "averaging requires non-empty sequences");
    assert!(wa > 0.0 && wb > 0.0, "weights must be positive");
    let (_, path) = dtw_path(a, b, window);
    // One averaged value per coupled pair; the path has between m and 2m-1
    // entries, so resample back to m afterwards.
    let coupled: Vec<f64> = path
        .iter()
        .map(|&(i, j)| (wa * a[i] + wb * b[j]) / (wa + wb))
        .collect();
    resample(&coupled, a.len())
}

/// NLAAF: sequential pairwise averaging. The running average is combined
/// with each sequence in turn with equal pair weights, as in the original
/// tournament formulation applied left-to-right.
///
/// # Panics
///
/// Panics if `members` is empty or ragged.
#[must_use]
pub fn nlaaf(members: &[&[f64]], window: Option<usize>) -> Vec<f64> {
    assert!(!members.is_empty(), "NLAAF requires at least one sequence");
    let m = members[0].len();
    assert!(
        members.iter().all(|s| s.len() == m),
        "all sequences must have equal length"
    );
    let mut avg = members[0].to_vec();
    for member in &members[1..] {
        avg = pairwise_average(&avg, member, 1.0, 1.0, window);
    }
    avg
}

/// PSA: hierarchical weighted averaging. Sequences start with weight 1;
/// the two *closest* (under DTW) items are merged into a weighted average
/// whose weight is the sum, until one remains — a greedy guide tree.
///
/// # Panics
///
/// Panics if `members` is empty or ragged.
#[must_use]
pub fn psa(members: &[&[f64]], window: Option<usize>) -> Vec<f64> {
    assert!(!members.is_empty(), "PSA requires at least one sequence");
    let m = members[0].len();
    assert!(
        members.iter().all(|s| s.len() == m),
        "all sequences must have equal length"
    );
    let mut pool: Vec<(Vec<f64>, f64)> = members.iter().map(|s| (s.to_vec(), 1.0)).collect();
    while pool.len() > 1 {
        // Find the closest pair under DTW.
        let mut best = f64::INFINITY;
        let mut pair = (0usize, 1usize);
        for i in 0..pool.len() {
            for j in i + 1..pool.len() {
                let d = dtw_distance(&pool[i].0, &pool[j].0, window);
                if d < best {
                    best = d;
                    pair = (i, j);
                }
            }
        }
        let (i, j) = pair;
        let merged = pairwise_average(&pool[i].0, &pool[j].0, pool[i].1, pool[j].1, window);
        let weight = pool[i].1 + pool[j].1;
        // Remove j first (j > i) to keep indices valid.
        pool.swap_remove(j);
        pool[i] = (merged, weight);
        // swap_remove may have moved an element into j; if it moved into i
        // that cannot happen since j != i and j was the removed slot.
    }
    pool.pop().expect("one sequence remains").0
}

#[cfg(test)]
mod tests {
    use super::{nlaaf, pairwise_average, psa};
    use tsdist::dtw::dtw_distance;

    fn bump(m: usize, center: f64) -> Vec<f64> {
        (0..m)
            .map(|i| (-((i as f64 - center) / 2.5).powi(2)).exp())
            .collect()
    }

    #[test]
    fn pairwise_average_of_identical_is_identity() {
        let x = bump(32, 16.0);
        let avg = pairwise_average(&x, &x, 1.0, 1.0, None);
        for (a, b) in avg.iter().zip(x.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn weighted_center_respects_weights() {
        let a = vec![0.0; 16];
        let b = vec![4.0; 16];
        // Flat sequences couple diagonally; weight 3:1 → value 1.0.
        let avg = pairwise_average(&a, &b, 3.0, 1.0, None);
        for v in &avg {
            assert!((v - 1.0).abs() < 1e-9, "{v}");
        }
    }

    #[test]
    fn nlaaf_of_copies_is_the_copy() {
        let x = bump(24, 10.0);
        let members: Vec<&[f64]> = vec![&x, &x, &x, &x];
        let avg = nlaaf(&members, None);
        for (a, b) in avg.iter().zip(x.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn psa_of_copies_is_the_copy() {
        let x = bump(24, 10.0);
        let members: Vec<&[f64]> = vec![&x, &x, &x];
        let avg = psa(&members, None);
        for (a, b) in avg.iter().zip(x.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn averages_stay_representative_under_dtw() {
        // A DTW-aware average of phase-shifted bumps should represent the
        // members (in total DTW cost) at least as well as the arithmetic
        // mean, which smears the bump into a plateau.
        let members_owned: Vec<Vec<f64>> =
            [10.0, 16.0, 22.0].iter().map(|&c| bump(48, c)).collect();
        let members: Vec<&[f64]> = members_owned.iter().map(Vec::as_slice).collect();
        let mut mean = vec![0.0; 48];
        for s in &members {
            for (a, v) in mean.iter_mut().zip(s.iter()) {
                *a += v / members.len() as f64;
            }
        }
        let cost =
            |avg: &[f64]| -> f64 { members.iter().map(|s| dtw_distance(avg, s, None)).sum() };
        let mean_cost = cost(&mean);
        for avg in [nlaaf(&members, None), psa(&members, None)] {
            assert_eq!(avg.len(), 48);
            let c = cost(&avg);
            assert!(
                c <= mean_cost + 1e-9,
                "DTW average cost {c} vs arithmetic mean {mean_cost}"
            );
        }
    }

    #[test]
    fn dba_beats_nlaaf_and_psa_on_shifted_bumps() {
        // The paper: "DBA seems to be the most efficient and accurate
        // averaging approach when DTW is used" — verify the accuracy half
        // on a case with enough members for the order-dependence of
        // NLAAF/PSA to hurt.
        let members_owned: Vec<Vec<f64>> = [10.0, 13.0, 16.0, 19.0, 22.0]
            .iter()
            .map(|&c| bump(48, c))
            .collect();
        let members: Vec<&[f64]> = members_owned.iter().map(Vec::as_slice).collect();
        let cost = |avg: &[f64]| -> f64 {
            members
                .iter()
                .map(|s| dtw_distance(avg, s, None).powi(2))
                .sum()
        };
        let mut mean = vec![0.0; 48];
        for s in &members {
            for (a, v) in mean.iter_mut().zip(s.iter()) {
                *a += v / members.len() as f64;
            }
        }
        let dba = crate::dba::dba_average(&members, &mean, 10, None);
        let c_dba = cost(&dba);
        let c_nlaaf = cost(&nlaaf(&members, None));
        let c_psa = cost(&psa(&members, None));
        assert!(c_dba <= c_nlaaf + 1e-9, "DBA {c_dba} vs NLAAF {c_nlaaf}");
        assert!(c_dba <= c_psa + 1e-9, "DBA {c_dba} vs PSA {c_psa}");
    }

    #[test]
    #[should_panic(expected = "at least one sequence")]
    fn nlaaf_rejects_empty() {
        let _ = nlaaf(&[], None);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn pairwise_rejects_bad_weights() {
        let _ = pairwise_average(&[1.0], &[2.0], 0.0, 1.0, None);
    }
}
