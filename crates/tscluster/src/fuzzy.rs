//! Fuzzy c-means clustering with a pluggable distance.
//!
//! The paper's related work (Section 6) cites Golay et al. [28], who used a
//! cross-correlation distance with arithmetic-mean centroids for *fuzzy*
//! clustering of fMRI series. This module provides that family: fuzzy
//! c-means (Bezdek) with soft memberships
//!
//! ```text
//! u_ij = 1 / Σ_l (d(x_i, c_j) / d(x_i, c_l))^{2/(fuzz−1)}
//! c_j  = Σ_i u_ij^fuzz · x_i / Σ_i u_ij^fuzz
//! ```
//!
//! and any [`Distance`] (ED reproduces classic FCM; SBD reproduces the
//! Golay-style correlation variant).

use tsrand::Rng;
use tsrand::StdRng;

use tsdist::Distance;
use tserror::{ensure_k, validate_series_set, TsError, TsResult};
use tsobs::{IterationEvent, Obs};
use tsrun::RunControl;

use crate::options::centroid_shift;
pub use crate::options::FuzzyOptions;

/// Configuration for fuzzy c-means.
#[derive(Debug, Clone, Copy)]
pub struct FuzzyConfig {
    /// Number of clusters.
    pub k: usize,
    /// Fuzzifier `m > 1`; 2.0 is the classic choice.
    pub fuzziness: f64,
    /// Maximum iterations.
    pub max_iter: usize,
    /// Convergence threshold on the maximum membership change.
    pub tol: f64,
    /// RNG seed for the initial memberships.
    pub seed: u64,
}

impl Default for FuzzyConfig {
    fn default() -> Self {
        FuzzyConfig {
            k: 2,
            fuzziness: 2.0,
            max_iter: 100,
            tol: 1e-5,
            seed: 0,
        }
    }
}

/// Outcome of a fuzzy c-means run.
#[derive(Debug, Clone)]
pub struct FuzzyResult {
    /// Membership matrix: `memberships[i][j]` is series `i`'s degree in
    /// cluster `j`; each row sums to 1.
    pub memberships: Vec<Vec<f64>>,
    /// Hardened labels (argmax membership per series).
    pub labels: Vec<usize>,
    /// Weighted-mean centroid per cluster.
    pub centroids: Vec<Vec<f64>>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the membership change dropped below tolerance.
    pub converged: bool,
}

/// Runs fuzzy c-means through the unified options object, with optional
/// budget / cancellation / telemetry riding on [`FuzzyOptions`].
///
/// Hitting the iteration cap is *not* an error: the returned
/// [`FuzzyResult`] carries `converged: false`.
///
/// # Errors
///
/// [`TsError::EmptyInput`], [`TsError::LengthMismatch`],
/// [`TsError::NonFinite`], [`TsError::InvalidK`],
/// [`TsError::NumericalFailure`] (a fuzzifier `<= 1`), or
/// [`TsError::Stopped`] when the attached budget or cancellation trips.
pub fn fuzzy_cmeans_with<D: Distance + ?Sized>(
    series: &[Vec<f64>],
    dist: &D,
    opts: &FuzzyOptions<'_>,
) -> TsResult<FuzzyResult> {
    let ctrl = opts.control();
    let obs = opts.obs();
    let (result, _shifted) = fuzzy_core(series, dist, &opts.config, &ctrl, obs)?;
    ctrl.report_cost(obs);
    Ok(result)
}

/// Hardens a membership matrix: argmax membership per row.
fn harden(u: &[Vec<f64>]) -> Vec<usize> {
    u.iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map_or(0, |(j, _)| j)
        })
        .collect()
}

/// Shared iteration: returns the result plus the number of series whose
/// membership row still moved by at least `tol` in the final iteration.
fn fuzzy_core<D: Distance + ?Sized>(
    series: &[Vec<f64>],
    dist: &D,
    config: &FuzzyConfig,
    ctrl: &RunControl,
    obs: Obs<'_>,
) -> TsResult<(FuzzyResult, usize)> {
    let n = series.len();
    let m = validate_series_set(series)?;
    ensure_k(config.k, n)?;
    if !(config.fuzziness.is_finite() && config.fuzziness > 1.0) {
        return Err(TsError::NumericalFailure {
            context: format!("fuzziness must exceed 1 (got {})", config.fuzziness),
        });
    }
    let fit_span = obs.span(FuzzyOptions::FIT_SPAN);
    let mut prev_centroids: Vec<Vec<f64>> = Vec::new();

    let mut rng = StdRng::seed_from_u64(config.seed);
    // Random row-stochastic membership matrix.
    let mut u: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            let mut row: Vec<f64> = (0..config.k).map(|_| rng.gen_range(0.01..1.0)).collect();
            let s: f64 = row.iter().sum();
            row.iter_mut().for_each(|v| *v /= s);
            row
        })
        .collect();
    let mut centroids = vec![vec![0.0; m]; config.k];
    let exponent = 2.0 / (config.fuzziness - 1.0);

    let mut iterations = 0;
    let mut converged = false;
    let mut shifted = 0usize;
    let pair_cost = dist.cost_hint(m);
    while iterations < config.max_iter {
        if let Err(reason) = ctrl.check_iteration(iterations) {
            return Err(RunControl::stop_error(harden(&u), iterations, reason));
        }
        iterations += 1;
        if obs.is_armed() {
            prev_centroids = centroids.clone();
        }

        // Centroids: fuzzified weighted means.
        for (j, c) in centroids.iter_mut().enumerate() {
            let mut weight_sum = 0.0;
            c.iter_mut().for_each(|v| *v = 0.0);
            for (row, s) in u.iter().zip(series.iter()) {
                let w = row[j].powf(config.fuzziness);
                weight_sum += w;
                for (acc, v) in c.iter_mut().zip(s.iter()) {
                    *acc += w * v;
                }
            }
            if weight_sum > 0.0 {
                c.iter_mut().for_each(|v| *v /= weight_sum);
            }
        }

        // Memberships from distances.
        let mut max_delta = 0.0f64;
        let mut moved = 0usize;
        // Telemetry-only: hardened (nearest-centroid) inertia proxy.
        let mut inertia_now = 0.0f64;
        for (i, s) in series.iter().enumerate() {
            if let Err(reason) = ctrl.charge(config.k as u64 * pair_cost) {
                return Err(RunControl::stop_error(harden(&u), iterations - 1, reason));
            }
            let ds: Vec<f64> = centroids.iter().map(|c| dist.dist(s, c)).collect();
            if obs.is_armed() {
                let best = ds.iter().copied().fold(f64::INFINITY, f64::min);
                inertia_now += best * best;
            }
            // Exact-hit handling: all membership on the zero-distance
            // centroids.
            let zeros: Vec<usize> = ds
                .iter()
                .enumerate()
                .filter(|(_, &d)| d <= 0.0)
                .map(|(j, _)| j)
                .collect();
            let new_row: Vec<f64> = if zeros.is_empty() {
                (0..config.k)
                    .map(|j| {
                        let denom: f64 = ds.iter().map(|&dl| (ds[j] / dl).powf(exponent)).sum();
                        1.0 / denom
                    })
                    .collect()
            } else {
                let share = 1.0 / zeros.len() as f64;
                (0..config.k)
                    .map(|j| if zeros.contains(&j) { share } else { 0.0 })
                    .collect()
            };
            let row_delta = u[i]
                .iter()
                .zip(new_row.iter())
                .map(|(old, new)| (old - new).abs())
                .fold(0.0f64, f64::max);
            if row_delta >= config.tol {
                moved += 1;
            }
            max_delta = max_delta.max(row_delta);
            u[i] = new_row;
        }
        shifted = moved;
        if obs.is_armed() {
            obs.iteration(&IterationEvent {
                algorithm: "fuzzy_cmeans",
                iter: iterations - 1,
                inertia: inertia_now,
                moved,
                centroid_shift: centroid_shift(&prev_centroids, &centroids),
            });
        }
        if max_delta < config.tol {
            converged = true;
            break;
        }
    }

    obs.counter("fuzzy_cmeans.iterations", iterations as u64);
    fit_span.end();
    let labels = harden(&u);
    Ok((
        FuzzyResult {
            memberships: u,
            labels,
            centroids,
            iterations,
            converged,
        },
        shifted,
    ))
}

#[cfg(test)]
mod tests {
    use super::{fuzzy_cmeans_with, FuzzyConfig, FuzzyOptions, FuzzyResult};
    use kshape::sbd::Sbd;
    use tsdist::{Distance, EuclideanDistance};

    fn fit<D: Distance + ?Sized>(series: &[Vec<f64>], dist: &D, cfg: FuzzyConfig) -> FuzzyResult {
        fuzzy_cmeans_with(series, dist, &FuzzyOptions::from(cfg)).expect("clean input")
    }

    fn blobs() -> Vec<Vec<f64>> {
        let mut out = Vec::new();
        for j in 0..5 {
            out.push(vec![0.0 + j as f64 * 0.05, 0.2]);
            out.push(vec![8.0 - j as f64 * 0.05, 7.8]);
        }
        out
    }

    #[test]
    fn memberships_are_row_stochastic() {
        let r = fit(&blobs(), &EuclideanDistance, FuzzyConfig::default());
        for row in &r.memberships {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row sum {s}");
            for &v in row {
                assert!((0.0..=1.0 + 1e-12).contains(&v));
            }
        }
    }

    #[test]
    fn hardened_labels_separate_blobs() {
        let r = fit(
            &blobs(),
            &EuclideanDistance,
            FuzzyConfig {
                seed: 3,
                ..Default::default()
            },
        );
        assert!(r.converged);
        for i in (0..10).step_by(2) {
            assert_eq!(r.labels[i], r.labels[0]);
            assert_eq!(r.labels[i + 1], r.labels[1]);
        }
        assert_ne!(r.labels[0], r.labels[1]);
    }

    #[test]
    fn memberships_are_confident_on_separated_data() {
        let r = fit(
            &blobs(),
            &EuclideanDistance,
            FuzzyConfig {
                seed: 1,
                ..Default::default()
            },
        );
        for (row, &l) in r.memberships.iter().zip(r.labels.iter()) {
            assert!(row[l] > 0.9, "weak membership {row:?}");
        }
    }

    #[test]
    fn midpoint_gets_split_membership() {
        // A point exactly between two clusters ends with ~50/50 membership.
        let mut series = blobs();
        series.push(vec![4.0, 4.0]);
        let r = fit(
            &series,
            &EuclideanDistance,
            FuzzyConfig {
                seed: 2,
                ..Default::default()
            },
        );
        let mid = r.memberships.last().unwrap();
        assert!((mid[0] - 0.5).abs() < 0.1, "{mid:?}");
    }

    #[test]
    fn sbd_variant_clusters_shifted_shapes() {
        // Golay-style: SBD + soft memberships on phase-shifted bumps.
        let bump = |c: f64| -> Vec<f64> {
            (0..48)
                .map(|i| (-((i as f64 - c) / 2.5).powi(2)).exp())
                .collect()
        };
        let mut series = Vec::new();
        for j in 0..5 {
            series.push(tsdata::normalize::z_normalize(&bump(12.0 + j as f64)));
            let neg: Vec<f64> = bump(32.0 + j as f64).iter().map(|v| -v).collect();
            series.push(tsdata::normalize::z_normalize(&neg));
        }
        let r = fit(
            &series,
            &Sbd::new(),
            FuzzyConfig {
                seed: 5,
                ..Default::default()
            },
        );
        for i in (0..10).step_by(2) {
            assert_eq!(r.labels[i], r.labels[0], "{:?}", r.labels);
            assert_eq!(r.labels[i + 1], r.labels[1], "{:?}", r.labels);
        }
        assert_ne!(r.labels[0], r.labels[1]);
    }

    #[test]
    fn rejects_bad_fuzzifier() {
        assert!(matches!(
            fuzzy_cmeans_with(
                &blobs(),
                &EuclideanDistance,
                &FuzzyOptions::from(FuzzyConfig {
                    fuzziness: 1.0,
                    ..Default::default()
                })
            ),
            Err(tserror::TsError::NumericalFailure { .. })
        ));
    }

    #[test]
    fn options_api_reports_typed_errors() {
        use tserror::TsError;
        let series = blobs();
        let opts = FuzzyOptions::from(FuzzyConfig {
            seed: 3,
            ..Default::default()
        });
        assert!(matches!(
            fuzzy_cmeans_with(&[], &EuclideanDistance, &opts),
            Err(TsError::EmptyInput)
        ));
        assert!(matches!(
            fuzzy_cmeans_with(
                &series,
                &EuclideanDistance,
                &FuzzyOptions::from(FuzzyConfig {
                    k: series.len() + 1,
                    ..Default::default()
                })
            ),
            Err(TsError::InvalidK { .. })
        ));
        assert!(matches!(
            fuzzy_cmeans_with(&[vec![1.0, f64::NAN]], &EuclideanDistance, &opts),
            Err(TsError::NonFinite {
                series: 0,
                index: 1
            })
        ));
    }

    #[test]
    fn fuzzy_with_matches_and_emits_telemetry() {
        let series = blobs();
        let cfg = FuzzyConfig {
            seed: 3,
            ..Default::default()
        };
        let old = fit(&series, &EuclideanDistance, cfg);
        let sink = tsobs::MemorySink::new();
        let new = fuzzy_cmeans_with(
            &series,
            &EuclideanDistance,
            &FuzzyOptions::from(cfg).with_recorder(&sink),
        )
        .expect("clean input");
        assert_eq!(old.labels, new.labels);
        let events = sink.iteration_events();
        assert_eq!(events.len(), new.iterations);
        assert!(events.iter().all(|e| e.algorithm == "fuzzy_cmeans"));
        assert_eq!(sink.span_count(FuzzyOptions::FIT_SPAN), 1);
        let capped = fuzzy_cmeans_with(
            &series,
            &EuclideanDistance,
            &FuzzyOptions::from(cfg).with_max_iter(0),
        )
        .expect("cap is Ok");
        assert!(!capped.converged);
    }
}
