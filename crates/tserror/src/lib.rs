//! Typed errors and input validation for the workspace's fallible
//! (`try_*`) clustering and distance APIs.
//!
//! Every public entry point of the clustering stack historically panicked
//! on malformed input — NaN samples, empty datasets, ragged series,
//! `k > n` — which is disqualifying for a service handling arbitrary user
//! traffic. This crate provides the shared [`TsError`] taxonomy that the
//! `try_*` variants across `kshape`, `tscluster`, `tsdist`, and `tsdata`
//! return instead, plus the validation helpers they call so that every
//! algorithm performs *identical* checks in *identical* order.
//!
//! Design rules (see CONTRIBUTING.md, "Error handling policy"):
//!
//! * `try_*` functions validate once, up front, and never panic on any
//!   input;
//! * the legacy panicking functions are thin wrappers that
//!   `unwrap_or_else(|e| panic!("{e}"))` the fallible core, so their panic
//!   messages are exactly the [`std::fmt::Display`] strings below — those
//!   strings deliberately contain the historical assertion phrases
//!   (`"at least one series"`, `"equal length"`, `"k must not exceed"`,
//!   …) so existing `#[should_panic]` expectations keep matching;
//! * [`TsError::NotConverged`] carries the last labeling and iteration
//!   diagnostics so callers can still consume a best-effort result.

#![warn(missing_docs)]

/// Why execution control stopped a run before natural convergence.
///
/// Produced by the `tsrun` crate's `Budget` / `CancelToken` machinery and
/// carried inside [`TsError::Stopped`]. Lives here (rather than in
/// `tsrun`) so that the error taxonomy stays the single shared vocabulary
/// of every crate in the workspace without dependency cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The wall-clock deadline of the budget elapsed.
    Deadline,
    /// A cooperating [`CancelToken`](TsError) was triggered by the caller.
    Cancelled,
    /// The budget's iteration cap was reached (distinct from an
    /// algorithm's own `max_iter`, which reports
    /// [`TsError::NotConverged`]).
    IterationCap,
    /// The budget's cost-step quota was exhausted.
    CostCap,
}

impl StopReason {
    /// All reasons, for exhaustive sweeps in tests.
    pub const ALL: [StopReason; 4] = [
        StopReason::Deadline,
        StopReason::Cancelled,
        StopReason::IterationCap,
        StopReason::CostCap,
    ];
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::Deadline => write!(f, "deadline exceeded"),
            StopReason::Cancelled => write!(f, "cancelled by caller"),
            StopReason::IterationCap => write!(f, "iteration cap reached"),
            StopReason::CostCap => write!(f, "cost quota exhausted"),
        }
    }
}

/// The shared error taxonomy for fallible time-series clustering APIs.
#[derive(Debug, Clone, PartialEq)]
pub enum TsError {
    /// A sample was NaN or infinite.
    NonFinite {
        /// Index of the offending series in the input collection
        /// (0 for single-series APIs).
        series: usize,
        /// Index of the offending sample within the series.
        index: usize,
    },
    /// The input collection, series, or range was empty.
    EmptyInput,
    /// Series lengths disagree (ragged input or query/plan mismatch).
    LengthMismatch {
        /// Expected length (from the first series or the plan).
        expected: usize,
        /// Offending length actually found.
        found: usize,
        /// Index of the offending series in the input collection.
        series: usize,
    },
    /// A series has zero variance, so it cannot be z-normalized and has
    /// no shape information.
    ConstantSeries {
        /// Index of the constant series in the input collection.
        series: usize,
    },
    /// The requested number of clusters is impossible for this input.
    InvalidK {
        /// Requested cluster count.
        k: usize,
        /// Number of items available.
        n: usize,
    },
    /// A numerical routine produced a non-finite or otherwise unusable
    /// intermediate (degenerate eigenvector, zero denominator, …).
    NumericalFailure {
        /// Human-readable description of where and what failed.
        context: String,
    },
    /// The iterative refinement hit its iteration cap without the
    /// memberships (or soft memberships) stabilizing.
    NotConverged {
        /// Labeling at the final iteration — still a valid best-effort
        /// clustering.
        labels: Vec<usize>,
        /// Iterations executed (equals the configured cap).
        iterations: usize,
        /// Number of series that changed cluster in the final iteration
        /// (a measure of how far from a fixed point the run stopped).
        shifted: usize,
    },
    /// Persisted bytes (a spill segment, a checkpoint artifact) failed
    /// structural validation on read — torn write, bit flip, wrong magic,
    /// checksum mismatch — or the backing file could not be read or
    /// written at all. The artifact must be discarded or regenerated; its
    /// contents must never be interpreted as data.
    CorruptData {
        /// Which artifact failed and what check (or I/O operation)
        /// rejected it.
        context: String,
    },
    /// Execution control (a `tsrun` budget or cancel token) stopped the
    /// run before it finished. This is a *partial result*, not a crash:
    /// the best labeling observed so far and the amount of work done ride
    /// along so callers can degrade gracefully.
    Stopped {
        /// Best-effort labeling at the stop point. Empty when the stopped
        /// computation has no labeling (e.g. a pairwise dissimilarity
        /// matrix or a dendrogram).
        labels: Vec<usize>,
        /// Iterations (or completed work units, for non-iterative paths)
        /// executed before the stop.
        iterations: usize,
        /// What tripped: deadline, cancellation, iteration cap, or cost
        /// quota.
        reason: StopReason,
    },
}

impl TsError {
    /// Convenience constructor for [`TsError::Stopped`].
    #[must_use]
    pub fn stopped(labels: Vec<usize>, iterations: usize, reason: StopReason) -> Self {
        TsError::Stopped {
            labels,
            iterations,
            reason,
        }
    }

    /// Whether this error carries a usable partial labeling
    /// ([`TsError::NotConverged`] or a non-empty [`TsError::Stopped`]).
    #[must_use]
    pub fn partial_labels(&self) -> Option<&[usize]> {
        match self {
            TsError::NotConverged { labels, .. } => Some(labels),
            TsError::Stopped { labels, .. } if !labels.is_empty() => Some(labels),
            _ => None,
        }
    }
}

impl std::fmt::Display for TsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TsError::NonFinite { series, index } => write!(
                f,
                "non-finite value (NaN or infinity) at series {series}, index {index}"
            ),
            TsError::EmptyInput => write!(
                f,
                "empty input: at least one series with non-empty values is required"
            ),
            TsError::LengthMismatch {
                expected,
                found,
                series,
            } => write!(
                f,
                "length mismatch at series {series}: expected {expected}, found {found}; \
                 inputs must be equal-length (all series must have equal length)"
            ),
            TsError::ConstantSeries { series } => write!(
                f,
                "constant series at index {series}: zero variance, cannot z-normalize"
            ),
            TsError::InvalidK { k: 0, n } => {
                write!(f, "invalid k: k must be positive (k must be in 1..={n})")
            }
            TsError::InvalidK { k, n } => write!(
                f,
                "invalid k={k}: k must not exceed the number of series \
                 (k must be in 1..={n})"
            ),
            TsError::NumericalFailure { context } => {
                write!(f, "numerical failure: {context}")
            }
            TsError::CorruptData { context } => {
                write!(f, "corrupt data: {context}")
            }
            TsError::NotConverged {
                iterations,
                shifted,
                ..
            } => write!(
                f,
                "did not converge within {iterations} iterations \
                 ({shifted} series still changing cluster)"
            ),
            TsError::Stopped {
                iterations, reason, ..
            } => write!(
                f,
                "stopped by execution control after {iterations} iterations: {reason}"
            ),
        }
    }
}

impl std::error::Error for TsError {}

/// Convenience alias used by every `try_*` API in the workspace.
pub type TsResult<T> = Result<T, TsError>;

/// Checks that every sample of `x` is finite, reporting the first
/// offender as series `series_idx`.
///
/// # Errors
///
/// [`TsError::NonFinite`] at the first NaN/infinite sample.
pub fn ensure_finite(x: &[f64], series_idx: usize) -> TsResult<()> {
    match x.iter().position(|v| !v.is_finite()) {
        Some(index) => Err(TsError::NonFinite {
            series: series_idx,
            index,
        }),
        None => Ok(()),
    }
}

/// Checks `1 <= k <= n`.
///
/// # Errors
///
/// [`TsError::InvalidK`] when `k == 0` or `k > n`.
pub fn ensure_k(k: usize, n: usize) -> TsResult<()> {
    if k == 0 || k > n {
        Err(TsError::InvalidK { k, n })
    } else {
        Ok(())
    }
}

/// Validates a collection of series for clustering: non-empty, every
/// series non-empty and of equal length, every sample finite. Returns the
/// common series length `m`.
///
/// # Errors
///
/// [`TsError::EmptyInput`], [`TsError::LengthMismatch`], or
/// [`TsError::NonFinite`] describing the first violation encountered, in
/// that order of precedence per series.
pub fn validate_series_set(series: &[Vec<f64>]) -> TsResult<usize> {
    let first = series.first().ok_or(TsError::EmptyInput)?;
    let m = first.len();
    if m == 0 {
        return Err(TsError::EmptyInput);
    }
    for (i, s) in series.iter().enumerate() {
        if s.len() != m {
            return Err(TsError::LengthMismatch {
                expected: m,
                found: s.len(),
                series: i,
            });
        }
        ensure_finite(s, i)?;
    }
    Ok(m)
}

/// Validates a pair of series for a distance kernel: equal lengths and
/// finite samples. Zero-length pairs are accepted (individual kernels
/// decide whether empty input is meaningful).
///
/// # Errors
///
/// [`TsError::LengthMismatch`] (reporting the second series) or
/// [`TsError::NonFinite`].
pub fn validate_pair(x: &[f64], y: &[f64]) -> TsResult<()> {
    if x.len() != y.len() {
        return Err(TsError::LengthMismatch {
            expected: x.len(),
            found: y.len(),
            series: 1,
        });
    }
    ensure_finite(x, 0)?;
    ensure_finite(y, 1)
}

/// Validates a pair that must additionally be non-empty.
///
/// # Errors
///
/// [`TsError::EmptyInput`] plus everything [`validate_pair`] reports.
pub fn validate_nonempty_pair(x: &[f64], y: &[f64]) -> TsResult<()> {
    if x.is_empty() || y.is_empty() {
        return Err(TsError::EmptyInput);
    }
    validate_pair(x, y)
}

#[cfg(test)]
mod tests {
    use super::{
        ensure_finite, ensure_k, validate_nonempty_pair, validate_pair, validate_series_set,
        TsError,
    };

    #[test]
    fn finite_ok_and_first_offender_reported() {
        assert!(ensure_finite(&[1.0, -2.0, 0.0], 0).is_ok());
        assert_eq!(
            ensure_finite(&[1.0, f64::NAN, f64::INFINITY], 3),
            Err(TsError::NonFinite {
                series: 3,
                index: 1
            })
        );
        assert_eq!(
            ensure_finite(&[f64::NEG_INFINITY], 0),
            Err(TsError::NonFinite {
                series: 0,
                index: 0
            })
        );
    }

    #[test]
    fn k_bounds() {
        assert!(ensure_k(1, 1).is_ok());
        assert!(ensure_k(3, 10).is_ok());
        assert_eq!(ensure_k(0, 5), Err(TsError::InvalidK { k: 0, n: 5 }));
        assert_eq!(ensure_k(6, 5), Err(TsError::InvalidK { k: 6, n: 5 }));
    }

    #[test]
    fn series_set_validation() {
        assert_eq!(validate_series_set(&[]), Err(TsError::EmptyInput));
        assert_eq!(validate_series_set(&[vec![]]), Err(TsError::EmptyInput));
        assert_eq!(
            validate_series_set(&[vec![1.0, 2.0], vec![3.0, 4.0]]),
            Ok(2)
        );
        assert_eq!(
            validate_series_set(&[vec![1.0, 2.0], vec![3.0]]),
            Err(TsError::LengthMismatch {
                expected: 2,
                found: 1,
                series: 1
            })
        );
        assert_eq!(
            validate_series_set(&[vec![1.0], vec![f64::NAN]]),
            Err(TsError::NonFinite {
                series: 1,
                index: 0
            })
        );
    }

    #[test]
    fn pair_validation() {
        assert!(validate_pair(&[1.0], &[2.0]).is_ok());
        assert!(validate_pair(&[], &[]).is_ok());
        assert_eq!(validate_nonempty_pair(&[], &[]), Err(TsError::EmptyInput));
        assert!(matches!(
            validate_pair(&[1.0], &[1.0, 2.0]),
            Err(TsError::LengthMismatch { .. })
        ));
        assert!(matches!(
            validate_pair(&[1.0], &[f64::NAN]),
            Err(TsError::NonFinite {
                series: 1,
                index: 0
            })
        ));
    }

    /// The Display strings double as panic messages for the legacy
    /// wrappers; these substrings are load-bearing for `#[should_panic]`
    /// expectations across the workspace. Do not reword without checking.
    #[test]
    fn display_keeps_historical_assertion_phrases() {
        let cases: Vec<(TsError, &[&str])> = vec![
            (TsError::EmptyInput, &["at least one series", "non-empty"]),
            (
                TsError::LengthMismatch {
                    expected: 4,
                    found: 2,
                    series: 1,
                },
                &["equal length", "equal-length"],
            ),
            (
                TsError::InvalidK { k: 5, n: 2 },
                &["k must not exceed", "k must be in"],
            ),
            (
                TsError::InvalidK { k: 0, n: 2 },
                &["k must be positive", "k must be in"],
            ),
            (
                TsError::NonFinite {
                    series: 0,
                    index: 3,
                },
                &["non-finite", "NaN"],
            ),
            (
                TsError::ConstantSeries { series: 2 },
                &["constant series", "zero variance"],
            ),
            (
                TsError::NotConverged {
                    labels: vec![0, 1],
                    iterations: 100,
                    shifted: 3,
                },
                &["did not converge", "100", "3"],
            ),
        ];
        for (err, needles) in cases {
            let msg = err.to_string();
            for needle in needles {
                assert!(msg.contains(needle), "{msg:?} missing {needle:?}");
            }
        }
    }

    #[test]
    fn stopped_carries_partial_result_and_reason() {
        use super::StopReason;
        for reason in StopReason::ALL {
            let e = TsError::stopped(vec![0, 1, 0], 7, reason);
            let msg = e.to_string();
            assert!(msg.contains("stopped by execution control"), "{msg}");
            assert!(msg.contains("7"), "{msg}");
            assert!(msg.contains(&reason.to_string()), "{msg}");
            assert_eq!(e.partial_labels(), Some(&[0, 1, 0][..]));
        }
        // Empty labels (matrix/dendrogram stops) expose no partial labels.
        let e = TsError::stopped(vec![], 3, StopReason::Deadline);
        assert_eq!(e.partial_labels(), None);
        // NotConverged also exposes its labels.
        let nc = TsError::NotConverged {
            labels: vec![1],
            iterations: 5,
            shifted: 1,
        };
        assert_eq!(nc.partial_labels(), Some(&[1][..]));
        assert_eq!(TsError::EmptyInput.partial_labels(), None);
    }

    #[test]
    fn stop_reason_display_is_distinct() {
        use super::StopReason;
        let mut seen = std::collections::HashSet::new();
        for reason in StopReason::ALL {
            assert!(seen.insert(reason.to_string()), "duplicate display");
        }
    }

    #[test]
    fn error_trait_object_compatible() {
        let e: Box<dyn std::error::Error> = Box::new(TsError::EmptyInput);
        assert!(!e.to_string().is_empty());
    }
}
