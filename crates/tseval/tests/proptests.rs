//! Property-based tests for evaluation metrics and statistics.

use proptest::prelude::*;
use tseval::nmi::{normalized_mutual_information, purity};
use tseval::rand_index::{adjusted_rand_index, rand_index};
use tseval::silhouette::silhouette_score;
use tseval::special::{chi_square_sf, gamma_p, standard_normal_cdf};
use tseval::stats::{friedman_test, wilcoxon_signed_rank};

fn labeling() -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    (2usize..40).prop_flat_map(|n| {
        (
            prop::collection::vec(0usize..4, n..=n),
            prop::collection::vec(0usize..4, n..=n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rand_index_bounds_and_identity((pred, truth) in labeling()) {
        let r = rand_index(&pred, &truth);
        prop_assert!((0.0..=1.0).contains(&r));
        prop_assert_eq!(rand_index(&truth, &truth), 1.0);
        // Symmetric in its arguments.
        prop_assert!((r - rand_index(&truth, &pred)).abs() < 1e-12);
    }

    #[test]
    fn rand_index_invariant_to_label_permutation((pred, truth) in labeling()) {
        // Relabel clusters 0<->3, 1<->2.
        let perm: Vec<usize> = pred.iter().map(|&l| 3 - l).collect();
        prop_assert!((rand_index(&pred, &truth) - rand_index(&perm, &truth)).abs() < 1e-12);
    }

    #[test]
    fn ari_upper_bound_and_perfect_case((pred, truth) in labeling()) {
        let a = adjusted_rand_index(&pred, &truth);
        prop_assert!(a <= 1.0 + 1e-12);
        prop_assert!((adjusted_rand_index(&truth, &truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nmi_and_purity_bounds((pred, truth) in labeling()) {
        let nmi = normalized_mutual_information(&pred, &truth);
        prop_assert!((0.0..=1.0).contains(&nmi));
        let p = purity(&pred, &truth);
        prop_assert!((0.0..=1.0).contains(&p));
        // Purity of the identity labeling is 1.
        prop_assert_eq!(purity(&truth, &truth), 1.0);
    }

    #[test]
    fn wilcoxon_p_value_valid(a in prop::collection::vec(0.0f64..1.0, 3..30)) {
        let b: Vec<f64> = a.iter().enumerate().map(|(i, v)| v + ((i % 3) as f64 - 1.0) * 0.01).collect();
        let r = wilcoxon_signed_rank(&a, &b);
        prop_assert!((0.0..=1.0).contains(&r.p_value));
        // Rank sum identity: W+ + W- = n(n+1)/2 over effective pairs.
        let n = r.n_effective as f64;
        prop_assert!((r.w_plus + r.w_minus - n * (n + 1.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn friedman_rank_sum_invariant(
        scores in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 5), 2..5)
    ) {
        let r = friedman_test(&scores);
        let k = scores.len() as f64;
        let total: f64 = r.average_ranks.iter().sum();
        prop_assert!((total - k * (k + 1.0) / 2.0).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&r.p_value));
    }

    #[test]
    fn normal_cdf_monotone(z1 in -5.0f64..5.0, z2 in -5.0f64..5.0) {
        let (lo, hi) = if z1 <= z2 { (z1, z2) } else { (z2, z1) };
        prop_assert!(standard_normal_cdf(lo) <= standard_normal_cdf(hi) + 1e-12);
    }

    #[test]
    fn gamma_p_monotone_in_x(a in 0.5f64..10.0, x1 in 0.0f64..20.0, x2 in 0.0f64..20.0) {
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        prop_assert!(gamma_p(a, lo) <= gamma_p(a, hi) + 1e-9);
    }

    #[test]
    fn chi_square_sf_valid(x in 0.0f64..100.0, df in 1usize..20) {
        let p = chi_square_sf(x, df);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn silhouette_bounds(labels in prop::collection::vec(0usize..3, 4..20)) {
        // Distance oracle: index difference — arbitrary but symmetric.
        let s = silhouette_score(&labels, |i, j| (i as f64 - j as f64).abs());
        prop_assert!((-1.0..=1.0).contains(&s));
    }
}
