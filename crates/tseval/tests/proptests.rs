//! Property-based tests for evaluation metrics and statistics (tscheck
//! harness).

use tscheck::Gen;
use tseval::nmi::{normalized_mutual_information, purity};
use tseval::rand_index::{adjusted_rand_index, rand_index};
use tseval::silhouette::silhouette_score;
use tseval::special::{chi_square_sf, gamma_p, standard_normal_cdf};
use tseval::stats::{friedman_test, wilcoxon_signed_rank};

fn labeling(g: &mut Gen) -> (Vec<usize>, Vec<usize>) {
    let n = g.usize_in(2..40);
    let pred = g.vec_usize(n..=n, 0..4);
    let truth = g.vec_usize(n..=n, 0..4);
    (pred, truth)
}

tscheck::props! {
    #[cases(64)]
    fn rand_index_bounds_and_identity(g) {
        let (pred, truth) = labeling(g);
        let r = rand_index(&pred, &truth);
        assert!((0.0..=1.0).contains(&r));
        assert_eq!(rand_index(&truth, &truth), 1.0);
        // Symmetric in its arguments.
        assert!((r - rand_index(&truth, &pred)).abs() < 1e-12);
    }

    #[cases(64)]
    fn rand_index_invariant_to_label_permutation(g) {
        let (pred, truth) = labeling(g);
        // Relabel clusters 0<->3, 1<->2.
        let perm: Vec<usize> = pred.iter().map(|&l| 3 - l).collect();
        assert!((rand_index(&pred, &truth) - rand_index(&perm, &truth)).abs() < 1e-12);
    }

    #[cases(64)]
    fn ari_upper_bound_and_perfect_case(g) {
        let (pred, truth) = labeling(g);
        let a = adjusted_rand_index(&pred, &truth);
        assert!(a <= 1.0 + 1e-12);
        assert!((adjusted_rand_index(&truth, &truth) - 1.0).abs() < 1e-12);
    }

    #[cases(64)]
    fn nmi_and_purity_bounds(g) {
        let (pred, truth) = labeling(g);
        let nmi = normalized_mutual_information(&pred, &truth);
        assert!((0.0..=1.0).contains(&nmi));
        let p = purity(&pred, &truth);
        assert!((0.0..=1.0).contains(&p));
        // Purity of the identity labeling is 1.
        assert_eq!(purity(&truth, &truth), 1.0);
    }

    #[cases(64)]
    fn wilcoxon_p_value_valid(g) {
        let a = g.vec_f64(3..30, 0.0..1.0);
        let b: Vec<f64> = a
            .iter()
            .enumerate()
            .map(|(i, v)| v + ((i % 3) as f64 - 1.0) * 0.01)
            .collect();
        let r = wilcoxon_signed_rank(&a, &b);
        assert!((0.0..=1.0).contains(&r.p_value));
        // Rank sum identity: W+ + W- = n(n+1)/2 over effective pairs.
        let n = r.n_effective as f64;
        assert!((r.w_plus + r.w_minus - n * (n + 1.0) / 2.0).abs() < 1e-9);
    }

    #[cases(64)]
    fn friedman_rank_sum_invariant(g) {
        let k = g.usize_in(2..5);
        let scores: Vec<Vec<f64>> = (0..k).map(|_| g.vec_f64(5..=5, 0.0..1.0)).collect();
        let r = friedman_test(&scores);
        let k = scores.len() as f64;
        let total: f64 = r.average_ranks.iter().sum();
        assert!((total - k * (k + 1.0) / 2.0).abs() < 1e-9);
        assert!((0.0..=1.0).contains(&r.p_value));
    }

    #[cases(64)]
    fn normal_cdf_monotone(g) {
        let z1 = g.f64_in(-5.0..5.0);
        let z2 = g.f64_in(-5.0..5.0);
        let (lo, hi) = if z1 <= z2 { (z1, z2) } else { (z2, z1) };
        assert!(standard_normal_cdf(lo) <= standard_normal_cdf(hi) + 1e-12);
    }

    #[cases(64)]
    fn gamma_p_monotone_in_x(g) {
        let a = g.f64_in(0.5..10.0);
        let x1 = g.f64_in(0.0..20.0);
        let x2 = g.f64_in(0.0..20.0);
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        assert!(gamma_p(a, lo) <= gamma_p(a, hi) + 1e-9);
    }

    #[cases(64)]
    fn chi_square_sf_valid(g) {
        let x = g.f64_in(0.0..100.0);
        let df = g.usize_in(1..20);
        let p = chi_square_sf(x, df);
        assert!((0.0..=1.0).contains(&p));
    }

    #[cases(64)]
    fn silhouette_bounds(g) {
        let labels = g.vec_usize(4..20, 0..3);
        // Distance oracle: index difference — arbitrary but symmetric.
        let s = silhouette_score(&labels, |i, j| (i as f64 - j as f64).abs());
        assert!((-1.0..=1.0).contains(&s));
    }
}
