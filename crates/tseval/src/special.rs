//! Special functions backing the statistical tests: the error function,
//! the standard normal CDF, the log-gamma function, and the regularized
//! incomplete gamma (for chi-square p-values).
//!
//! Implementations follow the classical numerical recipes (Abramowitz &
//! Stegun 7.1.26 for `erf`, Lanczos for `ln Γ`, series/continued-fraction
//! for `P(a, x)`), accurate to far beyond what hypothesis testing needs.

/// Error function, |error| < 1.5e-7 (A&S 7.1.26).
#[must_use]
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function.
#[must_use]
pub fn standard_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Two-sided p-value for a standard normal statistic.
#[must_use]
pub fn normal_two_sided_p(z: f64) -> f64 {
    (2.0 * (1.0 - standard_normal_cdf(z.abs()))).clamp(0.0, 1.0)
}

/// Natural log of the gamma function (Lanczos approximation, g = 7).
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x)/Γ(a)`.
///
/// Series expansion for `x < a + 1`, continued fraction otherwise.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
#[must_use]
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0");
    assert!(x >= 0.0, "gamma_p requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series: P(a,x) = e^{-x} x^a / Γ(a) · Σ x^n / (a(a+1)…(a+n)).
        let mut term = 1.0 / a;
        let mut sum = term;
        let mut ap = a;
        for _ in 0..500 {
            ap += 1.0;
            term *= x / ap;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        // Continued fraction for Q(a,x) (Lentz's algorithm).
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / 1e-300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let delta = d * c;
            h *= delta;
            if (delta - 1.0).abs() < 1e-15 {
                break;
            }
        }
        let q = (-x + a * x.ln() - ln_gamma(a)).exp() * h;
        1.0 - q
    }
}

/// Survival function of the chi-square distribution with `df` degrees of
/// freedom: `P(X > x)`.
///
/// # Panics
///
/// Panics if `df == 0` or `x < 0`.
#[must_use]
pub fn chi_square_sf(x: f64, df: usize) -> f64 {
    assert!(df > 0, "chi-square needs at least one degree of freedom");
    (1.0 - gamma_p(df as f64 / 2.0, x / 2.0)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::{chi_square_sf, erf, gamma_p, ln_gamma, normal_two_sided_p, standard_normal_cdf};

    #[test]
    fn erf_reference_values() {
        assert!(erf(0.0).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_27).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(5.0) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((standard_normal_cdf(1.959_963_985) - 0.975).abs() < 1e-4);
        assert!((standard_normal_cdf(-2.575_829_3) - 0.005).abs() < 1e-4);
    }

    #[test]
    fn two_sided_p_values() {
        assert!((normal_two_sided_p(1.959_963_985) - 0.05).abs() < 1e-3);
        assert!((normal_two_sided_p(2.575_829_3) - 0.01).abs() < 1e-3);
        assert!(normal_two_sided_p(0.0) > 0.999);
    }

    #[test]
    fn ln_gamma_factorials() {
        // Γ(n) = (n-1)!
        let facts: [f64; 7] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, &f) in facts.iter().enumerate() {
            let lg = ln_gamma((n + 1) as f64);
            assert!((lg - f.ln()).abs() < 1e-10, "n={n}");
        }
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn gamma_p_limits() {
        assert_eq!(gamma_p(2.5, 0.0), 0.0);
        assert!((gamma_p(1.0, 50.0) - 1.0).abs() < 1e-12);
        // P(1, x) = 1 - e^{-x}.
        for &x in &[0.1, 0.5, 1.0, 3.0, 10.0] {
            assert!((gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-10);
        }
    }

    #[test]
    fn chi_square_reference_values() {
        // Critical values: P(X > 3.841) = 0.05 for df=1;
        // P(X > 5.991) = 0.05 for df=2; P(X > 11.070) = 0.05 for df=5.
        assert!((chi_square_sf(3.841, 1) - 0.05).abs() < 1e-3);
        assert!((chi_square_sf(5.991, 2) - 0.05).abs() < 1e-3);
        assert!((chi_square_sf(11.070, 5) - 0.05).abs() < 1e-3);
        assert!((chi_square_sf(0.0, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chi_square_monotone_decreasing() {
        let mut last = 1.0;
        for i in 0..20 {
            let p = chi_square_sf(i as f64, 4);
            assert!(p <= last + 1e-12);
            last = p;
        }
    }
}
