//! The Rand index (Rand 1971) and Adjusted Rand Index.
//!
//! The paper evaluates clustering accuracy with the Rand index:
//! `R = (TP + TN) / (TP + TN + FP + FN)` over all pairs of series, where a
//! "positive" is a pair placed in the same cluster and the ground truth is
//! the class annotation.

/// Counts the pair-confusion entries `(tp, tn, fp, fn)` between a predicted
/// clustering and ground-truth classes.
///
/// # Panics
///
/// Panics if the label vectors differ in length.
#[must_use]
pub fn pair_confusion(pred: &[usize], truth: &[usize]) -> (u64, u64, u64, u64) {
    assert_eq!(pred.len(), truth.len(), "label vectors must align");
    let n = pred.len();
    let (mut tp, mut tn, mut fp, mut fn_) = (0u64, 0u64, 0u64, 0u64);
    for i in 0..n {
        for j in i + 1..n {
            let same_cluster = pred[i] == pred[j];
            let same_class = truth[i] == truth[j];
            match (same_cluster, same_class) {
                (true, true) => tp += 1,
                (false, false) => tn += 1,
                (true, false) => fp += 1,
                (false, true) => fn_ += 1,
            }
        }
    }
    (tp, tn, fp, fn_)
}

/// Rand index in `[0, 1]`; 1 for a perfect clustering. Defined as 1 for
/// inputs with fewer than two items (no pairs to get wrong).
///
/// # Example
///
/// ```
/// use tseval::rand_index::rand_index;
///
/// // Cluster names don't matter, only the grouping does.
/// assert_eq!(rand_index(&[1, 1, 0, 0], &[0, 0, 1, 1]), 1.0);
/// assert!(rand_index(&[0, 1, 0, 1], &[0, 0, 1, 1]) < 1.0);
/// ```
#[must_use]
pub fn rand_index(pred: &[usize], truth: &[usize]) -> f64 {
    if pred.len() < 2 {
        return 1.0;
    }
    let (tp, tn, fp, fn_) = pair_confusion(pred, truth);
    (tp + tn) as f64 / (tp + tn + fp + fn_) as f64
}

/// Adjusted Rand Index: chance-corrected, ~0 for random labelings, 1 for a
/// perfect clustering. Defined as 1 for degenerate inputs where both
/// partitions are single-cluster or all-singletons.
#[must_use]
pub fn adjusted_rand_index(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "label vectors must align");
    let n = pred.len();
    if n < 2 {
        return 1.0;
    }
    let kp = pred.iter().copied().max().unwrap_or(0) + 1;
    let kt = truth.iter().copied().max().unwrap_or(0) + 1;
    let mut contingency = vec![vec![0u64; kt]; kp];
    for (&p, &t) in pred.iter().zip(truth.iter()) {
        contingency[p][t] += 1;
    }
    let choose2 = |x: u64| -> f64 { (x * x.saturating_sub(1)) as f64 / 2.0 };
    let sum_ij: f64 = contingency
        .iter()
        .flat_map(|row| row.iter())
        .map(|&c| choose2(c))
        .sum();
    let a: Vec<u64> = contingency
        .iter()
        .map(|row| row.iter().sum::<u64>())
        .collect();
    let b: Vec<u64> = (0..kt)
        .map(|t| contingency.iter().map(|row| row[t]).sum::<u64>())
        .collect();
    let sum_a: f64 = a.iter().map(|&x| choose2(x)).sum();
    let sum_b: f64 = b.iter().map(|&x| choose2(x)).sum();
    let total = choose2(n as u64);
    let expected = sum_a * sum_b / total;
    let max_index = 0.5 * (sum_a + sum_b);
    if (max_index - expected).abs() < 1e-12 {
        return 1.0;
    }
    (sum_ij - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::{adjusted_rand_index, pair_confusion, rand_index};

    #[test]
    fn perfect_clustering_scores_one() {
        let labels = vec![0, 0, 1, 1, 2, 2];
        assert_eq!(rand_index(&labels, &labels), 1.0);
        assert_eq!(adjusted_rand_index(&labels, &labels), 1.0);
    }

    #[test]
    fn label_permutation_is_irrelevant() {
        let truth = vec![0, 0, 1, 1];
        let pred = vec![1, 1, 0, 0];
        assert_eq!(rand_index(&pred, &truth), 1.0);
        assert_eq!(adjusted_rand_index(&pred, &truth), 1.0);
    }

    #[test]
    fn hand_computed_confusion() {
        // truth: {a,b} {c}; pred: {a} {b,c}
        // pairs: (a,b): split but same class -> FN
        //        (a,c): split, diff class -> TN
        //        (b,c): together, diff class -> FP
        let truth = vec![0, 0, 1];
        let pred = vec![0, 1, 1];
        let (tp, tn, fp, fn_) = pair_confusion(&pred, &truth);
        assert_eq!((tp, tn, fp, fn_), (0, 1, 1, 1));
        assert!((rand_index(&pred, &truth) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rand_index_bounds() {
        let truth = vec![0, 1, 0, 1, 0, 1];
        let preds = [
            vec![0, 0, 0, 0, 0, 0],
            vec![0, 1, 2, 3, 4, 5],
            vec![1, 0, 1, 0, 1, 0],
        ];
        for p in &preds {
            let r = rand_index(p, &truth);
            assert!((0.0..=1.0).contains(&r), "{r}");
        }
    }

    #[test]
    fn ari_near_zero_for_random_assignment() {
        // Deterministic pseudo-random labels over many items.
        let n = 400;
        let truth: Vec<usize> = (0..n).map(|i| i % 4).collect();
        let pred: Vec<usize> = (0..n).map(|i| (i * 7919 + 13) % 997 % 4).collect();
        let ari = adjusted_rand_index(&pred, &truth);
        assert!(ari.abs() < 0.06, "ARI {ari} not near zero");
        // Plain Rand is NOT near zero for random labels — the reason ARI
        // exists.
        let r = rand_index(&pred, &truth);
        assert!(r > 0.5);
    }

    #[test]
    fn single_cluster_prediction() {
        let truth = vec![0, 0, 1, 1];
        let pred = vec![0, 0, 0, 0];
        // TP = 2 (the two same-class pairs), FP = 4, TN = 0, FN = 0.
        assert!((rand_index(&pred, &truth) - 2.0 / 6.0).abs() < 1e-12);
        assert!(adjusted_rand_index(&pred, &truth) <= 0.0 + 1e-12);
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(rand_index(&[], &[]), 1.0);
        assert_eq!(rand_index(&[0], &[0]), 1.0);
        assert_eq!(adjusted_rand_index(&[0], &[0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn rejects_mismatched_lengths() {
        let _ = rand_index(&[0, 1], &[0]);
    }
}
