//! Silhouette analysis — an *intrinsic* clustering-quality criterion.
//!
//! The paper assumes the target number of clusters `k` is given, noting
//! (footnote 2) that k can otherwise be chosen "by varying k and evaluating
//! clustering quality with criteria that capture information intrinsic to
//! the data alone". The silhouette coefficient (Rousseeuw 1987) is the
//! classic such criterion; `kshape::validity` builds the k-selection sweep
//! on top of it.
//!
//! For item `i` with mean intra-cluster distance `a(i)` and smallest mean
//! distance to another cluster `b(i)`:
//!
//! ```text
//! s(i) = (b(i) − a(i)) / max(a(i), b(i)) ∈ [−1, 1]
//! ```
//!
//! Singleton clusters score 0 by convention.

/// Mean silhouette coefficient of a labeling under a pairwise distance
/// oracle `dist(i, j)`.
///
/// Returns 0 for degenerate inputs (fewer than 2 items or a single
/// cluster), where the silhouette is undefined.
///
/// # Panics
///
/// Panics if any label is `>= k` where `k = max label + 1` is inconsistent
/// with the data (labels are assumed dense, `0..k`).
#[must_use]
pub fn silhouette_score<D>(labels: &[usize], dist: D) -> f64
where
    D: Fn(usize, usize) -> f64,
{
    let n = labels.len();
    if n < 2 {
        return 0.0;
    }
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    if k < 2 {
        return 0.0;
    }
    let mut counts = vec![0usize; k];
    for &l in labels {
        counts[l] += 1;
    }

    let mut total = 0.0;
    for i in 0..n {
        let li = labels[i];
        if counts[li] <= 1 {
            // Singleton: s(i) = 0 by convention.
            continue;
        }
        // Mean distance from i to every cluster.
        let mut sums = vec![0.0; k];
        for j in 0..n {
            if i != j {
                sums[labels[j]] += dist(i, j);
            }
        }
        let a = sums[li] / (counts[li] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != li && counts[c] > 0)
            .map(|c| sums[c] / counts[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if b.is_finite() {
            let denom = a.max(b);
            if denom > 0.0 {
                total += (b - a) / denom;
            }
        }
    }
    total / n as f64
}

/// Per-item silhouette values (same conventions as [`silhouette_score`]).
#[must_use]
pub fn silhouette_samples<D>(labels: &[usize], dist: D) -> Vec<f64>
where
    D: Fn(usize, usize) -> f64,
{
    let n = labels.len();
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut out = vec![0.0; n];
    if n < 2 || k < 2 {
        return out;
    }
    let mut counts = vec![0usize; k];
    for &l in labels {
        counts[l] += 1;
    }
    for i in 0..n {
        let li = labels[i];
        if counts[li] <= 1 {
            continue;
        }
        let mut sums = vec![0.0; k];
        for j in 0..n {
            if i != j {
                sums[labels[j]] += dist(i, j);
            }
        }
        let a = sums[li] / (counts[li] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != li && counts[c] > 0)
            .map(|c| sums[c] / counts[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if b.is_finite() {
            let denom = a.max(b);
            if denom > 0.0 {
                out[i] = (b - a) / denom;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::{silhouette_samples, silhouette_score};

    /// 1-D points with a distance oracle.
    fn points_dist(points: &[f64]) -> impl Fn(usize, usize) -> f64 + '_ {
        move |i, j| (points[i] - points[j]).abs()
    }

    #[test]
    fn well_separated_blobs_score_high() {
        let pts = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2];
        let labels = [0, 0, 0, 1, 1, 1];
        let s = silhouette_score(&labels, points_dist(&pts));
        assert!(s > 0.9, "{s}");
    }

    #[test]
    fn wrong_split_scores_low() {
        let pts = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2];
        // Mix the blobs across clusters.
        let labels = [0, 1, 0, 1, 0, 1];
        let s = silhouette_score(&labels, points_dist(&pts));
        assert!(s < 0.1, "{s}");
    }

    #[test]
    fn single_cluster_is_zero() {
        let pts = [1.0, 2.0, 3.0];
        assert_eq!(silhouette_score(&[0, 0, 0], points_dist(&pts)), 0.0);
    }

    #[test]
    fn degenerate_sizes_are_zero() {
        let pts = [1.0];
        assert_eq!(silhouette_score(&[0], points_dist(&pts)), 0.0);
        assert_eq!(silhouette_score(&[], |_, _| 0.0), 0.0);
    }

    #[test]
    fn singleton_cluster_contributes_zero() {
        let pts = [0.0, 0.1, 50.0];
        let labels = [0, 0, 1];
        let samples = silhouette_samples(&labels, points_dist(&pts));
        assert_eq!(samples[2], 0.0);
        assert!(samples[0] > 0.9);
    }

    #[test]
    fn samples_mean_equals_score() {
        let pts = [0.0, 0.4, 0.8, 5.0, 5.5, 9.0, 9.9];
        let labels = [0, 0, 0, 1, 1, 2, 2];
        let samples = silhouette_samples(&labels, points_dist(&pts));
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        let score = silhouette_score(&labels, points_dist(&pts));
        assert!((mean - score).abs() < 1e-12);
    }

    #[test]
    fn values_bounded() {
        let pts = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let labels = [0, 1, 0, 1, 0, 1];
        for s in silhouette_samples(&labels, points_dist(&pts)) {
            assert!((-1.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn correct_k_scores_best_across_candidates() {
        // Three clear blobs; labelings with k = 2, 3, 6 — k = 3 must win.
        let pts = [0.0, 0.2, 5.0, 5.2, 10.0, 10.2];
        let k2 = [0, 0, 0, 0, 1, 1];
        let k3 = [0, 0, 1, 1, 2, 2];
        let k6 = [0, 1, 2, 3, 4, 5];
        let s2 = silhouette_score(&k2, points_dist(&pts));
        let s3 = silhouette_score(&k3, points_dist(&pts));
        let s6 = silhouette_score(&k6, points_dist(&pts));
        assert!(s3 > s2, "{s3} vs {s2}");
        assert!(s3 > s6, "{s3} vs {s6}");
    }
}
