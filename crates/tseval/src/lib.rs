//! Evaluation metrics and statistical machinery for the k-Shape
//! experiments.
//!
//! * [`rand_index`] — the Rand index (the paper's clustering accuracy
//!   metric) and the Adjusted Rand Index,
//! * [`nmi`] — normalized mutual information and purity (extensions),
//! * [`silhouette`] — the silhouette coefficient, the intrinsic criterion
//!   behind `kshape::validity`'s k-selection (paper footnote 2),
//! * [`stats`] — the Wilcoxon signed-rank test (99% confidence pairwise
//!   comparisons), the Friedman test, and the Nemenyi post-hoc critical
//!   difference, exactly the analysis protocol of Section 4,
//! * [`special`] — the error-function / incomplete-gamma kernels backing
//!   the p-values,
//! * [`tables`] — plain-text table formatting for the experiment binaries.

#![warn(missing_docs)]

pub mod nmi;
pub mod rand_index;
pub mod silhouette;
pub mod special;
pub mod stats;
pub mod tables;

pub use rand_index::{adjusted_rand_index, rand_index};
pub use stats::{friedman_test, nemenyi_critical_difference, wilcoxon_signed_rank};
