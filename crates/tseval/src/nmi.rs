//! Normalized mutual information and purity — complementary clustering
//! quality metrics beyond the paper's Rand index (extension noted in
//! DESIGN.md; useful for sanity-checking that Rand-index conclusions are
//! not metric artifacts).

/// Builds the contingency table between predicted clusters and true
/// classes.
fn contingency(pred: &[usize], truth: &[usize]) -> Vec<Vec<f64>> {
    assert_eq!(pred.len(), truth.len(), "label vectors must align");
    let kp = pred.iter().copied().max().map_or(0, |m| m + 1);
    let kt = truth.iter().copied().max().map_or(0, |m| m + 1);
    let mut table = vec![vec![0.0; kt]; kp];
    for (&p, &t) in pred.iter().zip(truth.iter()) {
        table[p][t] += 1.0;
    }
    table
}

/// Shannon entropy of a discrete distribution given as counts.
fn entropy(counts: &[f64], n: f64) -> f64 {
    counts
        .iter()
        .filter(|&&c| c > 0.0)
        .map(|&c| {
            let p = c / n;
            -p * p.ln()
        })
        .sum()
}

/// Normalized mutual information in `[0, 1]` (arithmetic-mean
/// normalization). Returns 1 when both partitions are identical and, by
/// convention, 1 when both entropies are zero (single cluster vs single
/// class).
#[must_use]
pub fn normalized_mutual_information(pred: &[usize], truth: &[usize]) -> f64 {
    let n = pred.len() as f64;
    if pred.is_empty() {
        return 1.0;
    }
    let table = contingency(pred, truth);
    let row_sums: Vec<f64> = table.iter().map(|r| r.iter().sum()).collect();
    let kt = table.first().map_or(0, Vec::len);
    let col_sums: Vec<f64> = (0..kt).map(|t| table.iter().map(|r| r[t]).sum()).collect();
    let hp = entropy(&row_sums, n);
    let ht = entropy(&col_sums, n);
    if hp == 0.0 && ht == 0.0 {
        return 1.0;
    }
    let mut mi = 0.0;
    for (i, row) in table.iter().enumerate() {
        for (j, &c) in row.iter().enumerate() {
            if c > 0.0 {
                let pij = c / n;
                mi += pij * (pij / (row_sums[i] / n * (col_sums[j] / n))).ln();
            }
        }
    }
    (2.0 * mi / (hp + ht)).clamp(0.0, 1.0)
}

/// Purity: each cluster votes for its majority class; purity is the
/// fraction of items covered by those majorities. In `[0, 1]`, biased
/// upward with many clusters (which is why it complements, not replaces,
/// Rand/NMI).
#[must_use]
pub fn purity(pred: &[usize], truth: &[usize]) -> f64 {
    if pred.is_empty() {
        return 1.0;
    }
    let table = contingency(pred, truth);
    let majority_total: f64 = table
        .iter()
        .map(|row| row.iter().copied().fold(0.0, f64::max))
        .sum();
    majority_total / pred.len() as f64
}

#[cfg(test)]
mod tests {
    use super::{normalized_mutual_information, purity};

    #[test]
    fn perfect_clustering() {
        let l = vec![0, 0, 1, 1, 2, 2];
        assert!((normalized_mutual_information(&l, &l) - 1.0).abs() < 1e-12);
        assert!((purity(&l, &l) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn permuted_labels_are_perfect() {
        let truth = vec![0, 0, 1, 1];
        let pred = vec![1, 1, 0, 0];
        assert!((normalized_mutual_information(&pred, &truth) - 1.0).abs() < 1e-12);
        assert!((purity(&pred, &truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_cluster_prediction_has_low_nmi() {
        let truth = vec![0, 0, 1, 1, 2, 2];
        let pred = vec![0; 6];
        let nmi = normalized_mutual_information(&pred, &truth);
        assert!(nmi < 1e-9, "NMI {nmi}");
        // Purity degenerates to the largest class share.
        assert!((purity(&pred, &truth) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn all_singletons_have_perfect_purity_but_not_nmi() {
        let truth = vec![0, 0, 1, 1];
        let pred = vec![0, 1, 2, 3];
        assert!((purity(&pred, &truth) - 1.0).abs() < 1e-12);
        let nmi = normalized_mutual_information(&pred, &truth);
        assert!(nmi < 1.0, "NMI should penalize over-clustering: {nmi}");
    }

    #[test]
    fn half_right_clustering() {
        // One cluster pure, one mixed.
        let truth = vec![0, 0, 0, 1, 1, 1];
        let pred = vec![0, 0, 0, 0, 1, 1];
        let p = purity(&pred, &truth);
        assert!((p - 5.0 / 6.0).abs() < 1e-12);
        let nmi = normalized_mutual_information(&pred, &truth);
        assert!(nmi > 0.0 && nmi < 1.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(normalized_mutual_information(&[], &[]), 1.0);
        assert_eq!(purity(&[], &[]), 1.0);
    }
}
