//! Non-parametric statistical tests, following the analysis protocol of the
//! paper's Section 4 (and Demšar 2006):
//!
//! * pairwise algorithm comparisons over multiple datasets use the
//!   **Wilcoxon signed-rank test** (the paper uses a 99% confidence level),
//! * comparisons of several algorithms at once use the **Friedman test**
//!   followed by the post-hoc **Nemenyi test**, reporting average ranks and
//!   the critical difference (Figures 6, 8, 9).

use crate::special::{chi_square_sf, normal_two_sided_p};

/// Outcome of a Wilcoxon signed-rank test.
#[derive(Debug, Clone, Copy)]
pub struct WilcoxonResult {
    /// Sum of ranks of positive differences (`a > b`).
    pub w_plus: f64,
    /// Sum of ranks of negative differences.
    pub w_minus: f64,
    /// Number of non-zero differences actually ranked.
    pub n_effective: usize,
    /// Normal-approximation z statistic (tie-corrected).
    pub z: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

impl WilcoxonResult {
    /// Returns true when the test is significant at confidence `conf`
    /// (e.g. 0.99 for the paper's level).
    #[must_use]
    pub fn significant(&self, conf: f64) -> bool {
        self.p_value < 1.0 - conf
    }
}

/// Wilcoxon signed-rank test on paired samples `a` vs `b`.
///
/// Zero differences are dropped (Wilcoxon's original treatment); tied
/// absolute differences receive average ranks, and the z statistic uses the
/// tie-corrected variance. With fewer than 2 effective pairs the result is
/// `p = 1`.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn wilcoxon_signed_rank(a: &[f64], b: &[f64]) -> WilcoxonResult {
    assert_eq!(a.len(), b.len(), "paired samples must align");
    let mut diffs: Vec<f64> = a
        .iter()
        .zip(b.iter())
        .map(|(x, y)| x - y)
        .filter(|d| *d != 0.0)
        .collect();
    let n = diffs.len();
    if n < 2 {
        return WilcoxonResult {
            w_plus: 0.0,
            w_minus: 0.0,
            n_effective: n,
            z: 0.0,
            p_value: 1.0,
        };
    }
    // Rank |d| ascending with average ranks for ties.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        diffs[i]
            .abs()
            .partial_cmp(&diffs[j].abs())
            .expect("NaN difference")
    });
    let mut ranks = vec![0.0; n];
    let mut tie_correction = 0.0;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && (diffs[order[j + 1]].abs() - diffs[order[i]].abs()).abs() < 1e-12 {
            j += 1;
        }
        let avg_rank = (i + j + 2) as f64 / 2.0; // ranks are 1-based
        for &idx in &order[i..=j] {
            ranks[idx] = avg_rank;
        }
        let t = (j - i + 1) as f64;
        tie_correction += t * t * t - t;
        i = j + 1;
    }
    let w_plus: f64 = diffs
        .iter()
        .zip(ranks.iter())
        .filter(|(d, _)| **d > 0.0)
        .map(|(_, r)| r)
        .sum();
    let w_minus: f64 = diffs
        .iter()
        .zip(ranks.iter())
        .filter(|(d, _)| **d < 0.0)
        .map(|(_, r)| r)
        .sum();
    let nf = n as f64;
    let mean = nf * (nf + 1.0) / 4.0;
    let var = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_correction / 48.0;
    let w = w_plus.min(w_minus);
    let z = if var > 0.0 {
        (w - mean) / var.sqrt()
    } else {
        0.0
    };
    let _ = diffs.drain(..);
    WilcoxonResult {
        w_plus,
        w_minus,
        n_effective: n,
        z,
        p_value: normal_two_sided_p(z),
    }
}

/// Outcome of a Friedman test over `k` algorithms and `n` datasets.
#[derive(Debug, Clone)]
pub struct FriedmanResult {
    /// Average rank per algorithm (lower = better); order matches the
    /// input rows.
    pub average_ranks: Vec<f64>,
    /// Friedman chi-square statistic (tie-adjusted ranks, classic form).
    pub chi_square: f64,
    /// Degrees of freedom (`k − 1`).
    pub df: usize,
    /// p-value from the chi-square approximation.
    pub p_value: f64,
}

/// Friedman test. `scores[alg][dataset]` holds a *higher-is-better* score
/// (accuracy, Rand index); ranks are assigned per dataset with rank 1 for
/// the best algorithm and average ranks on ties.
///
/// # Panics
///
/// Panics with fewer than 2 algorithms, zero datasets, or ragged rows.
#[must_use]
pub fn friedman_test(scores: &[Vec<f64>]) -> FriedmanResult {
    let k = scores.len();
    assert!(k >= 2, "Friedman test needs at least 2 algorithms");
    let n = scores[0].len();
    assert!(n >= 1, "Friedman test needs at least 1 dataset");
    assert!(
        scores.iter().all(|row| row.len() == n),
        "all algorithms must cover the same datasets"
    );

    let mut rank_sums = vec![0.0; k];
    #[allow(clippy::needless_range_loop)]
    for d in 0..n {
        // Rank algorithms on dataset d: best (highest score) gets rank 1.
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by(|&i, &j| scores[j][d].partial_cmp(&scores[i][d]).expect("NaN score"));
        let mut i = 0;
        while i < k {
            let mut j = i;
            while j + 1 < k && (scores[order[j + 1]][d] - scores[order[i]][d]).abs() < 1e-12 {
                j += 1;
            }
            let avg_rank = (i + j + 2) as f64 / 2.0;
            for &alg in &order[i..=j] {
                rank_sums[alg] += avg_rank;
            }
            i = j + 1;
        }
    }
    let average_ranks: Vec<f64> = rank_sums.iter().map(|s| s / n as f64).collect();

    let kf = k as f64;
    let nf = n as f64;
    let sum_r2: f64 = average_ranks.iter().map(|r| r * r).sum();
    let chi_square = 12.0 * nf / (kf * (kf + 1.0)) * (sum_r2 - kf * (kf + 1.0) * (kf + 1.0) / 4.0);
    let df = k - 1;
    FriedmanResult {
        average_ranks,
        chi_square,
        df,
        p_value: chi_square_sf(chi_square.max(0.0), df),
    }
}

/// Critical values `q_0.05` of the studentized range statistic divided by
/// √2, for `k = 2..=10` algorithms (Demšar 2006, Table 5a).
const NEMENYI_Q05: [f64; 9] = [
    1.960, 2.343, 2.569, 2.728, 2.850, 2.949, 3.031, 3.102, 3.164,
];

/// Nemenyi critical difference at the 95% confidence level: two algorithms
/// differ significantly when their average ranks differ by at least
/// `CD = q_α √(k(k+1)/(6n))`.
///
/// # Panics
///
/// Panics for `k < 2`, `k > 10`, or `n == 0`.
#[must_use]
pub fn nemenyi_critical_difference(k: usize, n: usize) -> f64 {
    assert!((2..=10).contains(&k), "Nemenyi table covers k in 2..=10");
    assert!(n > 0, "need at least one dataset");
    let q = NEMENYI_Q05[k - 2];
    q * ((k * (k + 1)) as f64 / (6.0 * n as f64)).sqrt()
}

/// Groups algorithms whose average ranks are NOT significantly different —
/// the "wiggly line" of Figures 6/8/9. Returns, for the rank-sorted order,
/// index sets of maximal cliques within one critical difference.
#[must_use]
pub fn nemenyi_groups(average_ranks: &[f64], cd: f64) -> Vec<Vec<usize>> {
    let k = average_ranks.len();
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&i, &j| {
        average_ranks[i]
            .partial_cmp(&average_ranks[j])
            .expect("NaN rank")
    });
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for start in 0..k {
        let lo = average_ranks[order[start]];
        let mut group = vec![order[start]];
        for &idx in order.iter().skip(start + 1) {
            if average_ranks[idx] - lo <= cd {
                group.push(idx);
            } else {
                break;
            }
        }
        // Keep only maximal groups.
        if group.len() > 1 {
            let redundant = groups.iter().any(|g| group.iter().all(|x| g.contains(x)));
            if !redundant {
                groups.push(group);
            }
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::{friedman_test, nemenyi_critical_difference, nemenyi_groups, wilcoxon_signed_rank};

    #[test]
    fn wilcoxon_detects_consistent_improvement() {
        // a beats b on every one of 20 datasets by a varying margin.
        let b: Vec<f64> = (0..20).map(|i| 0.5 + 0.01 * i as f64).collect();
        let a: Vec<f64> = b
            .iter()
            .enumerate()
            .map(|(i, v)| v + 0.02 + 0.001 * i as f64)
            .collect();
        let r = wilcoxon_signed_rank(&a, &b);
        assert_eq!(r.n_effective, 20);
        assert_eq!(r.w_minus, 0.0);
        assert!(r.p_value < 0.01, "p = {}", r.p_value);
        assert!(r.significant(0.99));
    }

    #[test]
    fn wilcoxon_no_difference() {
        let a = vec![0.5, 0.6, 0.7, 0.8];
        let r = wilcoxon_signed_rank(&a, &a);
        assert_eq!(r.n_effective, 0);
        assert_eq!(r.p_value, 1.0);
        assert!(!r.significant(0.95));
    }

    #[test]
    fn wilcoxon_symmetric_in_argument_order() {
        let a = vec![1.0, 3.0, 2.0, 5.0, 4.0, 6.5, 0.5, 2.5];
        let b = vec![2.0, 1.0, 4.0, 3.0, 6.0, 5.0, 1.5, 2.0];
        let r1 = wilcoxon_signed_rank(&a, &b);
        let r2 = wilcoxon_signed_rank(&b, &a);
        assert!((r1.p_value - r2.p_value).abs() < 1e-12);
        assert!((r1.w_plus - r2.w_minus).abs() < 1e-12);
    }

    #[test]
    fn wilcoxon_known_example() {
        // Classic textbook example (n = 10, no ties):
        // differences ±: W- should be small for a strong effect.
        let a = vec![
            125.0, 115.0, 130.0, 140.0, 140.0, 115.0, 140.0, 125.0, 140.0, 135.0,
        ];
        let b = vec![
            110.0, 122.0, 125.0, 120.0, 140.0, 124.0, 123.0, 137.0, 135.0, 145.0,
        ];
        let r = wilcoxon_signed_rank(&a, &b);
        // One zero difference dropped -> n = 9.
        assert_eq!(r.n_effective, 9);
        assert_eq!(r.w_plus + r.w_minus, 45.0); // 1+2+…+9
    }

    #[test]
    fn friedman_clear_ranking() {
        // Three algorithms; alg 0 always best, alg 2 always worst.
        let scores = vec![
            (0..12).map(|i| 0.9 + 0.001 * i as f64).collect::<Vec<_>>(),
            (0..12).map(|i| 0.7 + 0.001 * i as f64).collect(),
            (0..12).map(|i| 0.5 + 0.001 * i as f64).collect(),
        ];
        let r = friedman_test(&scores);
        assert!((r.average_ranks[0] - 1.0).abs() < 1e-12);
        assert!((r.average_ranks[1] - 2.0).abs() < 1e-12);
        assert!((r.average_ranks[2] - 3.0).abs() < 1e-12);
        assert!(r.p_value < 0.01, "p = {}", r.p_value);
    }

    #[test]
    fn friedman_ties_share_ranks() {
        let scores = vec![vec![0.5, 0.5], vec![0.5, 0.5]];
        let r = friedman_test(&scores);
        assert!((r.average_ranks[0] - 1.5).abs() < 1e-12);
        assert!((r.average_ranks[1] - 1.5).abs() < 1e-12);
        assert!(r.p_value > 0.9);
    }

    #[test]
    fn friedman_rank_sum_invariant() {
        // Average ranks must sum to k(k+1)/2.
        let scores = vec![
            vec![0.3, 0.9, 0.1, 0.7],
            vec![0.6, 0.2, 0.8, 0.4],
            vec![0.5, 0.5, 0.5, 0.5],
            vec![0.1, 0.8, 0.2, 0.9],
        ];
        let r = friedman_test(&scores);
        let sum: f64 = r.average_ranks.iter().sum();
        assert!((sum - 10.0).abs() < 1e-9, "{sum}");
    }

    #[test]
    fn nemenyi_cd_reference_value() {
        // Demšar's example: k = 4, n = 14 → CD ≈ 1.25 at α = 0.05.
        let cd = nemenyi_critical_difference(4, 14);
        assert!((cd - 1.25).abs() < 0.02, "{cd}");
        // More datasets shrink the CD.
        assert!(nemenyi_critical_difference(4, 48) < cd);
    }

    #[test]
    fn nemenyi_groups_connect_close_ranks() {
        // ranks: A=1.2, B=1.8, C=3.5; CD = 1.0 → {A,B} grouped, C alone.
        let groups = nemenyi_groups(&[1.2, 1.8, 3.5], 1.0);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0], vec![0, 1]);
        // CD large enough to join everything.
        let groups = nemenyi_groups(&[1.2, 1.8, 3.5], 5.0);
        assert_eq!(groups[0].len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least 2 algorithms")]
    fn friedman_rejects_single_algorithm() {
        let _ = friedman_test(&[vec![1.0]]);
    }

    #[test]
    #[should_panic(expected = "k in 2..=10")]
    fn nemenyi_rejects_out_of_table() {
        let _ = nemenyi_critical_difference(11, 5);
    }
}
