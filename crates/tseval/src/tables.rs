//! Minimal plain-text table rendering for the experiment binaries, so the
//! regenerated Tables 2–4 print in a shape directly comparable with the
//! paper.

/// A column-aligned plain-text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given header cells.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn add_row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len().max(row.len()), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders to a string with column alignment and a separator under the
    /// header.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map_or("", String::as_str);
                line.push_str(&format!("{cell:<w$}"));
                if i + 1 < cols {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 3 decimal places — the paper's accuracy precision.
#[must_use]
pub fn fmt3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a runtime ratio like the paper's "12.4x".
#[must_use]
pub fn fmt_ratio(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}x")
    } else {
        format!("{v:.1}x")
    }
}

#[cfg(test)]
mod tests {
    use super::{fmt3, fmt_ratio, TextTable};

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.add_row(vec!["short", "1"]);
        t.add_row(vec!["a-much-longer-name", "2.345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Values align at the same column.
        let col1 = lines[2].find('1').unwrap();
        let col2 = lines[3].find('2').unwrap();
        assert_eq!(col1, col2);
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.add_row(vec!["x"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let s = t.render();
        assert!(s.contains('x'));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt3(0.12345), "0.123");
        assert_eq!(fmt_ratio(4.42), "4.4x");
        assert_eq!(fmt_ratio(1558.0), "1558x");
    }
}
