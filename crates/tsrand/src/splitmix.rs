//! SplitMix64 — the seed-expansion generator.
//!
//! Steele, Lea & Flood, "Fast Splittable Pseudorandom Number Generators"
//! (OOPSLA 2014). A 64-bit counter passed through a finalizing mixer
//! (Stafford's "Mix13" variant of the MurmurHash3 finalizer). Equidistributed
//! over its full 2^64 period and immune to bad seeds, which is exactly what
//! a seed expander must be: even seeds 0, 1, 2, … yield decorrelated
//! states for the downstream generator.

use crate::rng::Rng;

/// SplitMix64 generator. Primarily used to expand `u64` seeds into
/// [`crate::Xoshiro256PlusPlus`] state, but is a valid (if statistically
/// weaker) standalone generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator whose stream is a deterministic function of
    /// `seed`. Every seed, including 0, is valid.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Rng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::SplitMix64;

    /// Reference vector from the public-domain C implementation
    /// (`splitmix64.c`, Vigna): seed = 1234567.
    #[test]
    fn matches_reference_implementation() {
        let mut g = SplitMix64::new(1234567);
        let expected: [u64; 5] = [
            6_457_827_717_110_365_317,
            3_203_168_211_198_807_973,
            9_817_491_932_198_370_423,
            4_593_380_528_125_082_431,
            16_408_922_859_458_223_821,
        ];
        for e in expected {
            assert_eq!(g.next_u64(), e);
        }
    }

    #[test]
    fn zero_seed_is_well_mixed() {
        let mut g = SplitMix64::new(0);
        let a = g.next_u64();
        let b = g.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn streams_differ_across_adjacent_seeds() {
        let a: Vec<u64> = {
            let mut g = SplitMix64::new(1);
            (0..8).map(|_| g.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut g = SplitMix64::new(2);
            (0..8).map(|_| g.next_u64()).collect()
        };
        assert!(a.iter().zip(b.iter()).all(|(x, y)| x != y));
    }
}
