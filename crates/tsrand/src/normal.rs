//! Gaussian sampling via the Box–Muller transform.
//!
//! Box & Muller (1958): if `u1, u2` are independent uniforms on `(0, 1]`
//! then `sqrt(-2 ln u1) · cos(2π u2)` is a standard normal variate. The
//! transform is branch-light, needs no tables, and — unlike ziggurat
//! implementations — is trivially portable and auditable, which matches
//! this crate's reproducibility-first charter. Each sample consumes
//! exactly two generator outputs (the sine branch is discarded), keeping
//! the stream advance rate fixed and easy to reason about.

use crate::rng::Rng;

/// A normal (Gaussian) distribution parameterized by mean and standard
/// deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or non-finite.
    #[must_use]
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            std_dev.is_finite() && std_dev >= 0.0,
            "std_dev must be finite and non-negative, got {std_dev}"
        );
        Normal { mean, std_dev }
    }

    /// The standard normal: mean 0, standard deviation 1.
    #[must_use]
    pub fn standard() -> Self {
        Normal {
            mean: 0.0,
            std_dev: 1.0,
        }
    }

    /// Draws one variate.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Draws a standard normal variate (mean 0, variance 1) via Box–Muller.
#[inline]
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 must be bounded away from 0 for ln(u1); map [0,1) to (0,1].
    let u1 = 1.0 - rng.f64_unit();
    let u2 = rng.f64_unit();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::{standard_normal, Normal};
    use crate::StdRng;

    #[test]
    fn moments_match_standard_normal() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
        // Skewness of a symmetric distribution ~ 0.
        let skew: f64 =
            samples.iter().map(|v| (v - mean).powi(3)).sum::<f64>() / (n as f64 * var.powf(1.5));
        assert!(skew.abs() < 0.05, "skew {skew}");
    }

    #[test]
    fn parameterized_normal_scales_and_shifts() {
        let mut rng = StdRng::seed_from_u64(12);
        let dist = Normal::new(10.0, 0.5);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.02, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }

    #[test]
    fn zero_std_dev_is_constant() {
        let mut rng = StdRng::seed_from_u64(13);
        let dist = Normal::new(3.0, 0.0);
        for _ in 0..10 {
            assert_eq!(dist.sample(&mut rng), 3.0);
        }
    }

    #[test]
    fn samples_are_always_finite() {
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..1_000_000 {
            assert!(standard_normal(&mut rng).is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_std_dev_rejected() {
        let _ = Normal::new(0.0, -1.0);
    }
}
