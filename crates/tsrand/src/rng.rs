//! The sampling trait: everything the workspace draws from a generator.
//!
//! Design notes:
//!
//! * **Integer ranges are exactly uniform.** `gen_range` debiases with
//!   Lemire's multiply-shift rejection (Lemire, "Fast Random Integer
//!   Generation in an Interval", TOMACS 2019): one 64×64→128 multiply per
//!   draw, with a rare rejection loop only when the range does not divide
//!   2^64.
//! * **`f64_unit` uses the top 53 bits**, yielding uniform multiples of
//!   2^-53 in `[0, 1)` — the same construction `rand` uses, so downstream
//!   numerics keep their distributional assumptions.
//! * **Everything is deterministic given the generator state**; no method
//!   touches ambient entropy.

use std::ops::{Range, RangeInclusive};

/// A deterministic source of pseudo-random bits plus the derived sampling
/// methods the workspace uses. Implementors only provide [`Rng::next_u64`].
pub trait Rng {
    /// Returns the next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns 32 pseudo-random bits (the high half of [`Rng::next_u64`],
    /// which carries the best-mixed bits in `++`-scrambled generators).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)`: a 53-bit mantissa scaled by 2^-53.
    #[inline]
    fn f64_unit(&mut self) -> f64 {
        // 2^-53 = 1.1102230246251565e-16
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, n)` via Lemire's multiply-shift rejection.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    fn u64_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        let mut m = u128::from(self.next_u64()) * u128::from(n);
        let mut lo = m as u64;
        if lo < n {
            // Rejection zone: 2^64 mod n values at the bottom are biased.
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                m = u128::from(self.next_u64()) * u128::from(n);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform sample from `range`. Implemented for half-open (`a..b`) and
    /// inclusive (`a..=b`) ranges over the primitive integers, and for
    /// half-open and inclusive `f64` ranges.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.f64_unit() < p
    }

    /// In-place Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..slice.len()).rev() {
            let j = self.u64_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Uniformly chooses an element; `None` on an empty slice.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T>
    where
        Self: Sized,
    {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.u64_below(slice.len() as u64) as usize])
        }
    }

    /// Chooses an index with probability proportional to `weights[i]`.
    ///
    /// Non-finite and negative weights are treated as zero. Returns `None`
    /// when the weights are empty or sum to zero — callers typically fall
    /// back to uniform choice (the k-means++ degenerate case).
    fn choose_weighted_index(&mut self, weights: &[f64]) -> Option<usize>
    where
        Self: Sized,
    {
        let clean = |w: f64| if w.is_finite() && w > 0.0 { w } else { 0.0 };
        let total: f64 = weights.iter().map(|&w| clean(w)).sum();
        if total <= 0.0 || total.is_nan() {
            return None;
        }
        let mut target = self.f64_unit() * total;
        let mut last_positive = None;
        for (i, &w) in weights.iter().enumerate() {
            let w = clean(w);
            if w > 0.0 {
                if target < w {
                    return Some(i);
                }
                target -= w;
                last_positive = Some(i);
            }
        }
        // Floating-point shortfall: land on the last positive weight.
        last_positive
    }
}

/// A range that can produce a uniform sample of `T`. The `gen_range`
/// counterpart of `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end,
            "empty f64 range {}..{}",
            self.start,
            self.end
        );
        let v = self.start + (self.end - self.start) * rng.f64_unit();
        // Guard against round-up to `end` when the span is huge.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty f64 range {lo}..={hi}");
        lo + (hi - lo) * rng.f64_unit()
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + rng.u64_below(span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty integer range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + rng.u64_below(span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.u64_below(span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty integer range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return (lo as i64).wrapping_add(rng.next_u64() as i64) as $t;
                }
                (lo as i64).wrapping_add(rng.u64_below(span + 1) as i64) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::Rng;
    use crate::StdRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn f64_unit_in_half_open_interval() {
        let mut g = rng(1);
        for _ in 0..10_000 {
            let v = g.f64_unit();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn u64_below_covers_small_range_exactly() {
        let mut g = rng(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[g.u64_below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn u64_below_zero_panics() {
        rng(1).u64_below(0);
    }

    #[test]
    fn gen_range_respects_integer_bounds() {
        let mut g = rng(3);
        for _ in 0..5_000 {
            let a = g.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = g.gen_range(-5isize..=5);
            assert!((-5..=5).contains(&b));
            let c = g.gen_range(-100i64..-90);
            assert!((-100..-90).contains(&c));
        }
    }

    #[test]
    fn gen_range_inclusive_hits_both_endpoints() {
        let mut g = rng(4);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..500 {
            match g.gen_range(0u32..=1) {
                0 => lo = true,
                1 => hi = true,
                _ => unreachable!(),
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn gen_range_float_stays_in_bounds() {
        let mut g = rng(5);
        for _ in 0..10_000 {
            let v = g.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&v), "{v}");
            let w = g.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&w), "{w}");
        }
    }

    #[test]
    #[should_panic(expected = "empty integer range")]
    fn empty_integer_range_panics() {
        rng(1).gen_range(5usize..5);
    }

    #[test]
    #[should_panic(expected = "empty f64 range")]
    fn empty_float_range_panics() {
        rng(1).gen_range(1.0..1.0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut g = rng(6);
        let mut v: Vec<u32> = (0..50).collect();
        g.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "50 elements staying put is astronomically unlikely"
        );
    }

    #[test]
    fn choose_none_on_empty() {
        let mut g = rng(7);
        assert_eq!(g.choose::<u8>(&[]), None);
        assert_eq!(g.choose(&[42]), Some(&42));
    }

    #[test]
    fn choose_weighted_tracks_weights() {
        let mut g = rng(8);
        let weights = [0.0, 9.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[g.choose_weighted_index(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((6.0..12.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn choose_weighted_degenerate_cases() {
        let mut g = rng(9);
        assert_eq!(g.choose_weighted_index(&[]), None);
        assert_eq!(g.choose_weighted_index(&[0.0, 0.0]), None);
        assert_eq!(g.choose_weighted_index(&[f64::NAN, -3.0]), None);
        assert_eq!(g.choose_weighted_index(&[0.0, 2.0, 0.0]), Some(1));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut g = rng(10);
        assert!(!g.gen_bool(0.0));
        assert!(g.gen_bool(1.0));
    }
}
