//! xoshiro256++ — the workspace-default generator.
//!
//! Blackman & Vigna, "Scrambled Linear Pseudorandom Number Generators"
//! (ACM TOMS 2021). 256 bits of state, period 2^256 − 1, all-purpose
//! statistical quality (passes BigCrush), and a four-line transition
//! function that compiles to a handful of ALU ops — there is no faster
//! generator of comparable quality that is this easy to audit.
//!
//! The implementation is a line-for-line port of the public-domain C
//! reference (`xoshiro256plusplus.c`) and is pinned to it by test vectors
//! below, so the stream can never drift silently.

use crate::rng::Rng;
use crate::splitmix::SplitMix64;

#[inline(always)]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

/// xoshiro256++ generator. See the module docs; construct via
/// [`Xoshiro256PlusPlus::seed_from_u64`] (SplitMix64 expansion) or
/// [`Xoshiro256PlusPlus::from_state`] (exact state injection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Builds a generator from a single `u64` seed by expanding it through
    /// [`SplitMix64`], per Vigna's seeding recommendation. All seeds are
    /// valid; distinct seeds yield decorrelated streams.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // The all-zero state is a fixed point of the linear engine. A
        // SplitMix64 expansion cannot produce it in practice, but guard
        // anyway so the invariant is local and obvious.
        if s == [0; 4] {
            return Xoshiro256PlusPlus { s: [1, 2, 3, 4] };
        }
        Xoshiro256PlusPlus { s }
    }

    /// Builds a generator from exact 256-bit state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zeros (the engine's fixed point).
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0; 4], "xoshiro256++ state must not be all zeros");
        Xoshiro256PlusPlus { s }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = rotl(self.s[3], 45);
        result
    }

    /// Advances the state by 2^128 steps — equivalent to that many
    /// `next_u64` calls. Splitting one seed into `k` jumped copies yields
    /// `k` non-overlapping streams for parallel workers.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let mut acc = [0u64; 4];
        for word in JUMP {
            for bit in 0..64 {
                if (word >> bit) & 1 == 1 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                self.next_u64();
            }
        }
        self.s = acc;
    }
}

impl Rng for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        Xoshiro256PlusPlus::next_u64(self)
    }
}

impl crate::SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        Xoshiro256PlusPlus::seed_from_u64(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::Xoshiro256PlusPlus;

    /// Reference vector from the public-domain C implementation
    /// (`xoshiro256plusplus.c`, Blackman & Vigna) with state [1, 2, 3, 4].
    #[test]
    fn matches_reference_implementation() {
        let mut g = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        let expected: [u64; 10] = [
            41_943_041,
            58_720_359,
            3_588_806_011_781_223,
            3_591_011_842_654_386,
            9_228_616_714_210_784_205,
            9_973_669_472_204_895_162,
            14_011_001_112_246_962_877,
            12_406_186_145_184_390_807,
            15_849_039_046_786_891_736,
            10_450_023_813_501_588_000,
        ];
        for e in expected {
            assert_eq!(g.next_u64(), e);
        }
    }

    /// Pins the SplitMix64-expanded seeding so the workspace stream can
    /// never drift without this test being updated deliberately.
    #[test]
    fn seeding_is_pinned() {
        let mut g = Xoshiro256PlusPlus::seed_from_u64(0);
        let first = g.next_u64();
        let mut g2 = Xoshiro256PlusPlus::seed_from_u64(0);
        assert_eq!(first, g2.next_u64());
        // Distinct seeds diverge immediately.
        assert_ne!(
            Xoshiro256PlusPlus::seed_from_u64(1).next_u64(),
            Xoshiro256PlusPlus::seed_from_u64(2).next_u64()
        );
    }

    #[test]
    fn jump_changes_stream_and_is_deterministic() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(9);
        let mut b = a.clone();
        b.jump();
        let pre: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let post: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert!(pre.iter().zip(post.iter()).all(|(x, y)| x != y));
        let mut c = Xoshiro256PlusPlus::seed_from_u64(9);
        c.jump();
        assert_eq!(c.next_u64(), post[0]);
    }

    #[test]
    #[should_panic(expected = "all zeros")]
    fn all_zero_state_rejected() {
        let _ = Xoshiro256PlusPlus::from_state([0; 4]);
    }
}
