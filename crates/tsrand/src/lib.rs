//! Deterministic, in-tree pseudo-random number generation.
//!
//! This crate replaces the external `rand` crate throughout the workspace
//! so that (a) the workspace builds hermetically with no registry access,
//! and (b) every sampled stream is *bit-reproducible by construction*:
//! the generator is specified here, in ~300 lines of audited code, rather
//! than delegated to a dependency whose stream may change across versions.
//! Reproducibility of seeded runs is what makes every number in
//! `EXPERIMENTS.md` and every golden-snapshot test meaningful.
//!
//! # Generators
//!
//! * [`SplitMix64`] — Steele, Lea & Flood (OOPSLA 2014). Used to expand a
//!   single `u64` seed into full generator state; every bit pattern of the
//!   seed is acceptable (including zero).
//! * [`Xoshiro256PlusPlus`] — Blackman & Vigna (2019), `xoshiro256++`.
//!   The workspace workhorse: 256-bit state, period 2^256 − 1, passes
//!   BigCrush, and is trivially portable (three rotations and an add).
//!
//! The alias [`StdRng`] names the workspace-default generator so call
//! sites read the same as they did under `rand` (`StdRng::seed_from_u64`).
//! **The stream differs from `rand::rngs::StdRng`** (which is ChaCha12);
//! see DESIGN.md for why that preserves the paper's claims.
//!
//! # Sampling
//!
//! The [`Rng`] trait provides the sampling surface the workspace needs:
//! `next_u64`, `f64_unit`, `gen_range` (integer ranges are debiased with
//! Lemire's multiply-shift rejection; float ranges are half-open),
//! `shuffle` (Fisher–Yates), `choose`, `choose_weighted_index`, and
//! `gen_bool`. [`Normal`] supplies Gaussian variates via Box–Muller.
//!
//! # Example
//!
//! ```
//! use tsrand::{Rng, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let die = rng.gen_range(1..=6u32);
//! assert!((1..=6).contains(&die));
//! let u = rng.f64_unit();
//! assert!((0.0..1.0).contains(&u));
//! // Same seed, same stream — always.
//! assert_eq!(
//!     StdRng::seed_from_u64(7).next_u64(),
//!     StdRng::seed_from_u64(7).next_u64(),
//! );
//! ```

pub mod normal;
pub mod rng;
pub mod splitmix;
pub mod xoshiro;

pub use normal::Normal;
pub use rng::{Rng, SampleRange};
pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256PlusPlus;

/// The workspace-default generator (currently [`Xoshiro256PlusPlus`]).
///
/// Named `StdRng` so call sites migrated from the `rand` crate keep their
/// shape, but the stream is **not** the `rand::rngs::StdRng` stream.
pub type StdRng = Xoshiro256PlusPlus;

/// Seeding interface mirroring the subset of `rand::SeedableRng` the
/// workspace uses.
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from a single `u64` seed.
    ///
    /// All seeds are valid, including 0: the seed is expanded through
    /// [`SplitMix64`] so that even pathological inputs yield well-mixed
    /// state.
    fn seed_from_u64(seed: u64) -> Self;
}
