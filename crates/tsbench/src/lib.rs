//! In-tree micro-benchmark harness.
//!
//! A hermetic replacement for the slice of `criterion` the workspace
//! used: named benchmarks inside named groups, warmup, repeated timed
//! samples, robust summary statistics (min / mean / median / p95), a
//! human-readable table on stdout, and machine-readable JSON written to
//! `BENCH_<group>.json` so the repository can track a performance
//! trajectory across PRs.
//!
//! # Methodology
//!
//! Each benchmark is auto-calibrated: the closure is run in batches whose
//! size is chosen so one batch lasts ≳ [`Config::min_batch_ns`] (default
//! 2 ms), which keeps `Instant::now` overhead and timer granularity below
//! ~0.1% of the measurement. After [`Config::warmup_batches`] discarded
//! warmup batches, [`Config::samples`] batch timings are recorded; each
//! sample is the mean per-iteration time of its batch. Median and p95
//! over samples are reported — median for the headline (robust to OS
//! noise spikes), p95 for the tail.
//!
//! # Usage
//!
//! ```
//! use tsbench::Group;
//!
//! let mut g = Group::new("demo").quick(); // .quick() trims counts for tests
//! g.bench("push_pop", || {
//!     let mut v = vec![0u64; 16];
//!     v.push(1);
//!     v.pop()
//! });
//! let report = g.finish_to_string();
//! assert!(report.contains("push_pop"));
//! ```
//!
//! The closure's return value is passed through [`std::hint::black_box`],
//! so benchmarked code cannot be optimized away; use `black_box` on
//! inputs captured by the closure as needed.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Tuning knobs for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Recorded batch samples per benchmark.
    pub samples: u32,
    /// Discarded warmup batches per benchmark.
    pub warmup_batches: u32,
    /// Target minimum wall-clock per batch, in nanoseconds.
    pub min_batch_ns: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            samples: 30,
            warmup_batches: 3,
            min_batch_ns: 2_000_000, // 2 ms
        }
    }
}

impl Config {
    /// A drastically trimmed configuration for smoke tests and `--quick`
    /// runs: single-iteration batches, few samples.
    #[must_use]
    pub fn quick() -> Self {
        Config {
            samples: 5,
            warmup_batches: 1,
            min_batch_ns: 0,
        }
    }
}

/// Summary statistics for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Record {
    /// Benchmark name within its group.
    pub name: String,
    /// Iterations per recorded batch.
    pub batch: u64,
    /// Recorded samples (mean ns/iter of each batch), sorted ascending.
    pub samples_ns: Vec<f64>,
    /// Fastest sample.
    pub min_ns: f64,
    /// Mean over samples.
    pub mean_ns: f64,
    /// Median over samples — the headline number.
    pub median_ns: f64,
    /// 95th percentile over samples.
    pub p95_ns: f64,
    /// 99th percentile over samples — the tail-latency gate for serving
    /// benchmarks (meaningful only with enough samples; equals the max
    /// for small sample counts).
    pub p99_ns: f64,
}

impl Record {
    fn from_samples(name: &str, batch: u64, mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "no samples recorded");
        samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        Record {
            name: name.to_string(),
            batch,
            min_ns: samples[0],
            mean_ns: mean,
            median_ns: percentile(&samples, 50.0),
            p95_ns: percentile(&samples, 95.0),
            p99_ns: percentile(&samples, 99.0),
            samples_ns: samples,
        }
    }

    /// Builds a record from externally measured per-event durations
    /// (e.g. per-request latencies from a load generator), in
    /// nanoseconds. Each sample is one event (`batch == 1`), so the
    /// percentiles are true tail latencies over events rather than over
    /// batch means.
    ///
    /// # Panics
    ///
    /// Panics when `samples_ns` is empty or contains non-finite values.
    #[must_use]
    pub fn from_latency_samples(name: &str, samples_ns: Vec<f64>) -> Self {
        Record::from_samples(name, 1, samples_ns)
    }

    /// Builds a single-sample record carrying a scalar metric (a
    /// throughput, a rate) in the `*_ns` fields. The JSON schema stays
    /// uniform; the metric's unit is part of its name (e.g.
    /// `throughput_rps`).
    #[must_use]
    pub fn from_scalar(name: &str, value: f64) -> Self {
        Record::from_samples(name, 1, vec![value])
    }
}

/// Linear-interpolated percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = (p / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// A named collection of benchmarks that reports together.
pub struct Group {
    name: String,
    config: Config,
    records: Vec<Record>,
}

impl Group {
    /// Creates a group with the default [`Config`].
    #[must_use]
    pub fn new(name: &str) -> Self {
        Group {
            name: name.to_string(),
            config: Config::default(),
            records: Vec::new(),
        }
    }

    /// Replaces the configuration.
    #[must_use]
    pub fn with_config(mut self, config: Config) -> Self {
        self.config = config;
        self
    }

    /// Switches to [`Config::quick`].
    #[must_use]
    pub fn quick(mut self) -> Self {
        self.config = Config::quick();
        self
    }

    /// The group name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Runs one benchmark: calibrates a batch size, warms up, records
    /// samples, and stores the summary. Prints one table row to stdout.
    pub fn bench<T, F: FnMut() -> T>(&mut self, name: &str, mut f: F) {
        let batch = calibrate(&mut f, self.config.min_batch_ns);
        for _ in 0..self.config.warmup_batches {
            time_batch(&mut f, batch);
        }
        let samples: Vec<f64> = (0..self.config.samples.max(1))
            .map(|_| time_batch(&mut f, batch))
            .collect();
        let rec = Record::from_samples(name, batch, samples);
        println!(
            "  {:<32} median {:>12}  p95 {:>12}  min {:>12}  ({} samples × {} iters)",
            rec.name,
            fmt_ns(rec.median_ns),
            fmt_ns(rec.p95_ns),
            fmt_ns(rec.min_ns),
            rec.samples_ns.len(),
            rec.batch,
        );
        self.records.push(rec);
    }

    /// Adds an externally built record (see
    /// [`Record::from_latency_samples`]) and prints its table row, so
    /// load-generator style benchmarks report through the same schema.
    pub fn push_record(&mut self, rec: Record) {
        println!(
            "  {:<32} median {:>12}  p95 {:>12}  p99 {:>12}  ({} samples)",
            rec.name,
            fmt_ns(rec.median_ns),
            fmt_ns(rec.p95_ns),
            fmt_ns(rec.p99_ns),
            rec.samples_ns.len(),
        );
        self.records.push(rec);
    }

    /// The records collected so far.
    #[must_use]
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Serializes the group to the `BENCH_*.json` schema.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"group\": {},", json_string(&self.name));
        let _ = writeln!(
            out,
            "  \"samples\": {}, \"warmup_batches\": {},",
            self.config.samples, self.config.warmup_batches
        );
        out.push_str("  \"benchmarks\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": {}, \"batch\": {}, \"median_ns\": {:.1}, \
                 \"p95_ns\": {:.1}, \"p99_ns\": {:.1}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}}}",
                json_string(&r.name),
                r.batch,
                r.median_ns,
                r.p95_ns,
                r.p99_ns,
                r.mean_ns,
                r.min_ns
            );
            out.push_str(if i + 1 < self.records.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `BENCH_<group>.json` into `dir` and returns the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Renders the human-readable summary (also printed incrementally by
    /// [`Group::bench`]).
    #[must_use]
    pub fn finish_to_string(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "group {}", self.name);
        for r in &self.records {
            let _ = writeln!(
                out,
                "  {:<32} median {:>12}  p95 {:>12}",
                r.name,
                fmt_ns(r.median_ns),
                fmt_ns(r.p95_ns)
            );
        }
        out
    }
}

/// Picks a batch size so one batch lasts at least `min_batch_ns`.
fn calibrate<T, F: FnMut() -> T>(f: &mut F, min_batch_ns: u64) -> u64 {
    if min_batch_ns == 0 {
        return 1;
    }
    let mut batch: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        let elapsed = start.elapsed().as_nanos() as u64;
        if elapsed >= min_batch_ns {
            return batch;
        }
        // Grow geometrically toward the target, capped to avoid overshoot
        // on the next probe.
        let factor = if elapsed == 0 {
            16
        } else {
            ((min_batch_ns / elapsed.max(1)) + 1).clamp(2, 16)
        };
        batch = batch.saturating_mul(factor).min(1 << 30);
    }
}

/// Times one batch, returning mean ns/iter.
fn time_batch<T, F: FnMut() -> T>(f: &mut F, batch: u64) -> f64 {
    let start = Instant::now();
    for _ in 0..batch {
        black_box(f());
    }
    start.elapsed().as_nanos() as f64 / batch as f64
}

/// Escapes a string as a JSON literal (the only JSON we produce needs
/// this one escape path, so no serializer dependency).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:7.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:7.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:7.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:7.3} s ", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::{percentile, Config, Group, Record};

    #[test]
    fn percentile_interpolates() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 100.0), 4.0);
        assert!((percentile(&s, 50.0) - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&[7.0], 95.0), 7.0);
    }

    #[test]
    fn record_statistics_are_order_independent() {
        let r = Record::from_samples("x", 10, vec![3.0, 1.0, 2.0]);
        assert_eq!(r.min_ns, 1.0);
        assert!((r.mean_ns - 2.0).abs() < 1e-12);
        assert_eq!(r.median_ns, 2.0);
        assert!(r.p99_ns >= r.p95_ns);
        assert_eq!(r.samples_ns, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn latency_records_report_event_percentiles() {
        // 100 events: 99 fast, one slow outlier — p99 must see the tail.
        let mut samples: Vec<f64> = vec![100.0; 99];
        samples.push(10_000.0);
        let r = Record::from_latency_samples("req", samples);
        assert_eq!(r.batch, 1);
        assert_eq!(r.median_ns, 100.0);
        assert!(r.p99_ns > r.p95_ns, "p99 {} missed the tail", r.p99_ns);
        let s = Record::from_scalar("throughput_rps", 1234.5);
        assert_eq!(s.median_ns, 1234.5);
        let mut g = Group::new("serve-unit").quick();
        g.push_record(r);
        g.push_record(s);
        let j = g.to_json();
        assert!(j.contains("\"p99_ns\""));
        assert!(j.contains("\"throughput_rps\""));
    }

    #[test]
    fn bench_records_and_reports() {
        let mut g = Group::new("unit").quick();
        g.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert_eq!(g.records().len(), 1);
        let r = &g.records()[0];
        assert!(r.median_ns > 0.0);
        assert!(r.p95_ns >= r.median_ns);
        assert!(r.min_ns <= r.median_ns);
        assert!(g.finish_to_string().contains("spin"));
    }

    #[test]
    fn json_is_well_formed() {
        let mut g = Group::new("j\"son").quick();
        g.bench("noop", || 1u8);
        g.bench("noop2", || 2u8);
        let j = g.to_json();
        // Structural spot checks (no JSON parser in-tree by design).
        assert!(j.contains("\"group\": \"j\\\"son\""));
        assert!(j.contains("\"name\": \"noop\""));
        assert!(j.contains("\"median_ns\""));
        assert_eq!(j.matches("{\"name\"").count(), 2);
        assert!(j.trim_end().ends_with('}'));
        // Balanced braces/brackets.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn write_json_creates_file() {
        let dir = std::env::temp_dir().join(format!("tsbench-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut g = Group::new("demo").quick();
        g.bench("noop", || ());
        let path = g.write_json(&dir).unwrap();
        assert!(path.ends_with("BENCH_demo.json"));
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.contains("\"group\": \"demo\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quick_config_minimizes_work() {
        let c = Config::quick();
        assert!(c.samples <= 10);
        assert_eq!(c.min_batch_ns, 0);
    }
}
