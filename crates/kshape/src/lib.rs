//! # k-Shape: Efficient and Accurate Clustering of Time Series
//!
//! A faithful Rust implementation of the paper's contribution
//! (Paparrizos & Gravano, SIGMOD 2015):
//!
//! * [`ncc`] — the cross-correlation normalizations `NCCb`, `NCCu`, `NCCc`
//!   (Equation 8, Figure 3, Appendix A),
//! * [`sbd`] — the **shape-based distance** (Equation 9, Algorithm 1),
//!   computed with a power-of-two-padded FFT, plus the `NoFFT` and
//!   `NoPow2` ablation variants of Table 2,
//! * [`extraction`] — **shape extraction** (Algorithm 2): the cluster
//!   centroid as the maximizer of the Rayleigh quotient of `M = QᵀSQ`,
//! * [`algorithm`] — the **k-Shape** clustering algorithm (Algorithm 3),
//! * [`outofcore`] — the same refinement loop streamed over a
//!   [`tsdata::store::SeriesView`] row source with working memory
//!   independent of `n` (Figure 12 scale),
//! * [`init`] — random and k-shape++-style initializations,
//! * [`multi`] — multi-restart driver selecting the best run by objective,
//! * [`sbd_unequal`] — SBD across different lengths (footnote 3) and the
//!   uniform-scaling variant,
//! * [`validity`] — selecting the number of clusters k with intrinsic
//!   criteria (paper footnote 2): silhouette under SBD plus the inertia
//!   elbow curve.
//!
//! # Quickstart
//!
//! ```
//! use kshape::{KShape, KShapeOptions};
//!
//! // Two obvious shape classes: rising and falling ramps, with phase jitter.
//! let mut series = Vec::new();
//! for s in 0..4 {
//!     let up: Vec<f64> = (0..32).map(|i| ((i + s) % 32) as f64).collect();
//!     let down: Vec<f64> = (0..32).map(|i| (31 - (i + s) % 32) as f64).collect();
//!     series.push(up);
//!     series.push(down);
//! }
//! let result = KShape::fit_with(&series, &KShapeOptions::new(2).with_seed(42))
//!     .expect("clean input");
//! assert_eq!(result.labels.len(), 8);
//! // Members 0,2,4,... share one cluster and 1,3,5,... the other.
//! assert_eq!(result.labels[0], result.labels[2]);
//! assert_ne!(result.labels[0], result.labels[1]);
//! ```
//!
//! Budgets, cancellation, and telemetry all ride on the same options
//! object (see [`KShapeOptions`]), which is the only fit entry point —
//! the legacy `fit` / `try_fit` / `try_fit_with_control` triplet has
//! been removed. Distances follow the same convention through
//! [`Sbd::distance`] with [`SbdOptions`], which dispatches equal-length,
//! unequal-length, rescaled, and multichannel (summed per-channel NCC)
//! SBD from one call.

#![warn(missing_docs)]

pub mod algorithm;
pub mod extraction;
pub mod init;
pub mod multi;
pub mod ncc;
pub mod outofcore;
pub mod sbd;
pub mod sbd_unequal;
pub mod spectra;
pub mod stream;
pub mod validity;

pub use algorithm::{KShape, KShapeConfig, KShapeOptions, KShapeResult};
pub use extraction::{shape_extraction, try_shape_extraction, GramAccumulator};
pub use outofcore::{assign_store, fit_store};
pub use sbd::{sbd, try_sbd, CacheStats, Sbd, SbdOptions, SbdResult};
pub use spectra::SpectraEngine;
pub use stream::{
    Assignment, Decay, DriftConfig, PushOutcome, QuarantineReason, ReseedFit, ReseedRequest,
    Reseeder, StreamConfig, StreamKShape, StreamStats,
};
pub use tserror::{TsError, TsResult};
