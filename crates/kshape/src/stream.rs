//! Online k-Shape over an unbounded, dirty, drifting feed.
//!
//! The paper's shape extraction (§3.2) builds each centroid from the
//! matrix `M = Qᵀ S Q` where `S = Σᵣ xᵣ xᵣᵀ` accumulates **additively**
//! over the cluster's aligned members — exactly the sufficient statistic
//! an online variant needs. [`StreamKShape`] exploits that:
//!
//! * **Assign immediately.** Each arrival is z-normalized and assigned to
//!   its nearest centroid through the cached-spectra SBD hot path
//!   ([`SbdPlan::sbd_spectra`]) — one FFT per arrival, centroid spectra
//!   cached across arrivals.
//! * **Fold into sufficient statistics.** The aligned arrival is folded
//!   into its cluster's `S` matrix by a rank-one update, under one of
//!   three [`Decay`] variants: append-only (all history, equal weight),
//!   exponential (recent history dominates), or windowed (exact sliding
//!   window, old rows subtracted back out).
//! * **Refresh on a mini-batch cadence.** Every `refresh_every` accepted
//!   arrivals the centroids are re-extracted from the accumulated
//!   statistics — the dominant eigenvector of each cluster's `S` (already
//!   row-centered, so `M` itself) — under an optional [`Budget`]; a
//!   tripped budget keeps the previous centroids rather than erroring.
//! * **Detect drift, self-heal.** The squared assignment distances feed a
//!   short/long trend ring; when the short-window median exceeds
//!   `threshold ×` the long-window median at a refresh point, the engine
//!   arms an evidence countdown and — once the recent window is
//!   post-change — re-fits through a pluggable [`Reseeder`] (default:
//!   best-of-3 batch k-Shape under [`tsrun::retry_with_reseed`];
//!   `tscluster` provides a degradation-ladder implementation), then
//!   rebuilds statistics and baseline so one drift event triggers
//!   exactly one reseed.
//!
//! # Robustness contract
//!
//! Corrupt arrivals — NaN runs, missing-value gaps, truncations, byte
//! faults decoded into wrong-length series — are **quarantined** with a
//! typed [`QuarantineReason`] and never touch a centroid, a statistic, or
//! the drift ring. Valid-but-degraded arrivals (flatlines → constant
//! series) quarantine as [`QuarantineReason::Constant`]. [`push`] never
//! panics on any input and never returns NaN centroids.
//!
//! Memory is bounded: the engine keeps `k` `m×m` statistic matrices, at
//! most `window_capacity` recent series (the reseed window), the drift
//! ring, and — for [`Decay::Windowed`] — the per-cluster member window.
//! Nothing grows with stream length.
//!
//! # Checkpointing
//!
//! [`StreamKShape::to_json`] serializes every result-affecting field with
//! shortest-round-trip float formatting; [`StreamKShape::from_json`]
//! restores a byte-identical engine (proven by the chaos suite's
//! kill→resume→diff property). Wall-clock budgets and the reseeder are
//! runtime-only and deliberately not serialized — determinism across a
//! resume must not depend on a clock.
//!
//! [`push`]: StreamKShape::push

use std::collections::VecDeque;
use std::fmt;

use tsdata::distort::shift_zero_pad;
use tsdata::normalize::{try_z_normalize_series, z_normalize_in_place};
use tserror::{TsError, TsResult};
use tsfft::Complex;
use tslinalg::dominant::try_dominant_symmetric_eigen;
use tslinalg::power::power_iteration;
use tslinalg::Matrix;
use tsobs::{IterationEvent, JsonValue, Obs};
use tsrun::{default_retryable, derive_seed, retry_with_reseed, Budget, RunControl};

use crate::algorithm::{KShape, KShapeOptions};
use crate::extraction::EigenMethod;
use crate::sbd::{PreparedSeries, SbdPlan, SbdScratch};

/// Salt separating the stream's fit-seed sequence from any batch run
/// sharing the same base seed.
const STREAM_SEED_SALT: u64 = 0x5EED_57AE_A12B_0CAD;

/// Floor below which a long-window mean is considered "already perfect"
/// and drift detection stays quiet (distances this small cannot drift
/// *worse* in any meaningful sense without tripping the ratio anyway).
const DRIFT_EPSILON: f64 = 1e-12;

/// How per-cluster sufficient statistics forget (or don't).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decay {
    /// Accumulate forever, every member weighted equally. The centroid
    /// converges to the all-history shape; drift shows up only in the
    /// inertia trend (and is healed by reseeding, not by forgetting).
    AppendOnly,
    /// Exponential forgetting: before each fold the statistics are scaled
    /// by `lambda ∈ (0, 1)`, so a member `t` arrivals ago carries weight
    /// `lambda^t`. Effective memory ≈ `1 / (1 − lambda)` arrivals.
    Exponential {
        /// Retention factor per arrival, strictly inside `(0, 1)`.
        lambda: f64,
    },
    /// Exact sliding window of the last `window` members per cluster:
    /// when the window overflows, the oldest aligned row is subtracted
    /// back out of `S` (rank-one downdate). Costs `O(window · m)` memory
    /// per cluster. Add-then-subtract does not cancel in floating point
    /// bit-exactly, but the operation sequence is deterministic, so
    /// checkpoint resume remains byte-identical.
    Windowed {
        /// Per-cluster member window length, at least 1.
        window: usize,
    },
}

impl Decay {
    fn kind_name(self) -> &'static str {
        match self {
            Decay::AppendOnly => "append_only",
            Decay::Exponential { .. } => "exponential",
            Decay::Windowed { .. } => "windowed",
        }
    }
}

/// Drift detection over the squared-assignment-distance trend.
///
/// The ring holds the last `long_window` squared distances; drift fires
/// when the *median* of the newest `short_window` exceeds `threshold ×`
/// the median of the whole ring (checked at refresh points only, so the
/// signal tracks the same inertia trend emitted as `IterationEvent`
/// telemetry). Medians keep the detector quiet under a minority of
/// accepted-but-degraded arrivals — see
/// [`StreamKShape`]'s drift internals for the rationale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Newest-arrivals window whose median is the "now" signal.
    pub short_window: usize,
    /// Full ring length whose median is the baseline. Must be ≥ `short_window`.
    pub long_window: usize,
    /// Ratio of short-median to long-median that declares drift (> 1).
    pub threshold: f64,
    /// Accepted arrivals to wait after a reseed before drift may fire
    /// again — gives the new centroids time to own the baseline.
    pub cooldown: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            // A genuine regime change moves the squared-distance median
            // by 50–100×, while sampling noise on a 32-entry median can
            // reach 2–3×: threshold 4 keeps full sensitivity to real
            // drift with headroom against false reseeds.
            short_window: 32,
            long_window: 256,
            threshold: 4.0,
            cooldown: 256,
        }
    }
}

/// Configuration of [`StreamKShape`]. Every field here is
/// result-affecting and rides along in checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// Number of clusters.
    pub k: usize,
    /// Per-channel series length every arrival must have.
    pub m: usize,
    /// Channels per arrival (default 1). An arrival is `m * channels`
    /// samples in channel-major order (all of channel 0, then channel 1,
    /// …); its declared shape comes from this configuration, never from
    /// whatever happened to arrive first.
    pub channels: usize,
    /// Base RNG seed; all fit seeds derive deterministically from it.
    pub seed: u64,
    /// Forgetting policy for the sufficient statistics.
    pub decay: Decay,
    /// Centroid refresh cadence, in accepted arrivals (≥ 1).
    pub refresh_every: usize,
    /// Accepted arrivals buffered before the bootstrap fit (≥ k).
    pub warmup: usize,
    /// Bound on the recent-arrivals ring backing bootstrap and reseeds
    /// (≥ `warmup`). This is the engine's memory ceiling.
    pub window_capacity: usize,
    /// Iteration cap for bootstrap/reseed fits.
    pub max_iter: usize,
    /// Eigen solver for the streaming shape extraction.
    pub eigen: EigenMethod,
    /// Drift detection parameters.
    pub drift: DriftConfig,
    /// Attempts granted to a bootstrap/reseed fit under
    /// [`tsrun::retry_with_reseed`] (≥ 1).
    pub reseed_attempts: u32,
}

impl StreamConfig {
    /// A conservative default configuration for `k` clusters of length-`m`
    /// series.
    #[must_use]
    pub fn new(k: usize, m: usize) -> Self {
        StreamConfig {
            k,
            m,
            channels: 1,
            seed: 42,
            decay: Decay::AppendOnly,
            refresh_every: 32,
            warmup: (4 * k).max(k + 1),
            window_capacity: (64 * k).max(256),
            max_iter: 30,
            eigen: EigenMethod::Full,
            drift: DriftConfig::default(),
            reseed_attempts: 3,
        }
    }

    /// Sets the channel count (channel-major arrivals of
    /// `m * channels` samples).
    #[must_use]
    pub fn with_channels(mut self, channels: usize) -> Self {
        self.channels = channels;
        self
    }

    /// Samples per arrival: `m * channels`.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.m * self.channels
    }

    /// Sets the base seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the decay variant.
    #[must_use]
    pub fn with_decay(mut self, decay: Decay) -> Self {
        self.decay = decay;
        self
    }

    /// Sets the refresh cadence.
    #[must_use]
    pub fn with_refresh_every(mut self, refresh_every: usize) -> Self {
        self.refresh_every = refresh_every;
        self
    }

    /// Sets warmup size and (if currently smaller) the window capacity.
    #[must_use]
    pub fn with_warmup(mut self, warmup: usize) -> Self {
        self.warmup = warmup;
        self.window_capacity = self.window_capacity.max(warmup);
        self
    }

    /// Sets the recent-window capacity.
    #[must_use]
    pub fn with_window_capacity(mut self, capacity: usize) -> Self {
        self.window_capacity = capacity;
        self
    }

    /// Sets the drift detector.
    #[must_use]
    pub fn with_drift(mut self, drift: DriftConfig) -> Self {
        self.drift = drift;
        self
    }

    /// Sets the eigen solver.
    #[must_use]
    pub fn with_eigen(mut self, eigen: EigenMethod) -> Self {
        self.eigen = eigen;
        self
    }

    /// Sets the fit iteration cap.
    #[must_use]
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`TsError::InvalidK`] for an impossible `k`/`warmup` pair, and
    /// [`TsError::NumericalFailure`] (with context) for every other
    /// out-of-range knob.
    pub fn validate(&self) -> TsResult<()> {
        let bad = |context: String| Err(TsError::NumericalFailure { context });
        if self.k == 0 {
            return Err(TsError::InvalidK {
                k: 0,
                n: self.warmup,
            });
        }
        if self.m < 2 {
            return bad(format!("stream config: series length m={} < 2", self.m));
        }
        if self.channels == 0 {
            return bad("stream config: channels must be >= 1".to_string());
        }
        if self.warmup < self.k {
            return Err(TsError::InvalidK {
                k: self.k,
                n: self.warmup,
            });
        }
        if self.window_capacity < self.warmup {
            return bad(format!(
                "stream config: window_capacity={} < warmup={}",
                self.window_capacity, self.warmup
            ));
        }
        if self.refresh_every == 0 {
            return bad("stream config: refresh_every must be >= 1".to_string());
        }
        if self.max_iter == 0 {
            return bad("stream config: max_iter must be >= 1".to_string());
        }
        if self.reseed_attempts == 0 {
            return bad("stream config: reseed_attempts must be >= 1".to_string());
        }
        let d = &self.drift;
        if d.short_window == 0 || d.long_window < d.short_window {
            return bad(format!(
                "stream config: drift windows short={} long={} (need 1 <= short <= long)",
                d.short_window, d.long_window
            ));
        }
        if !(d.threshold.is_finite() && d.threshold > 1.0) {
            return bad(format!(
                "stream config: drift threshold {} must be finite and > 1",
                d.threshold
            ));
        }
        match self.decay {
            Decay::Exponential { lambda } if !(lambda > 0.0 && lambda < 1.0) => bad(format!(
                "stream config: exponential lambda {lambda} must be in (0, 1)"
            )),
            Decay::Windowed { window: 0 } => {
                bad("stream config: windowed decay needs window >= 1".to_string())
            }
            _ => Ok(()),
        }
    }
}

/// Why an arrival was quarantined instead of assigned.
///
/// Quarantined arrivals never touch centroids, statistics, or the drift
/// ring — the typed-error half of the robustness contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineReason {
    /// The arrival had no samples.
    Empty,
    /// The arrival's length disagrees with the configured `m`.
    WrongLength {
        /// Configured series length.
        expected: usize,
        /// Length actually received.
        found: usize,
    },
    /// The arrival's sample count is a whole number of channels of the
    /// configured length `m`, but not the *configured* number of
    /// channels. Counts are channels, not samples.
    WrongChannels {
        /// Configured channel count.
        expected: usize,
        /// Channel count actually received (`len / m`).
        found: usize,
    },
    /// A sample was NaN or infinite.
    NonFinite {
        /// Index of the first offending sample.
        index: usize,
    },
    /// The arrival has zero variance — no shape information.
    Constant,
}

impl QuarantineReason {
    /// Stable name for counters and wire responses.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            QuarantineReason::Empty => "empty",
            QuarantineReason::WrongLength { .. } => "wrong_length",
            QuarantineReason::WrongChannels { .. } => "wrong_channels",
            QuarantineReason::NonFinite { .. } => "non_finite",
            QuarantineReason::Constant => "constant",
        }
    }

    /// The equivalent typed [`TsError`], for callers that propagate.
    #[must_use]
    pub fn to_error(self, series: usize) -> TsError {
        match self {
            QuarantineReason::Empty => TsError::EmptyInput,
            QuarantineReason::WrongLength { expected, found } => TsError::LengthMismatch {
                expected,
                found,
                series,
            },
            // Channel counts ride the length-mismatch shape; the unit is
            // channels instead of samples.
            QuarantineReason::WrongChannels { expected, found } => TsError::LengthMismatch {
                expected,
                found,
                series,
            },
            QuarantineReason::NonFinite { index } => TsError::NonFinite { series, index },
            QuarantineReason::Constant => TsError::ConstantSeries { series },
        }
    }
}

/// One accepted assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Assignment {
    /// Cluster the arrival joined.
    pub label: usize,
    /// SBD distance to that cluster's centroid.
    pub dist: f64,
    /// Alignment shift applied before folding into the statistics.
    pub shift: isize,
    /// Whether this arrival triggered a centroid refresh.
    pub refreshed: bool,
    /// Whether this arrival triggered a drift reseed.
    pub reseeded: bool,
}

/// Outcome of one [`StreamKShape::push`].
#[derive(Debug, Clone, PartialEq)]
pub enum PushOutcome {
    /// Pre-bootstrap: the arrival was buffered; `pending` counts the
    /// warmup buffer so far.
    Buffered {
        /// Accepted arrivals waiting for the bootstrap fit.
        pending: usize,
    },
    /// This arrival completed warmup and the bootstrap fit ran; `labels`
    /// covers every buffered arrival, oldest first (this arrival last).
    Bootstrapped {
        /// Labels of the whole warmup buffer, in arrival order.
        labels: Vec<usize>,
    },
    /// Assigned to a cluster (the steady-state outcome).
    Assigned(Assignment),
    /// Rejected with a typed reason; the engine state is untouched
    /// except for the quarantine counters.
    Quarantined(QuarantineReason),
}

/// Summary counters, cheap to copy out for telemetry and wire responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Total arrivals pushed (accepted + quarantined).
    pub arrivals: u64,
    /// Arrivals accepted (buffered or assigned).
    pub accepted: u64,
    /// Arrivals quarantined.
    pub quarantined: u64,
    /// Successful fits (bootstrap + reseeds).
    pub fits: u64,
    /// Drift-triggered reseeds.
    pub reseeds: u64,
    /// Centroid refreshes from sufficient statistics.
    pub refreshes: u64,
    /// Refreshes where a cluster's extraction degenerated and the
    /// previous centroid was kept.
    pub degenerate_refreshes: u64,
    /// Whether the bootstrap fit has run.
    pub bootstrapped: bool,
    /// Arrivals currently buffered toward warmup (0 once bootstrapped).
    pub pending: usize,
}

/// Everything a [`Reseeder`] gets to work with.
#[derive(Debug)]
pub struct ReseedRequest<'a> {
    /// The engine's recent z-normalized arrivals, oldest first.
    pub window: &'a [Vec<f64>],
    /// Number of clusters to fit.
    pub k: usize,
    /// Channels per window row (rows are `channels * m` samples,
    /// channel-major). Reseeders that only understand flat rows may
    /// ignore this; the engine re-normalizes per channel on install.
    pub channels: usize,
    /// Deterministically derived seed for this fit.
    pub seed: u64,
    /// Iteration cap.
    pub max_iter: usize,
    /// Optional budget (the engine's refresh budget, when set).
    pub budget: Option<Budget>,
}

/// A successful reseed fit.
#[derive(Debug, Clone)]
pub struct ReseedFit {
    /// Label per window member, in window order.
    pub labels: Vec<usize>,
    /// `k` centroids (z-normalized by the engine on installation, so raw
    /// medoid series are acceptable).
    pub centroids: Vec<Vec<f64>>,
}

/// Pluggable bootstrap/reseed strategy.
///
/// The default is [`KShapeReseeder`]; `tscluster` provides a
/// degradation-ladder implementation that can descend to cheaper
/// algorithms under pressure.
pub trait Reseeder: Send {
    /// Fits `req.k` clusters over `req.window`.
    ///
    /// # Errors
    ///
    /// Any [`TsError`] from the underlying fit; the engine keeps its
    /// previous state and retries at the next trigger point.
    fn reseed(&mut self, req: &ReseedRequest<'_>) -> TsResult<ReseedFit>;

    /// Stable name for telemetry.
    fn name(&self) -> &'static str {
        "reseeder"
    }
}

/// Batch k-Shape under [`retry_with_reseed`] — the default [`Reseeder`].
#[derive(Debug, Clone, Copy)]
pub struct KShapeReseeder;

impl Reseeder for KShapeReseeder {
    fn reseed(&mut self, req: &ReseedRequest<'_>) -> TsResult<ReseedFit> {
        let attempts = 3; // engine multiplies determinism through req.seed
        let report = retry_with_reseed(req.seed, attempts, default_retryable, |seed| {
            // Best-of-3 restarts by inertia: a reseed window is small and
            // a single random init can merge well-separated shapes into
            // one cluster, which leaves the post-reseed inertia high and
            // the drift detector thrashing. Errors only surface when no
            // restart produced a fit (a tripped budget keeps the best
            // fit found before the trip).
            let mut best: Option<crate::KShapeResult> = None;
            let mut first_err = None;
            for restart in 0u64..3 {
                let mut opts = KShapeOptions::new(req.k)
                    .with_channels(req.channels)
                    .with_seed(seed.wrapping_add(restart.wrapping_mul(0x9E37_79B9)))
                    .with_max_iter(req.max_iter);
                if let Some(b) = req.budget {
                    opts = opts.with_budget(b);
                }
                match KShape::fit_with(req.window, &opts) {
                    Ok(fit) => {
                        if best.as_ref().is_none_or(|b| fit.inertia < b.inertia) {
                            best = Some(fit);
                        }
                    }
                    Err(e) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                        break;
                    }
                }
            }
            match best {
                Some(fit) => Ok(fit),
                None => Err(first_err.expect("no fit and no error is impossible")),
            }
        });
        report.outcome.map(|r| ReseedFit {
            labels: r.labels,
            centroids: r.centroids,
        })
    }

    fn name(&self) -> &'static str {
        "kshape"
    }
}

/// Per-cluster sufficient statistics: `S` (aligned, row-centered Gram
/// accumulator, i.e. the paper's `M` built incrementally), the sum of
/// uncentered aligned rows (sign orientation), the accumulated weight,
/// and — for [`Decay::Windowed`] — the member window itself.
#[derive(Debug, Clone)]
struct ClusterStats {
    weight: f64,
    s: Matrix,
    aligned_sum: Vec<f64>,
    members: VecDeque<Vec<f64>>,
}

impl ClusterStats {
    fn empty(m: usize) -> Self {
        ClusterStats {
            weight: 0.0,
            s: Matrix::zeros(m, m),
            aligned_sum: vec![0.0; m],
            members: VecDeque::new(),
        }
    }

    fn scale(&mut self, lambda: f64) {
        let m = self.aligned_sum.len();
        for r in 0..m {
            for v in self.s.row_mut(r) {
                *v *= lambda;
            }
        }
        for v in &mut self.aligned_sum {
            *v *= lambda;
        }
        self.weight *= lambda;
    }

    /// Adds (`sign = 1.0`) or subtracts (`sign = -1.0`) one *uncentered*
    /// aligned row.
    fn apply_row(&mut self, aligned: &[f64], sign: f64) {
        let m = aligned.len();
        let mean = aligned.iter().sum::<f64>() / m as f64;
        let centered: Vec<f64> = aligned.iter().map(|v| v - mean).collect();
        self.s.rank_one_update(&centered, sign);
        for (acc, v) in self.aligned_sum.iter_mut().zip(aligned) {
            *acc += sign * v;
        }
        self.weight += sign;
    }

    /// Folds one aligned arrival under the given decay policy.
    fn fold(&mut self, aligned: &[f64], decay: Decay) {
        match decay {
            Decay::AppendOnly => self.apply_row(aligned, 1.0),
            Decay::Exponential { lambda } => {
                self.scale(lambda);
                self.apply_row(aligned, 1.0);
            }
            Decay::Windowed { window } => {
                self.apply_row(aligned, 1.0);
                self.members.push_back(aligned.to_vec());
                while self.members.len() > window {
                    let old = self.members.pop_front().expect("non-empty window");
                    self.apply_row(&old, -1.0);
                }
            }
        }
    }

    /// Extracts the streaming shape centroid: dominant eigenvector of
    /// `S`, sign-oriented toward the aligned sum, z-normalized. Returns
    /// `None` when the statistics are degenerate (empty cluster, solver
    /// failure, all-zero vector) — the caller keeps the old centroid.
    fn extract(&self, eigen: EigenMethod) -> Option<Vec<f64>> {
        if self.weight < 0.5 {
            return None;
        }
        let mut centroid = match eigen {
            EigenMethod::Full => try_dominant_symmetric_eigen(&self.s).ok()?.vector,
            EigenMethod::Power => power_iteration(&self.s, 200, 1e-12).vector,
        };
        if centroid.iter().any(|v| !v.is_finite()) || centroid.iter().all(|&v| v == 0.0) {
            return None;
        }
        let orient: f64 = centroid
            .iter()
            .zip(&self.aligned_sum)
            .map(|(c, s)| c * s)
            .sum();
        if orient < 0.0 {
            for v in &mut centroid {
                *v = -*v;
            }
        }
        z_normalize_in_place(&mut centroid);
        if centroid.iter().any(|v| !v.is_finite()) || centroid.iter().all(|&v| v == 0.0) {
            return None;
        }
        Some(centroid)
    }
}

/// The online k-Shape engine. See the module docs for the full contract.
pub struct StreamKShape {
    config: StreamConfig,
    plan: SbdPlan,
    reseeder: Box<dyn Reseeder>,
    refresh_budget: Option<Budget>,

    bootstrapped: bool,
    centroids: Vec<Vec<f64>>,
    clusters: Vec<ClusterStats>,
    recent: VecDeque<Vec<f64>>,
    drift_ring: VecDeque<f64>,

    arrivals: u64,
    accepted: u64,
    quarantined: u64,
    fits: u64,
    reseeds: u64,
    refreshes: u64,
    degenerate_refreshes: u64,
    since_refresh: usize,
    cooldown_left: usize,
    // Accepted arrivals still to gather before a detected drift is
    // answered with a reseed (0 = no drift pending). Deferring the refit
    // by `drift.short_window` arrivals guarantees the reseed window is
    // post-change evidence, not the stale regime that was still filling
    // the recent ring when the detector fired.
    reseed_pending: usize,

    // Runtime-only caches, rebuilt on construction and resume.
    centroid_spectra: Vec<PreparedSeries>,
    scratch: SbdScratch,
    fft_scratch: Vec<Complex>,
}

impl fmt::Debug for StreamKShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamKShape")
            .field("config", &self.config)
            .field("bootstrapped", &self.bootstrapped)
            .field("arrivals", &self.arrivals)
            .field("accepted", &self.accepted)
            .field("quarantined", &self.quarantined)
            .field("fits", &self.fits)
            .field("reseeds", &self.reseeds)
            .field("refreshes", &self.refreshes)
            .field("reseeder", &self.reseeder.name())
            .finish_non_exhaustive()
    }
}

impl StreamKShape {
    /// Creates an engine from a validated configuration.
    ///
    /// # Errors
    ///
    /// Whatever [`StreamConfig::validate`] reports.
    pub fn new(config: StreamConfig) -> TsResult<StreamKShape> {
        config.validate()?;
        let plan = SbdPlan::try_new(config.m)?;
        Ok(StreamKShape {
            plan,
            reseeder: Box::new(KShapeReseeder),
            refresh_budget: None,
            bootstrapped: false,
            centroids: Vec::new(),
            clusters: Vec::new(),
            recent: VecDeque::with_capacity(config.window_capacity),
            drift_ring: VecDeque::with_capacity(config.drift.long_window),
            arrivals: 0,
            accepted: 0,
            quarantined: 0,
            fits: 0,
            reseeds: 0,
            refreshes: 0,
            degenerate_refreshes: 0,
            since_refresh: 0,
            cooldown_left: 0,
            reseed_pending: 0,
            centroid_spectra: Vec::new(),
            scratch: SbdScratch::default(),
            fft_scratch: Vec::new(),
            config,
        })
    }

    /// Replaces the bootstrap/reseed strategy (runtime-only; a resumed
    /// engine starts back on the default [`KShapeReseeder`]).
    pub fn set_reseeder(&mut self, reseeder: Box<dyn Reseeder>) {
        self.reseeder = reseeder;
    }

    /// Sets the budget applied to centroid refreshes and reseed fits
    /// (runtime-only, never serialized — wall clocks are not
    /// deterministic).
    pub fn set_refresh_budget(&mut self, budget: Option<Budget>) {
        self.refresh_budget = budget;
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Current centroids (empty before bootstrap).
    #[must_use]
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Summary counters.
    #[must_use]
    pub fn stats(&self) -> StreamStats {
        StreamStats {
            arrivals: self.arrivals,
            accepted: self.accepted,
            quarantined: self.quarantined,
            fits: self.fits,
            reseeds: self.reseeds,
            refreshes: self.refreshes,
            degenerate_refreshes: self.degenerate_refreshes,
            bootstrapped: self.bootstrapped,
            pending: if self.bootstrapped {
                0
            } else {
                self.recent.len()
            },
        }
    }

    /// Pushes one arrival without telemetry.
    pub fn push(&mut self, series: &[f64]) -> PushOutcome {
        self.push_with(series, Obs::none())
    }

    /// Pushes one arrival, recording counters and refresh
    /// `IterationEvent`s through `obs` when armed.
    ///
    /// Never panics and never errors: invalid input comes back as
    /// [`PushOutcome::Quarantined`]; internal fit failures leave the
    /// engine on its previous state (retried at the next trigger).
    pub fn push_with(&mut self, series: &[f64], obs: Obs<'_>) -> PushOutcome {
        self.arrivals += 1;
        let z = match self.admit(series) {
            Ok(z) => z,
            Err(reason) => {
                self.quarantined += 1;
                obs.counter("stream.quarantine", 1);
                obs.counter(&format!("stream.quarantine.{}", reason.name()), 1);
                return PushOutcome::Quarantined(reason);
            }
        };
        self.accepted += 1;
        self.recent.push_back(z.clone());
        while self.recent.len() > self.config.window_capacity {
            self.recent.pop_front();
        }

        if !self.bootstrapped {
            if self.recent.len() < self.config.warmup {
                return PushOutcome::Buffered {
                    pending: self.recent.len(),
                };
            }
            return match self.refit(obs) {
                Ok(labels) => {
                    self.bootstrapped = true;
                    obs.counter("stream.bootstrap", 1);
                    PushOutcome::Bootstrapped { labels }
                }
                // Fit failed (degenerate warmup buffer, tripped budget…):
                // stay pre-bootstrap and retry when the next arrival has
                // refreshed the window.
                Err(_) => PushOutcome::Buffered {
                    pending: self.recent.len(),
                },
            };
        }

        // Steady state: assign via cached per-channel centroid spectra.
        let m = self.config.m;
        let c = self.config.channels;
        let mut preps = Vec::with_capacity(c);
        for chunk in z.chunks_exact(m) {
            preps.push(self.plan.prepare_with(chunk, &mut self.fft_scratch));
        }
        let mut best = (0usize, f64::INFINITY, 0isize);
        for j in 0..self.config.k {
            let (dist, shift) = self.plan.sbd_spectra_multi(
                &self.centroid_spectra[j * c..(j + 1) * c],
                &preps,
                &mut self.scratch,
            );
            if dist < best.1 {
                best = (j, dist, shift);
            }
        }
        let (label, dist, shift) = best;
        for (ch, chunk) in z.chunks_exact(m).enumerate() {
            let aligned = shift_zero_pad(chunk, shift);
            self.clusters[label * c + ch].fold(&aligned, self.config.decay);
        }
        self.drift_ring.push_back(dist * dist);
        while self.drift_ring.len() > self.config.drift.long_window {
            self.drift_ring.pop_front();
        }
        self.cooldown_left = self.cooldown_left.saturating_sub(1);
        self.since_refresh += 1;

        let mut refreshed = false;
        let mut reseeded = false;
        if self.since_refresh >= self.config.refresh_every {
            self.refresh_centroids(obs);
            refreshed = true;
            if self.reseed_pending == 0 && self.drift_detected() {
                // Detection and response are decoupled: gather
                // `short_window` fresh arrivals first so the refit sees
                // the new regime, then reseed (see `reseed_now`).
                self.reseed_pending = self.config.drift.short_window;
                obs.counter("stream.drift", 1);
            }
        }
        if self.reseed_pending > 0 {
            self.reseed_pending -= 1;
            if self.reseed_pending == 0 {
                reseeded = self.reseed_now(obs);
            }
        }
        PushOutcome::Assigned(Assignment {
            label,
            dist,
            shift,
            refreshed,
            reseeded,
        })
    }

    /// Validates and z-normalizes one arrival (per channel).
    ///
    /// The expected shape is always the *configured* `m * channels` —
    /// never inferred from earlier arrivals — so one malformed first
    /// push can never redefine what the stream accepts.
    fn admit(&self, series: &[f64]) -> Result<Vec<f64>, QuarantineReason> {
        if series.is_empty() {
            return Err(QuarantineReason::Empty);
        }
        let expected = self.config.samples();
        if series.len() != expected {
            if self.config.channels > 1 && series.len().is_multiple_of(self.config.m) {
                return Err(QuarantineReason::WrongChannels {
                    expected: self.config.channels,
                    found: series.len() / self.config.m,
                });
            }
            return Err(QuarantineReason::WrongLength {
                expected,
                found: series.len(),
            });
        }
        let mut z = Vec::with_capacity(expected);
        for (ch, chunk) in series.chunks_exact(self.config.m).enumerate() {
            match try_z_normalize_series(chunk, 0) {
                Ok(zc) => z.extend_from_slice(&zc),
                Err(TsError::NonFinite { index, .. }) => {
                    return Err(QuarantineReason::NonFinite {
                        index: ch * self.config.m + index,
                    })
                }
                Err(TsError::ConstantSeries { .. }) => return Err(QuarantineReason::Constant),
                Err(_) => return Err(QuarantineReason::Empty),
            }
        }
        Ok(z)
    }

    /// Mean of the newest `n` ring entries (`None` when fewer exist).
    fn ring_mean(&self, n: usize) -> Option<f64> {
        if n == 0 || self.drift_ring.len() < n {
            return None;
        }
        let sum: f64 = self.drift_ring.iter().rev().take(n).sum();
        Some(sum / n as f64)
    }

    /// Median of the newest `n` ring entries.
    fn ring_median(&self, n: usize) -> f64 {
        let mut vals: Vec<f64> = self.drift_ring.iter().rev().take(n).copied().collect();
        vals.sort_by(|a, b| a.partial_cmp(b).expect("ring values are finite"));
        let mid = vals.len() / 2;
        if vals.len() % 2 == 1 {
            vals[mid]
        } else {
            0.5 * (vals[mid - 1] + vals[mid])
        }
    }

    /// Whether the inertia trend currently signals drift.
    ///
    /// The signal compares *medians*, not means: accepted-but-degraded
    /// arrivals (amplitude spikes, partial flatlines) put heavy tails on
    /// the squared-distance stream, and a mean-ratio detector false-fires
    /// on two or three spikes landing in the short window. Medians are
    /// blind to a minority of outliers in either window.
    ///
    /// Detection re-arms once the ring holds `2 × short_window` entries
    /// (the long baseline truncates to whatever is available, up to
    /// `long_window`). Requiring a full long window instead would blind
    /// the detector for `long_window` arrivals after every reseed — long
    /// enough for a real regime change to fill the ring uniformly and
    /// erase its own contrast.
    fn drift_detected(&self) -> bool {
        let short = self.config.drift.short_window;
        if self.cooldown_left > 0 || self.drift_ring.len() < 2 * short {
            return false;
        }
        let long = self.config.drift.long_window.min(self.drift_ring.len());
        let short_med = self.ring_median(short);
        let long_med = self.ring_median(long);
        long_med > DRIFT_EPSILON && short_med > self.config.drift.threshold * long_med
    }

    /// Re-extracts every centroid from its sufficient statistics under
    /// the refresh budget. A tripped budget abandons the remaining
    /// clusters (keeping their previous centroids); a degenerate
    /// extraction keeps that cluster's previous centroid.
    fn refresh_centroids(&mut self, obs: Obs<'_>) {
        let ctrl = RunControl::from_parts(self.refresh_budget, None);
        let m = self.config.m;
        let old = if obs.is_armed() {
            Some(self.centroids.clone())
        } else {
            None
        };
        let c = self.config.channels;
        let mut spectra_dirty = false;
        for j in 0..self.config.k {
            if ctrl.poll().is_err() || ctrl.charge((c * m * m) as u64).is_err() {
                obs.counter("stream.refresh.budget_stop", 1);
                break;
            }
            // All channels must extract cleanly; a degenerate channel
            // keeps the cluster's whole previous centroid so channels
            // never desynchronize.
            let parts: Option<Vec<Vec<f64>>> = (0..c)
                .map(|ch| self.clusters[j * c + ch].extract(self.config.eigen))
                .collect();
            if let Some(parts) = parts {
                let centroid = parts.concat();
                if centroid != self.centroids[j] {
                    self.centroids[j] = centroid;
                    spectra_dirty = true;
                }
            } else {
                self.degenerate_refreshes += 1;
                obs.counter("stream.refresh.degenerate", 1);
            }
        }
        if spectra_dirty {
            self.rebuild_spectra();
        }
        self.refreshes += 1;
        let moved = self.since_refresh;
        self.since_refresh = 0;
        if obs.is_armed() {
            let short = self
                .ring_mean(self.config.drift.short_window.min(self.drift_ring.len()))
                .unwrap_or(f64::NAN);
            let shift = old
                .map(|old| {
                    old.iter()
                        .zip(&self.centroids)
                        .flat_map(|(a, b)| a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)))
                        .sum::<f64>()
                        .sqrt()
                })
                .unwrap_or(f64::NAN);
            obs.iteration(&IterationEvent {
                algorithm: "kshape.stream",
                iter: (self.refreshes - 1) as usize,
                inertia: short,
                moved,
                centroid_shift: shift,
            });
        }
    }

    /// Drift response: refit over the newest arrivals — the post-change
    /// evidence gathered since detection, widened to `warmup` when the
    /// detector's window is smaller — rebuild statistics and the drift
    /// baseline, arm the cooldown. A failed fit keeps the previous state
    /// and re-arms the evidence countdown, so the reseed retries on a
    /// fresher window instead of going silent.
    fn reseed_now(&mut self, obs: Obs<'_>) -> bool {
        let take = self
            .config
            .drift
            .short_window
            .max(self.config.warmup)
            .min(self.recent.len());
        match self.refit_newest(take, obs) {
            Ok(_) => {
                self.reseeds += 1;
                self.cooldown_left = self.config.drift.cooldown;
                obs.counter("stream.reseed", 1);
                true
            }
            Err(_) => {
                self.reseed_pending = self.config.drift.short_window;
                obs.counter("stream.reseed.failed", 1);
                false
            }
        }
    }

    /// Runs a full fit over the recent window and installs it: centroids
    /// (defensively z-normalized — ladder medoid rungs return raw
    /// series), fresh per-cluster statistics folded in window order, and
    /// a rebuilt drift baseline. The fit seed derives deterministically
    /// from `(config.seed, fits)`, so resume replays identically without
    /// serializing RNG state.
    fn refit(&mut self, obs: Obs<'_>) -> TsResult<Vec<usize>> {
        self.refit_newest(self.recent.len(), obs)
    }

    /// [`refit`](Self::refit) restricted to the newest `take` window
    /// members (the whole window when `take` covers it).
    fn refit_newest(&mut self, take: usize, obs: Obs<'_>) -> TsResult<Vec<usize>> {
        let skip = self.recent.len().saturating_sub(take);
        let window: Vec<Vec<f64>> = self.recent.iter().skip(skip).cloned().collect();
        let seed = derive_seed(self.config.seed ^ STREAM_SEED_SALT, self.fits as u32);
        let req = ReseedRequest {
            window: &window,
            k: self.config.k,
            channels: self.config.channels,
            seed,
            max_iter: self.config.max_iter,
            budget: self.refresh_budget,
        };
        let fit = self.reseeder.reseed(&req)?;
        if fit.centroids.len() != self.config.k
            || fit.labels.len() != window.len()
            || fit
                .centroids
                .iter()
                .any(|c| c.len() != self.config.samples())
            || fit.labels.iter().any(|&l| l >= self.config.k)
            || fit
                .centroids
                .iter()
                .any(|c| c.iter().any(|v| !v.is_finite()))
        {
            return Err(TsError::NumericalFailure {
                context: format!(
                    "stream reseed: fit from {:?} returned a malformed result",
                    self.reseeder.name()
                ),
            });
        }
        self.fits += 1;
        let mut centroids = fit.centroids;
        for cent in &mut centroids {
            for chunk in cent.chunks_exact_mut(self.config.m) {
                z_normalize_in_place(chunk);
            }
        }
        self.centroids = centroids;
        self.rebuild_spectra();
        self.clusters = (0..self.config.k * self.config.channels)
            .map(|_| ClusterStats::empty(self.config.m))
            .collect();
        // The drift ring restarts EMPTY: seeding it with the window's
        // fitted distances would mix in-sample residuals (near zero —
        // the centroids were fit on these very series) into the
        // long-window baseline, dragging its median low enough that
        // ordinary out-of-sample residue trips the ratio test right
        // after a fit. The detector re-arms once 2×short_window genuine
        // out-of-sample distances have accumulated.
        self.drift_ring.clear();
        let m = self.config.m;
        let c = self.config.channels;
        for (x, &label) in window.iter().zip(&fit.labels) {
            let mut preps = Vec::with_capacity(c);
            for chunk in x.chunks_exact(m) {
                preps.push(self.plan.prepare_with(chunk, &mut self.fft_scratch));
            }
            let (_, shift) = self.plan.sbd_spectra_multi(
                &self.centroid_spectra[label * c..(label + 1) * c],
                &preps,
                &mut self.scratch,
            );
            for (ch, chunk) in x.chunks_exact(m).enumerate() {
                let aligned = shift_zero_pad(chunk, shift);
                self.clusters[label * c + ch].fold(&aligned, self.config.decay);
            }
        }
        self.since_refresh = 0;
        obs.counter("stream.fit", 1);
        Ok(fit.labels)
    }

    fn rebuild_spectra(&mut self) {
        let m = self.config.m;
        let mut spectra = Vec::with_capacity(self.centroids.len() * self.config.channels);
        for cent in &self.centroids {
            for chunk in cent.chunks_exact(m) {
                spectra.push(self.plan.prepare_with(chunk, &mut self.fft_scratch));
            }
        }
        self.centroid_spectra = spectra;
    }

    // ---- checkpoint serialization ------------------------------------

    /// Serializes the engine to JSON with shortest-round-trip floats:
    /// [`from_json`](StreamKShape::from_json) restores a byte-identical
    /// engine (same future outputs, same future checkpoints).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"v\":1,\"config\":");
        self.push_config_json(&mut out);
        out.push_str(&format!(
            ",\"bootstrapped\":{},\"arrivals\":{},\"accepted\":{},\"quarantined\":{},\"fits\":{},\"reseeds\":{},\"refreshes\":{},\"degenerate_refreshes\":{},\"since_refresh\":{},\"cooldown_left\":{},\"reseed_pending\":{}",
            self.bootstrapped,
            self.arrivals,
            self.accepted,
            self.quarantined,
            self.fits,
            self.reseeds,
            self.refreshes,
            self.degenerate_refreshes,
            self.since_refresh,
            self.cooldown_left,
            self.reseed_pending,
        ));
        out.push_str(",\"centroids\":");
        push_rows(&mut out, self.centroids.iter());
        out.push_str(",\"clusters\":[");
        for (i, c) in self.clusters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"weight\":{}", fmt_f64(c.weight)));
            out.push_str(",\"aligned_sum\":");
            push_row(&mut out, &c.aligned_sum);
            out.push_str(",\"s\":");
            push_row(&mut out, c.s.as_slice());
            out.push_str(",\"members\":");
            push_rows(&mut out, c.members.iter());
            out.push('}');
        }
        out.push_str("],\"recent\":");
        push_rows(&mut out, self.recent.iter());
        out.push_str(",\"drift_ring\":");
        push_row_iter(&mut out, self.drift_ring.iter().copied());
        out.push('}');
        out
    }

    fn push_config_json(&self, out: &mut String) {
        let c = &self.config;
        out.push_str(&format!("{{\"k\":{},\"m\":{}", c.k, c.m));
        // Emitted only when multichannel so univariate checkpoints stay
        // byte-identical to the pre-channels format (and old checkpoints
        // keep loading: the parser defaults a missing key to 1).
        if c.channels != 1 {
            out.push_str(&format!(",\"channels\":{}", c.channels));
        }
        out.push_str(&format!(
            ",\"seed\":\"{}\",\"decay\":{{\"kind\":\"{}\"",
            c.seed,
            c.decay.kind_name()
        ));
        match c.decay {
            Decay::AppendOnly => {}
            Decay::Exponential { lambda } => {
                out.push_str(&format!(",\"lambda\":{}", fmt_f64(lambda)));
            }
            Decay::Windowed { window } => out.push_str(&format!(",\"window\":{window}")),
        }
        out.push_str(&format!(
            "}},\"refresh_every\":{},\"warmup\":{},\"window_capacity\":{},\"max_iter\":{},\"eigen\":\"{}\",\"drift\":{{\"short_window\":{},\"long_window\":{},\"threshold\":{},\"cooldown\":{}}},\"reseed_attempts\":{}}}",
            c.refresh_every,
            c.warmup,
            c.window_capacity,
            c.max_iter,
            match c.eigen {
                EigenMethod::Full => "full",
                EigenMethod::Power => "power",
            },
            c.drift.short_window,
            c.drift.long_window,
            fmt_f64(c.drift.threshold),
            c.drift.cooldown,
            c.reseed_attempts,
        ));
    }

    /// Restores an engine from [`to_json`](StreamKShape::to_json) output.
    /// Returns `None` on any structural, dimensional, or finiteness
    /// violation — the shape `CheckpointStore::load_named` expects from
    /// its parser (a corrupt artifact quarantines instead of loading).
    #[must_use]
    pub fn from_json(text: &str) -> Option<StreamKShape> {
        let v = tsobs::parse_json(text).ok()?;
        if v.get("v")?.as_uint()? != 1 {
            return None;
        }
        let config = parse_config(v.get("config")?)?;
        config.validate().ok()?;
        let m = config.m;
        let k = config.k;
        // Rows span all channels; per-channel statistics stay m-sized.
        let samples = config.samples();
        let stat_count = k * config.channels;

        let bootstrapped = match v.get("bootstrapped")? {
            JsonValue::Bool(b) => *b,
            _ => return None,
        };
        let centroids = parse_rows(v.get("centroids")?, Some(samples))?;
        if bootstrapped && centroids.len() != k {
            return None;
        }
        if !bootstrapped && !centroids.is_empty() {
            return None;
        }
        let JsonValue::Arr(cluster_vals) = v.get("clusters")? else {
            return None;
        };
        if bootstrapped && cluster_vals.len() != stat_count {
            return None;
        }
        let mut clusters = Vec::with_capacity(cluster_vals.len());
        for cv in cluster_vals {
            let weight = cv.get("weight")?.as_num()?;
            if !weight.is_finite() {
                return None;
            }
            let aligned_sum = parse_row(cv.get("aligned_sum")?, Some(m))?;
            let s_flat = parse_row(cv.get("s")?, Some(m * m))?;
            let members: VecDeque<Vec<f64>> = parse_rows(cv.get("members")?, Some(m))?
                .into_iter()
                .collect();
            clusters.push(ClusterStats {
                weight,
                s: Matrix::from_vec(m, m, s_flat),
                aligned_sum,
                members,
            });
        }
        let recent: VecDeque<Vec<f64>> = parse_rows(v.get("recent")?, Some(samples))?
            .into_iter()
            .collect();
        if recent.len() > config.window_capacity {
            return None;
        }
        let drift_ring: VecDeque<f64> =
            parse_row(v.get("drift_ring")?, None)?.into_iter().collect();
        if drift_ring.len() > config.drift.long_window {
            return None;
        }

        let mut engine = StreamKShape::new(config).ok()?;
        engine.bootstrapped = bootstrapped;
        engine.centroids = centroids;
        engine.clusters = clusters;
        engine.recent = recent;
        engine.drift_ring = drift_ring;
        engine.arrivals = v.get("arrivals")?.as_uint()?;
        engine.accepted = v.get("accepted")?.as_uint()?;
        engine.quarantined = v.get("quarantined")?.as_uint()?;
        engine.fits = v.get("fits")?.as_uint()?;
        engine.reseeds = v.get("reseeds")?.as_uint()?;
        engine.refreshes = v.get("refreshes")?.as_uint()?;
        engine.degenerate_refreshes = v.get("degenerate_refreshes")?.as_uint()?;
        engine.since_refresh = v.get("since_refresh")?.as_uint()? as usize;
        engine.cooldown_left = v.get("cooldown_left")?.as_uint()? as usize;
        engine.reseed_pending = v.get("reseed_pending")?.as_uint()? as usize;
        engine.rebuild_spectra();
        Some(engine)
    }
}

fn fmt_f64(v: f64) -> String {
    // Checkpointed values are finite by construction (quarantine keeps
    // NaN out), but a defensive `null` beats emitting invalid JSON.
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

fn push_row(out: &mut String, row: &[f64]) {
    push_row_iter(out, row.iter().copied());
}

fn push_row_iter(out: &mut String, row: impl Iterator<Item = f64>) {
    out.push('[');
    for (i, v) in row.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&fmt_f64(v));
    }
    out.push(']');
}

fn push_rows<'a>(out: &mut String, rows: impl Iterator<Item = &'a Vec<f64>>) {
    out.push('[');
    for (i, row) in rows.enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_row(out, row);
    }
    out.push(']');
}

fn parse_row(v: &JsonValue, expect_len: Option<usize>) -> Option<Vec<f64>> {
    let JsonValue::Arr(vals) = v else {
        return None;
    };
    if let Some(n) = expect_len {
        if vals.len() != n {
            return None;
        }
    }
    let mut out = Vec::with_capacity(vals.len());
    for v in vals {
        let x = v.as_num()?;
        if !x.is_finite() {
            return None;
        }
        out.push(x);
    }
    Some(out)
}

fn parse_rows(v: &JsonValue, row_len: Option<usize>) -> Option<Vec<Vec<f64>>> {
    let JsonValue::Arr(rows) = v else {
        return None;
    };
    rows.iter().map(|r| parse_row(r, row_len)).collect()
}

fn parse_config(v: &JsonValue) -> Option<StreamConfig> {
    let seed: u64 = v.get("seed")?.as_str()?.parse().ok()?;
    let decay_v = v.get("decay")?;
    let decay = match decay_v.get("kind")?.as_str()? {
        "append_only" => Decay::AppendOnly,
        "exponential" => Decay::Exponential {
            lambda: decay_v.get("lambda")?.as_num()?,
        },
        "windowed" => Decay::Windowed {
            window: decay_v.get("window")?.as_uint()? as usize,
        },
        _ => return None,
    };
    let eigen = match v.get("eigen")?.as_str()? {
        "full" => EigenMethod::Full,
        "power" => EigenMethod::Power,
        _ => return None,
    };
    let drift_v = v.get("drift")?;
    Some(StreamConfig {
        k: v.get("k")?.as_uint()? as usize,
        m: v.get("m")?.as_uint()? as usize,
        channels: match v.get("channels") {
            Some(cv) => cv.as_uint()? as usize,
            None => 1,
        },
        seed,
        decay,
        refresh_every: v.get("refresh_every")?.as_uint()? as usize,
        warmup: v.get("warmup")?.as_uint()? as usize,
        window_capacity: v.get("window_capacity")?.as_uint()? as usize,
        max_iter: v.get("max_iter")?.as_uint()? as usize,
        eigen,
        drift: DriftConfig {
            short_window: drift_v.get("short_window")?.as_uint()? as usize,
            long_window: drift_v.get("long_window")?.as_uint()? as usize,
            threshold: drift_v.get("threshold")?.as_num()?,
            cooldown: drift_v.get("cooldown")?.as_uint()? as usize,
        },
        reseed_attempts: v.get("reseed_attempts")?.as_uint()? as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsrand::{Rng, StdRng};

    fn sine(m: usize, phase: f64, noise: f64, rng: &mut StdRng) -> Vec<f64> {
        (0..m)
            .map(|t| {
                let x = t as f64 / m as f64 * std::f64::consts::TAU;
                (x * 2.0 + phase).sin() + noise * (rng.gen_range(-1.0..1.0))
            })
            .collect()
    }

    fn square(m: usize, noise: f64, rng: &mut StdRng) -> Vec<f64> {
        (0..m)
            .map(|t| {
                let v = if (t / (m / 4)).is_multiple_of(2) {
                    1.0
                } else {
                    -1.0
                };
                v + noise * rng.gen_range(-1.0..1.0)
            })
            .collect()
    }

    fn small_config() -> StreamConfig {
        StreamConfig::new(2, 32)
            .with_warmup(12)
            .with_window_capacity(64)
            .with_refresh_every(8)
    }

    fn feed(engine: &mut StreamKShape, n: usize, seed: u64) -> Vec<PushOutcome> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x = if i % 2 == 0 {
                    sine(32, 0.0, 0.1, &mut rng)
                } else {
                    square(32, 0.1, &mut rng)
                };
                engine.push(&x)
            })
            .collect()
    }

    #[test]
    fn config_validation_rejects_bad_knobs() {
        assert!(StreamConfig::new(2, 32).validate().is_ok());
        assert!(StreamConfig::new(0, 32).validate().is_err());
        assert!(StreamConfig::new(2, 1).validate().is_err());
        assert!(StreamConfig::new(2, 32).with_warmup(1).validate().is_err());
        assert!(StreamConfig::new(2, 32)
            .with_refresh_every(0)
            .validate()
            .is_err());
        assert!(StreamConfig::new(2, 32)
            .with_decay(Decay::Exponential { lambda: 1.0 })
            .validate()
            .is_err());
        assert!(StreamConfig::new(2, 32)
            .with_decay(Decay::Windowed { window: 0 })
            .validate()
            .is_err());
        let mut bad_drift = StreamConfig::new(2, 32);
        bad_drift.drift.threshold = 0.5;
        assert!(bad_drift.validate().is_err());
    }

    #[test]
    fn bootstraps_then_assigns_two_shape_classes() {
        let mut engine = StreamKShape::new(small_config()).unwrap();
        let outcomes = feed(&mut engine, 120, 7);
        let bootstrapped_at = outcomes
            .iter()
            .position(|o| matches!(o, PushOutcome::Bootstrapped { .. }))
            .expect("bootstrap happened");
        assert_eq!(bootstrapped_at, 11, "warmup is 12 arrivals");
        // After bootstrap every arrival is assigned, never quarantined.
        for o in &outcomes[bootstrapped_at + 1..] {
            assert!(matches!(o, PushOutcome::Assigned(_)), "{o:?}");
        }
        // The two interleaved shape classes land in different clusters.
        let labels: Vec<usize> = outcomes[bootstrapped_at + 1..]
            .iter()
            .filter_map(|o| match o {
                PushOutcome::Assigned(a) => Some(a.label),
                _ => None,
            })
            .collect();
        let even: Vec<usize> = labels.iter().step_by(2).copied().collect();
        let odd: Vec<usize> = labels.iter().skip(1).step_by(2).copied().collect();
        let purity = |v: &[usize]| {
            let ones = v.iter().filter(|&&l| l == 1).count();
            ones.max(v.len() - ones) as f64 / v.len() as f64
        };
        assert!(purity(&even) > 0.9, "even purity {}", purity(&even));
        assert!(purity(&odd) > 0.9, "odd purity {}", purity(&odd));
        assert_ne!(even[0], odd[0], "classes separated");
        // Centroids stay finite and normalized through refreshes.
        let stats = engine.stats();
        assert!(stats.refreshes > 0);
        for c in engine.centroids() {
            assert!(c.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn quarantines_every_invalid_shape_without_state_change() {
        let mut engine = StreamKShape::new(small_config()).unwrap();
        feed(&mut engine, 60, 3);
        let before = engine.to_json();
        let nan = {
            let mut x = vec![1.0; 32];
            x[5] = f64::NAN;
            x
        };
        let cases: Vec<(Vec<f64>, &str)> = vec![
            (vec![], "empty"),
            (vec![1.0; 7], "wrong_length"),
            (nan, "non_finite"),
            (vec![3.25; 32], "constant"),
        ];
        for (x, name) in cases {
            match engine.push(&x) {
                PushOutcome::Quarantined(reason) => assert_eq!(reason.name(), name),
                other => panic!("expected quarantine {name}, got {other:?}"),
            }
        }
        // Quarantine must not touch clustering state: only the arrival
        // and quarantine counters may differ.
        let after = engine.to_json();
        let renumber = |s: &str| {
            s.replace(
                &format!("\"arrivals\":{},\"accepted\"", engine.stats().arrivals),
                "\"arrivals\":A,\"accepted\"",
            )
            .replace(
                &format!("\"quarantined\":{},\"fits\"", engine.stats().quarantined),
                "\"quarantined\":Q,\"fits\"",
            )
        };
        assert_eq!(
            renumber(&before)
                .replace(
                    "\"arrivals\":60,\"accepted\"",
                    "\"arrivals\":A,\"accepted\""
                )
                .replace("\"quarantined\":0,\"fits\"", "\"quarantined\":Q,\"fits\""),
            renumber(&after)
        );
        assert_eq!(engine.stats().quarantined, 4);
        assert_eq!(engine.stats().arrivals, 64);
        assert_eq!(engine.stats().accepted, 60);
    }

    #[test]
    fn checkpoint_round_trips_byte_identically() {
        for decay in [
            Decay::AppendOnly,
            Decay::Exponential { lambda: 0.97 },
            Decay::Windowed { window: 20 },
        ] {
            let mut engine =
                StreamKShape::new(small_config().with_decay(decay).with_seed(11)).unwrap();
            feed(&mut engine, 90, 5);
            let snap = engine.to_json();
            let mut resumed = StreamKShape::from_json(&snap).expect("parse back");
            assert_eq!(resumed.to_json(), snap, "{decay:?}: snapshot stable");
            // Continuing both engines produces identical outcomes and
            // identical next checkpoints.
            let a = feed(&mut engine, 40, 99);
            let b = feed(&mut resumed, 40, 99);
            assert_eq!(a, b, "{decay:?}: outcomes diverged after resume");
            assert_eq!(engine.to_json(), resumed.to_json(), "{decay:?}");
        }
    }

    #[test]
    fn from_json_rejects_corrupt_snapshots() {
        let mut engine = StreamKShape::new(small_config()).unwrap();
        feed(&mut engine, 40, 2);
        let snap = engine.to_json();
        assert!(StreamKShape::from_json(&snap).is_some());
        assert!(StreamKShape::from_json("").is_none());
        assert!(StreamKShape::from_json("{}").is_none());
        assert!(StreamKShape::from_json(&snap[..snap.len() / 2]).is_none());
        assert!(StreamKShape::from_json(&snap.replace("\"v\":1", "\"v\":2")).is_none());
        // Dimensional corruption: a centroid row of the wrong length.
        let broken = snap.replacen("[", "[[0.0],", 1);
        assert!(StreamKShape::from_json(&broken).is_none());
    }

    #[test]
    fn windowed_decay_bounds_member_memory() {
        let window = 10;
        let mut engine =
            StreamKShape::new(small_config().with_decay(Decay::Windowed { window })).unwrap();
        feed(&mut engine, 200, 13);
        for c in &engine.clusters {
            assert!(c.members.len() <= window);
            assert!(c.weight <= window as f64 + 0.5);
        }
        assert!(engine.recent.len() <= engine.config.window_capacity);
        assert!(engine.drift_ring.len() <= engine.config.drift.long_window);
    }

    #[test]
    fn exponential_decay_keeps_bounded_weight() {
        let lambda = 0.9;
        let mut engine =
            StreamKShape::new(small_config().with_decay(Decay::Exponential { lambda })).unwrap();
        feed(&mut engine, 300, 17);
        let bound = 1.0 / (1.0 - lambda) + 1.0;
        for c in &engine.clusters {
            assert!(c.weight <= bound, "weight {} > {}", c.weight, bound);
            assert!(c.members.is_empty(), "exponential keeps no member rows");
        }
    }

    #[test]
    fn drift_triggers_exactly_one_reseed_per_event() {
        let mut config = StreamConfig::new(2, 32)
            .with_warmup(16)
            .with_window_capacity(128)
            .with_refresh_every(8)
            .with_seed(23);
        config.drift = DriftConfig {
            short_window: 16,
            long_window: 64,
            threshold: 1.8,
            cooldown: 200,
        };
        let mut engine = StreamKShape::new(config).unwrap();
        let mut rng = StdRng::seed_from_u64(41);
        // Stable regime: two clean shape classes.
        for i in 0..200 {
            let x = if i % 2 == 0 {
                sine(32, 0.0, 0.05, &mut rng)
            } else {
                square(32, 0.05, &mut rng)
            };
            engine.push(&x);
        }
        assert_eq!(engine.stats().reseeds, 0, "no drift yet");
        // Regime change: both classes replaced by shifted shapes.
        let mut reseed_events = 0;
        for i in 0..200 {
            let x = if i % 2 == 0 {
                sine(32, std::f64::consts::FRAC_PI_2 * 1.3, 0.05, &mut rng)
            } else {
                sine(32, std::f64::consts::PI * 1.2, 0.05, &mut rng)
            };
            if let PushOutcome::Assigned(a) = engine.push(&x) {
                if a.reseeded {
                    reseed_events += 1;
                }
            }
        }
        assert_eq!(reseed_events, 1, "one drift event, one reseed");
        assert_eq!(engine.stats().reseeds, 1);
        for c in engine.centroids() {
            assert!(c.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn telemetry_reports_refreshes_and_quarantines() {
        let sink = tsobs::MemorySink::new();
        let mut engine = StreamKShape::new(small_config()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..60 {
            let x = if i % 10 == 9 {
                vec![f64::NAN; 32]
            } else if i % 2 == 0 {
                sine(32, 0.0, 0.1, &mut rng)
            } else {
                square(32, 0.1, &mut rng)
            };
            engine.push_with(&x, Obs::from_option(Some(&sink)));
        }
        assert!(sink.counter_total("stream.quarantine") > 0);
        assert!(sink.counter_total("stream.quarantine.non_finite") > 0);
        assert_eq!(sink.counter_total("stream.bootstrap"), 1);
        let events = sink.iteration_events();
        assert!(!events.is_empty(), "refresh emits IterationEvent");
        assert!(events.iter().all(|e| e.algorithm == "kshape.stream"));
    }

    #[test]
    fn refresh_budget_trip_keeps_previous_centroids() {
        let mut engine = StreamKShape::new(small_config()).unwrap();
        feed(&mut engine, 40, 7);
        let before = engine.centroids().to_vec();
        // A zero-cost budget trips immediately: refresh keeps centroids.
        engine.set_refresh_budget(Some(Budget::unlimited().with_cost_cap(1)));
        let sink = tsobs::MemorySink::new();
        let mut rng = StdRng::seed_from_u64(70);
        for i in 0..16 {
            let x = if i % 2 == 0 {
                sine(32, 0.0, 0.1, &mut rng)
            } else {
                square(32, 0.1, &mut rng)
            };
            engine.push_with(&x, Obs::from_option(Some(&sink)));
        }
        assert_eq!(
            engine.centroids(),
            &before[..],
            "budget stop froze centroids"
        );
        assert!(sink.counter_total("stream.refresh.budget_stop") > 0);
    }

    #[test]
    fn quarantine_shape_comes_from_config_not_first_arrival() {
        // The declared shape is the configuration's, permanently: a
        // malformed *first* arrival must not redefine what the stream
        // accepts, and `expected` always reports the configured shape.
        let mut engine = StreamKShape::new(small_config()).unwrap();
        for _ in 0..2 {
            match engine.push(&vec![1.0; 40]) {
                PushOutcome::Quarantined(QuarantineReason::WrongLength { expected, found }) => {
                    assert_eq!(
                        expected, 32,
                        "expected length is config.m, not a prior arrival"
                    );
                    assert_eq!(found, 40);
                }
                other => panic!("expected wrong_length, got {other:?}"),
            }
        }

        let mut mc = StreamKShape::new(small_config().with_channels(2)).unwrap();
        // First arrival carries 3 channels of the right per-channel
        // length; later pushes must still be judged against the
        // configured 2 channels (64 samples).
        match mc.push(&vec![1.0; 96]) {
            PushOutcome::Quarantined(QuarantineReason::WrongChannels { expected, found }) => {
                assert_eq!((expected, found), (2, 3));
            }
            other => panic!("expected wrong_channels, got {other:?}"),
        }
        match mc.push(&vec![1.0; 96]) {
            PushOutcome::Quarantined(QuarantineReason::WrongChannels { expected, .. }) => {
                assert_eq!(
                    expected, 2,
                    "declared channels survive a malformed first arrival"
                );
            }
            other => panic!("expected wrong_channels, got {other:?}"),
        }
        // Not a whole number of channels: reported as a sample-count
        // mismatch against the full configured frame.
        match mc.push(&vec![1.0; 70]) {
            PushOutcome::Quarantined(QuarantineReason::WrongLength { expected, found }) => {
                assert_eq!((expected, found), (64, 70));
            }
            other => panic!("expected wrong_length, got {other:?}"),
        }
        assert_eq!(mc.stats().quarantined, 3);
        assert_eq!(mc.stats().accepted, 0);
    }

    fn feed_mc(engine: &mut StreamKShape, n: usize, seed: u64) -> Vec<PushOutcome> {
        // Channel-major two-channel arrivals: channel 0 is the class
        // shape, channel 1 the same shape phase-shifted, so both
        // channels carry consistent class evidence.
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let mut x = if i % 2 == 0 {
                    sine(32, 0.0, 0.1, &mut rng)
                } else {
                    square(32, 0.1, &mut rng)
                };
                let ch1 = if i % 2 == 0 {
                    sine(32, 0.7, 0.1, &mut rng)
                } else {
                    square(32, 0.1, &mut rng)
                };
                x.extend_from_slice(&ch1);
                engine.push(&x)
            })
            .collect()
    }

    #[test]
    fn multichannel_stream_bootstraps_and_separates_classes() {
        let mut engine = StreamKShape::new(small_config().with_channels(2)).unwrap();
        let outcomes = feed_mc(&mut engine, 80, 11);
        assert!(outcomes
            .iter()
            .any(|o| matches!(o, PushOutcome::Bootstrapped { .. })));
        for c in engine.centroids() {
            assert_eq!(c.len(), 64, "centroids span both channels");
            assert!(c.iter().all(|v| v.is_finite()));
        }
        // Steady-state labels must separate the two classes.
        let mut labels = [Vec::new(), Vec::new()];
        let mut rng = StdRng::seed_from_u64(99);
        for i in 0..20 {
            let mut x = if i % 2 == 0 {
                sine(32, 0.0, 0.05, &mut rng)
            } else {
                square(32, 0.05, &mut rng)
            };
            let ch1 = if i % 2 == 0 {
                sine(32, 0.7, 0.05, &mut rng)
            } else {
                square(32, 0.05, &mut rng)
            };
            x.extend_from_slice(&ch1);
            match engine.push(&x) {
                PushOutcome::Assigned(a) => labels[i % 2].push(a.label),
                other => panic!("expected assignment, got {other:?}"),
            }
        }
        assert!(labels[0].windows(2).all(|w| w[0] == w[1]));
        assert!(labels[1].windows(2).all(|w| w[0] == w[1]));
        assert_ne!(
            labels[0][0], labels[1][0],
            "classes land in different clusters"
        );
    }

    #[test]
    fn multichannel_checkpoint_round_trips_and_univariate_format_is_unchanged() {
        // Univariate checkpoints never mention channels — the
        // pre-redesign byte format is preserved exactly.
        let mut uni = StreamKShape::new(small_config()).unwrap();
        feed(&mut uni, 40, 3);
        assert!(!uni.to_json().contains("\"channels\""));

        let mut engine = StreamKShape::new(small_config().with_channels(2)).unwrap();
        feed_mc(&mut engine, 50, 11);
        let snap = engine.to_json();
        assert!(snap.contains("\"channels\":2"));
        let mut resumed = StreamKShape::from_json(&snap).expect("well-formed checkpoint");
        assert_eq!(resumed.config().channels, 2);
        let a = feed_mc(&mut engine, 10, 55);
        let b = feed_mc(&mut resumed, 10, 55);
        assert_eq!(a, b, "resumed engine replays identically");
        assert_eq!(engine.to_json(), resumed.to_json());
    }
}
