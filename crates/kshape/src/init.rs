//! Cluster initialization strategies for k-Shape.
//!
//! The paper initializes by assigning every series to a random cluster
//! (Algorithm 3's `IDX` "initialized randomly"). As an extension (flagged
//! in DESIGN.md and exercised by the ablation bench), a k-means++-style
//! seeding over SBD is also provided: it picks spread-out series as initial
//! centroids and assigns members to the nearest one, which typically
//! reduces the restarts needed.

use tsrand::Rng;

use crate::sbd::SbdPlan;

/// Initialization strategy for [`crate::algorithm::KShape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitStrategy {
    /// Uniform random assignment of series to clusters (the paper's
    /// default).
    #[default]
    Random,
    /// k-means++-style seeding under SBD (extension).
    PlusPlus,
}

/// Randomly assigns `n` series to `k` clusters, guaranteeing every cluster
/// receives at least one member when `n >= k`.
///
/// # Panics
///
/// Panics if `k == 0`.
#[must_use]
pub fn random_assignment<R: Rng>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    assert!(k > 0, "k must be positive");
    let mut labels: Vec<usize> = (0..n).map(|_| rng.gen_range(0..k)).collect();
    if n >= k {
        // Patch any empty cluster by stealing a random member.
        loop {
            let mut counts = vec![0usize; k];
            for &l in &labels {
                counts[l] += 1;
            }
            let Some(empty) = counts.iter().position(|&c| c == 0) else {
                break;
            };
            // Steal from a cluster with at least two members.
            let donor_positions: Vec<usize> = labels
                .iter()
                .enumerate()
                .filter(|&(_, &l)| counts[l] > 1)
                .map(|(i, _)| i)
                .collect();
            let victim = donor_positions[rng.gen_range(0..donor_positions.len())];
            labels[victim] = empty;
        }
    }
    labels
}

/// k-means++-style assignment under SBD: seeds `k` spread-out centroids,
/// then assigns every series to the nearest seed.
///
/// # Panics
///
/// Panics if `k == 0` or `series` is empty or ragged.
#[must_use]
pub fn plus_plus_assignment<R: Rng>(series: &[Vec<f64>], k: usize, rng: &mut R) -> Vec<usize> {
    assert!(k > 0, "k must be positive");
    assert!(!series.is_empty(), "need at least one series");
    let n = series.len();
    let m = series[0].len();
    let plan = SbdPlan::new(m);

    let mut seeds: Vec<usize> = Vec::with_capacity(k);
    seeds.push(rng.gen_range(0..n));
    // min squared SBD to the chosen seeds so far.
    let mut min_d2 = vec![f64::INFINITY; n];
    while seeds.len() < k {
        let last = *seeds.last().expect("non-empty");
        let prepared = plan.prepare(&series[last]);
        for (i, s) in series.iter().enumerate() {
            let d = plan.sbd_prepared(&prepared, s).dist;
            min_d2[i] = min_d2[i].min(d * d);
        }
        // Sample proportionally to min_d2 (the ++ rule); when all
        // remaining distances are zero (duplicate-heavy data) fall back
        // to a uniform pick.
        let next = rng
            .choose_weighted_index(&min_d2)
            .unwrap_or_else(|| rng.gen_range(0..n));
        seeds.push(next);
    }

    // Assign to the nearest seed.
    let prepared: Vec<_> = seeds.iter().map(|&s| plan.prepare(&series[s])).collect();
    series
        .iter()
        .map(|s| {
            let mut best = f64::INFINITY;
            let mut label = 0;
            for (j, p) in prepared.iter().enumerate() {
                let d = plan.sbd_prepared(p, s).dist;
                if d < best {
                    best = d;
                    label = j;
                }
            }
            label
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::{plus_plus_assignment, random_assignment, InitStrategy};
    use tsrand::StdRng;

    #[test]
    fn random_assignment_covers_all_clusters() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let labels = random_assignment(10, 4, &mut rng);
            assert_eq!(labels.len(), 10);
            for j in 0..4 {
                assert!(labels.contains(&j), "cluster {j} empty: {labels:?}");
            }
        }
    }

    #[test]
    fn random_assignment_fewer_series_than_clusters() {
        let mut rng = StdRng::seed_from_u64(2);
        let labels = random_assignment(2, 5, &mut rng);
        assert_eq!(labels.len(), 2);
        assert!(labels.iter().all(|&l| l < 5));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn random_assignment_rejects_zero_k() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = random_assignment(5, 0, &mut rng);
    }

    #[test]
    fn plus_plus_separates_obvious_groups() {
        // Two clearly distinct shapes.
        let up: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let down: Vec<f64> = (0..16).map(|i| (15 - i) as f64).collect();
        let series = vec![up.clone(), up.clone(), down.clone(), down.clone()];
        let mut rng = StdRng::seed_from_u64(3);
        let labels = plus_plus_assignment(&series, 2, &mut rng);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn plus_plus_handles_identical_series() {
        let s = vec![vec![1.0, 2.0, 3.0]; 5];
        let mut rng = StdRng::seed_from_u64(4);
        let labels = plus_plus_assignment(&s, 2, &mut rng);
        assert_eq!(labels.len(), 5);
        assert!(labels.iter().all(|&l| l < 2));
    }

    #[test]
    fn default_strategy_is_random() {
        assert_eq!(InitStrategy::default(), InitStrategy::Random);
    }
}
