//! Cluster initialization strategies for k-Shape.
//!
//! The paper initializes by assigning every series to a random cluster
//! (Algorithm 3's `IDX` "initialized randomly"). As an extension (flagged
//! in DESIGN.md and exercised by the ablation bench), a k-means++-style
//! seeding over SBD is also provided: it picks spread-out series as initial
//! centroids and assigns members to the nearest one, which typically
//! reduces the restarts needed.

use tsrand::Rng;

use crate::spectra::SpectraEngine;

/// Initialization strategy for [`crate::algorithm::KShape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitStrategy {
    /// Uniform random assignment of series to clusters (the paper's
    /// default).
    #[default]
    Random,
    /// k-means++-style seeding under SBD (extension).
    PlusPlus,
}

/// Randomly assigns `n` series to `k` clusters, guaranteeing every cluster
/// receives at least one member when `n >= k`.
///
/// # Panics
///
/// Panics if `k == 0`.
#[must_use]
pub fn random_assignment<R: Rng>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    assert!(k > 0, "k must be positive");
    let mut labels: Vec<usize> = (0..n).map(|_| rng.gen_range(0..k)).collect();
    if n >= k {
        // Patch any empty cluster by stealing a random member.
        loop {
            let mut counts = vec![0usize; k];
            for &l in &labels {
                counts[l] += 1;
            }
            let Some(empty) = counts.iter().position(|&c| c == 0) else {
                break;
            };
            // Steal from a cluster with at least two members.
            let donor_positions: Vec<usize> = labels
                .iter()
                .enumerate()
                .filter(|&(_, &l)| counts[l] > 1)
                .map(|(i, _)| i)
                .collect();
            let victim = donor_positions[rng.gen_range(0..donor_positions.len())];
            labels[victim] = empty;
        }
    }
    labels
}

/// k-means++-style assignment under SBD: seeds `k` spread-out centroids,
/// then assigns every series to the nearest seed.
///
/// # Panics
///
/// Panics if `k == 0` or `series` is empty or ragged.
#[must_use]
pub fn plus_plus_assignment<R: Rng>(series: &[Vec<f64>], k: usize, rng: &mut R) -> Vec<usize> {
    assert!(k > 0, "k must be positive");
    assert!(!series.is_empty(), "need at least one series");
    let engine = SpectraEngine::from_validated(series, series[0].len(), 1);
    plus_plus_assignment_spectra(&engine, k, rng)
}

/// [`plus_plus_assignment`] over an existing spectrum cache: every seeding
/// sweep is a batched kernel pass, with no per-pair FFTs. Distances come
/// from the same kernel as the pairwise path, so the sampled seeds — and
/// the RNG stream — are bit-identical to [`plus_plus_assignment`].
pub(crate) fn plus_plus_assignment_spectra<R: Rng>(
    engine: &SpectraEngine<'_>,
    k: usize,
    rng: &mut R,
) -> Vec<usize> {
    assert!(k > 0, "k must be positive");
    let n = engine.len();
    assert!(n > 0, "need at least one series");

    let mut seeds: Vec<usize> = Vec::with_capacity(k);
    seeds.push(rng.gen_range(0..n));
    // min squared SBD to the chosen seeds so far.
    let mut min_d2 = vec![f64::INFINITY; n];
    let mut d = vec![0.0f64; n];
    while seeds.len() < k {
        let last = *seeds.last().expect("non-empty");
        engine.distances_to(engine.spectrum(last), &mut d);
        for (acc, &di) in min_d2.iter_mut().zip(d.iter()) {
            *acc = acc.min(di * di);
        }
        // Sample proportionally to min_d2 (the ++ rule); when all
        // remaining distances are zero (duplicate-heavy data) fall back
        // to a uniform pick.
        let next = rng
            .choose_weighted_index(&min_d2)
            .unwrap_or_else(|| rng.gen_range(0..n));
        seeds.push(next);
    }

    // Assign to the nearest seed.
    let mut labels = vec![0usize; n];
    let mut best = vec![f64::INFINITY; n];
    for (j, &seed) in seeds.iter().enumerate() {
        engine.distances_to(engine.spectrum(seed), &mut d);
        for i in 0..n {
            if d[i] < best[i] {
                best[i] = d[i];
                labels[i] = j;
            }
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::{plus_plus_assignment, random_assignment, InitStrategy};
    use tsrand::StdRng;

    #[test]
    fn random_assignment_covers_all_clusters() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let labels = random_assignment(10, 4, &mut rng);
            assert_eq!(labels.len(), 10);
            for j in 0..4 {
                assert!(labels.contains(&j), "cluster {j} empty: {labels:?}");
            }
        }
    }

    #[test]
    fn random_assignment_fewer_series_than_clusters() {
        let mut rng = StdRng::seed_from_u64(2);
        let labels = random_assignment(2, 5, &mut rng);
        assert_eq!(labels.len(), 2);
        assert!(labels.iter().all(|&l| l < 5));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn random_assignment_rejects_zero_k() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = random_assignment(5, 0, &mut rng);
    }

    #[test]
    fn plus_plus_separates_obvious_groups() {
        // Two clearly distinct shapes.
        let up: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let down: Vec<f64> = (0..16).map(|i| (15 - i) as f64).collect();
        let series = vec![up.clone(), up.clone(), down.clone(), down.clone()];
        let mut rng = StdRng::seed_from_u64(3);
        let labels = plus_plus_assignment(&series, 2, &mut rng);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn plus_plus_handles_identical_series() {
        let s = vec![vec![1.0, 2.0, 3.0]; 5];
        let mut rng = StdRng::seed_from_u64(4);
        let labels = plus_plus_assignment(&s, 2, &mut rng);
        assert_eq!(labels.len(), 5);
        assert!(labels.iter().all(|&l| l < 2));
    }

    #[test]
    fn default_strategy_is_random() {
        assert_eq!(InitStrategy::default(), InitStrategy::Random);
    }
}
