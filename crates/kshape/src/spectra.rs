//! The batched frequency-domain engine behind the k-Shape hot path.
//!
//! Every SBD evaluation factors into three parts: two forward FFTs (one
//! per series) and one conjugate-multiply + inverse FFT + peak scan per
//! *pair*. The pairwise [`crate::sbd::sbd`] entry point pays all three on
//! every call; a k-Shape fit, however, compares the same `n` series
//! against the same `k` centroids over and over. This module restructures
//! that work around the [`SbdPlan`] spectrum cache:
//!
//! * each input series is transformed **once per fit** ([`SpectraEngine::new`]),
//! * each centroid is transformed **once per iteration**
//!   ([`SpectraEngine::prepare_centroids`]),
//! * assignment is a sweep of [`SbdPlan::sbd_spectra`] kernels — one
//!   conjugate multiply and one half-size inverse real FFT per (series,
//!   centroid) pair — over the cached spectra.
//!
//! # Determinism contract
//!
//! All batched sweeps are embarrassingly parallel over *disjoint output
//! slots*: series `i`'s label/distance/shift (assignment) or row `i`
//! (matrix build) is computed from immutable inputs by exactly one
//! worker, with a per-worker scratch buffer and no shared accumulator.
//! Work is distributed by fixed contiguous chunking (assignment) or fixed
//! round-robin striping (matrix rows), and reductions (changed-count
//! sums, stop-reason merging, row mirroring) happen on the calling thread
//! in index order after the join. Results are therefore **bit-identical
//! for every thread count**, including the serial path. The only
//! thread-count-visible behaviour is execution-control granularity: with
//! more than one worker a budget trip can leave a different partial
//! prefix computed, exactly as in `tscluster::matrix`.

use tsdata::store::SeriesView;
use tserror::{ensure_finite, validate_series_set, StopReason, TsError, TsResult};
use tsrun::RunControl;

use crate::sbd::{PreparedSeries, SbdPlan, SbdScratch};

/// Below this many independent work items the engine stays serial even
/// when more threads were requested: spawn cost would dominate.
const MIN_PARALLEL_ITEMS: usize = 32;

/// Resolves a requested worker count to an effective one.
///
/// `0` means *auto*: the `KSHAPE_THREADS` environment variable if set to
/// a positive integer, otherwise [`std::thread::available_parallelism`].
/// Any positive request is taken literally.
#[must_use]
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var("KSHAPE_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Per-fit spectrum cache plus the batched sweeps that consume it.
///
/// Borrowing the series keeps the engine allocation-light: the only owned
/// state is one packed half-spectrum ([`PreparedSeries`]) per series and
/// the shared [`SbdPlan`].
///
/// The engine is generic over its row source: any
/// [`SeriesView`] — the legacy `[Vec<f64>]` slice (the default type
/// parameter, so existing `SpectraEngine<'_>` signatures are unchanged
/// and bit-identical), or a contiguous
/// [`SeriesStore`](tsdata::store::SeriesStore) via
/// [`SpectraEngine::from_view`]. Rows are only read during construction;
/// every sweep afterwards runs on the cached spectra.
pub struct SpectraEngine<'a, V: SeriesView + ?Sized = [Vec<f64>]> {
    plan: SbdPlan,
    view: &'a V,
    n: usize,
    /// Collection-wide channel count; spectra are stored channel-major
    /// per series (`spectra[i·channels + ch]`).
    channels: usize,
    spectra: Vec<PreparedSeries>,
    threads: usize,
}

impl<'a, V: SeriesView + ?Sized> std::fmt::Debug for SpectraEngine<'a, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpectraEngine")
            .field("n", &self.n)
            .field("m", &self.plan.series_len())
            .field("channels", &self.channels)
            .field("threads", &self.threads)
            .finish()
    }
}

impl<'a> SpectraEngine<'a> {
    /// Validates `series` and builds the cache with `threads` workers
    /// (`0` = auto, see [`resolve_threads`]).
    ///
    /// # Errors
    ///
    /// [`tserror::TsError::EmptyInput`], [`tserror::TsError::LengthMismatch`],
    /// or [`tserror::TsError::NonFinite`] for malformed `series`.
    pub fn new(series: &'a [Vec<f64>], threads: usize) -> TsResult<Self> {
        let m = validate_series_set(series)?;
        Ok(Self::from_validated(series, m, resolve_threads(threads)))
    }

    /// Builds the cache for already-validated series of length `m`,
    /// transforming every series exactly once.
    pub(crate) fn from_validated(series: &'a [Vec<f64>], m: usize, threads: usize) -> Self {
        let plan = SbdPlan::new(m);
        let n = series.len();
        let workers = worker_count(threads, n);
        let mut spectra = Vec::with_capacity(n);
        if workers <= 1 {
            let mut scratch = Vec::new();
            spectra.extend(series.iter().map(|s| plan.prepare_with(s, &mut scratch)));
        } else {
            // Fixed contiguous chunks, joined back in chunk order: the
            // cache layout is independent of the worker count.
            let chunk = n.div_ceil(workers);
            let plan_ref = &plan;
            std::thread::scope(|scope| {
                let handles: Vec<_> = series
                    .chunks(chunk)
                    .map(|part| {
                        scope.spawn(move || {
                            let mut scratch = Vec::new();
                            part.iter()
                                .map(|s| plan_ref.prepare_with(s, &mut scratch))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for h in handles {
                    spectra.extend(h.join().expect("spectrum worker panicked"));
                }
            });
        }
        SpectraEngine {
            plan,
            view: series,
            n,
            channels: 1,
            spectra,
            threads,
        }
    }
}

impl<'a, V: SeriesView + ?Sized> SpectraEngine<'a, V> {
    /// Builds the cache over any [`SeriesView`] — the row-borrowing
    /// seam that lets contiguous and spilled [`SeriesStore`] tiers feed
    /// the same batched sweeps as nested `Vec<Vec<f64>>`.
    ///
    /// Rows are fetched through the view's borrow-or-copy contract
    /// (resident `f64` stores hand out direct slices; `f32`/spilled rows
    /// stage through a per-worker scratch) and validated for finiteness
    /// as they are transformed. Parallel preparation uses the same fixed
    /// contiguous chunking as the slice path, so spectra are
    /// bit-identical for every thread count and — for views that expose
    /// the same `f64` rows — bit-identical to [`SpectraEngine::new`].
    ///
    /// Multichannel views cache one half-spectrum **per channel** per
    /// series (channel-major, `n · channels` entries); every sweep then
    /// scores pairs with the summed per-channel NCC kernel
    /// ([`SbdPlan::sbd_spectra_multi`]), which dispatches to the plain
    /// univariate kernel when `channels = 1` — so single-channel views
    /// remain bit-identical to the pre-shape-redesign engine.
    ///
    /// # Errors
    ///
    /// [`tserror::TsError::EmptyInput`] for an empty view,
    /// [`tserror::TsError::NonFinite`] for a bad row,
    /// [`tserror::TsError::CorruptData`] from a spilled tier, or
    /// [`tserror::TsError::NumericalFailure`] for a ragged view (the
    /// cached-spectrum sweep needs one fixed length; ragged collections
    /// route through `kshape::fit_store`'s padded-plan path).
    ///
    /// [`SeriesStore`]: tsdata::store::SeriesStore
    pub fn from_view(view: &'a V, threads: usize) -> TsResult<Self> {
        let n = view.n_series();
        let m = view.series_len();
        let channels = view.channels();
        if n == 0 || m == 0 {
            return Err(TsError::EmptyInput);
        }
        if view.is_ragged() {
            return Err(TsError::NumericalFailure {
                context: "SpectraEngine requires fixed-length rows; \
                          ragged views route through fit_store"
                    .into(),
            });
        }
        let threads = resolve_threads(threads);
        let plan = SbdPlan::new(m);
        let workers = worker_count(threads, n);
        let prep_range = |lo: usize, hi: usize| -> TsResult<Vec<PreparedSeries>> {
            let mut rows = Vec::new();
            let mut scratch = Vec::new();
            let mut out = Vec::with_capacity((hi - lo) * channels);
            for i in lo..hi {
                let row = view.try_row(i, &mut rows)?;
                ensure_finite(row, i)?;
                for ch in row.chunks_exact(m) {
                    out.push(plan.prepare_with(ch, &mut scratch));
                }
            }
            Ok(out)
        };
        let mut spectra = Vec::with_capacity(n * channels);
        if workers <= 1 {
            spectra = prep_range(0, n)?;
        } else {
            let chunk = n.div_ceil(workers);
            let mut parts: Vec<TsResult<Vec<PreparedSeries>>> = Vec::with_capacity(workers);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..n)
                    .step_by(chunk)
                    .map(|lo| {
                        let prep = &prep_range;
                        scope.spawn(move || prep(lo, (lo + chunk).min(n)))
                    })
                    .collect();
                for h in handles {
                    parts.push(h.join().expect("spectrum worker panicked"));
                }
            });
            // First error in chunk order wins, like serial validation.
            for part in parts {
                spectra.extend(part?);
            }
        }
        Ok(SpectraEngine {
            plan,
            view,
            n,
            channels,
            spectra,
            threads,
        })
    }

    /// The underlying row source.
    #[must_use]
    pub fn view(&self) -> &'a V {
        self.view
    }

    /// Number of cached series.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no series are cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The shared SBD plan (series length, padded FFT size).
    #[must_use]
    pub fn plan(&self) -> &SbdPlan {
        &self.plan
    }

    /// The effective worker count this engine was built with.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Worker chunks an `n`-item assignment sweep is split into (1 on the
    /// serial path) — telemetry material for `kshape.parallel.chunks`.
    #[must_use]
    pub fn chunk_count(&self) -> usize {
        worker_count(self.threads, self.n)
    }

    /// Collection-wide channel count the engine was built with.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The cached half-spectrum of series `i` (its first channel when
    /// the view is multichannel — see [`Self::spectra_of`]).
    #[must_use]
    pub fn spectrum(&self, i: usize) -> &PreparedSeries {
        &self.spectra[i * self.channels]
    }

    /// The per-channel cached half-spectra of series `i`
    /// (`channels` entries, channel-major).
    #[must_use]
    pub fn spectra_of(&self, i: usize) -> &[PreparedSeries] {
        &self.spectra[i * self.channels..(i + 1) * self.channels]
    }

    /// Transforms one centroid set — `k · channels` forward rFFTs, once
    /// per iteration. Each centroid row holds `channels · m` samples,
    /// channel-major; the result is the matching channel-major spectrum
    /// layout (`k · channels` entries). `k` is small, so this stays
    /// serial.
    ///
    /// # Panics
    ///
    /// Panics if a centroid's length is not `channels · m`.
    #[must_use]
    pub fn prepare_centroids(&self, centroids: &[Vec<f64>]) -> Vec<PreparedSeries> {
        let m = self.plan.series_len();
        let mut scratch = Vec::new();
        let mut out = Vec::with_capacity(centroids.len() * self.channels);
        for c in centroids {
            assert_eq!(
                c.len(),
                self.channels * m,
                "centroid length must be channels·m"
            );
            for ch in c.chunks_exact(m) {
                out.push(self.plan.prepare_with(ch, &mut scratch));
            }
        }
        out
    }

    /// Nearest centroid of series `i`: `(distance, centroid index,
    /// alignment shift)`, first minimum winning ties. `cents` holds
    /// `k · channels` prepared spectra, channel-major per centroid.
    fn nearest(
        &self,
        cents: &[PreparedSeries],
        i: usize,
        scratch: &mut SbdScratch,
    ) -> (f64, usize, isize) {
        let c = self.channels;
        let sp = self.spectra_of(i);
        let mut best = f64::INFINITY;
        let mut best_j = 0usize;
        let mut best_shift = 0isize;
        for (j, cent) in cents.chunks_exact(c).enumerate() {
            // Argument order matters: x = centroid, y = series, so the
            // shift aligns the series *toward* the centroid — exactly
            // what the next refinement's shape extraction consumes.
            let (d, s) = self.plan.sbd_spectra_multi(cent, sp, scratch);
            if d < best {
                best = d;
                best_j = j;
                best_shift = s;
            }
        }
        (best, best_j, best_shift)
    }

    /// Batched assignment sweep: for every series, the SBD-nearest
    /// centroid. Writes each series' label, distance, and alignment shift
    /// to its slot and returns how many labels changed.
    ///
    /// Charges `ctrl` one `k·m` unit per series, like the pairwise loop
    /// it replaces.
    ///
    /// # Errors
    ///
    /// The [`StopReason`] when the control trips mid-sweep (cancellation
    /// wins over other reasons when workers trip concurrently); the slots
    /// already written stay written.
    pub(crate) fn assign(
        &self,
        cents: &[PreparedSeries],
        labels: &mut [usize],
        dists: &mut [f64],
        shifts: &mut [isize],
        ctrl: &RunControl,
    ) -> Result<usize, StopReason> {
        let n = self.n;
        let pair_cost = (cents.len() * self.plan.series_len()) as u64;
        let workers = worker_count(self.threads, n);
        if workers <= 1 {
            let mut scratch = SbdScratch::default();
            let mut changed = 0usize;
            for i in 0..n {
                let (best, best_j, best_shift) = self.nearest(cents, i, &mut scratch);
                dists[i] = best;
                shifts[i] = best_shift;
                if best_j != labels[i] {
                    labels[i] = best_j;
                    changed += 1;
                }
                ctrl.charge(pair_cost)?;
            }
            return Ok(changed);
        }
        let chunk = n.div_ceil(workers);
        let mut changed_total = 0usize;
        let mut tripped: Vec<Option<StopReason>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            let parts = labels
                .chunks_mut(chunk)
                .zip(dists.chunks_mut(chunk))
                .zip(shifts.chunks_mut(chunk));
            for (t, ((lc, dc), sc)) in parts.enumerate() {
                handles.push(scope.spawn(move || {
                    let mut scratch = SbdScratch::default();
                    let mut changed = 0usize;
                    for (o, ((lab, d), sh)) in lc
                        .iter_mut()
                        .zip(dc.iter_mut())
                        .zip(sc.iter_mut())
                        .enumerate()
                    {
                        let (best, best_j, best_shift) =
                            self.nearest(cents, t * chunk + o, &mut scratch);
                        *d = best;
                        *sh = best_shift;
                        if best_j != *lab {
                            *lab = best_j;
                            changed += 1;
                        }
                        if let Err(reason) = ctrl.charge(pair_cost) {
                            return (changed, Some(reason));
                        }
                    }
                    (changed, None)
                }));
            }
            for h in handles {
                let (c, r) = h.join().expect("assignment worker panicked");
                changed_total += c;
                tripped.push(r);
            }
        });
        match merge_reasons(&tripped) {
            Some(reason) => Err(reason),
            None => Ok(changed_total),
        }
    }

    /// Distances of every series to one prepared reference, written to
    /// `out` — the k-shape++ seeding sweep over cached spectra.
    /// Univariate only (seeding runs on the slice path, which always has
    /// `channels = 1`).
    pub(crate) fn distances_to(&self, reference: &PreparedSeries, out: &mut [f64]) {
        debug_assert_eq!(self.channels, 1, "seeding sweep is univariate");
        let n = self.n;
        let workers = worker_count(self.threads, n);
        if workers <= 1 {
            let mut scratch = SbdScratch::default();
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = self
                    .plan
                    .sbd_spectra(reference, &self.spectra[i], &mut scratch)
                    .0;
            }
            return;
        }
        let chunk = n.div_ceil(workers);
        std::thread::scope(|scope| {
            for (t, part) in out.chunks_mut(chunk).enumerate() {
                scope.spawn(move || {
                    let mut scratch = SbdScratch::default();
                    for (o, slot) in part.iter_mut().enumerate() {
                        *slot = self
                            .plan
                            .sbd_spectra(reference, &self.spectra[t * chunk + o], &mut scratch)
                            .0;
                    }
                });
            }
        });
    }

    /// Full pairwise SBD matrix (row-major `n × n`, symmetric, zero
    /// diagonal) over the cached spectra: each of the `n(n−1)/2` pairs
    /// costs one batched kernel instead of a fresh pair of FFTs.
    ///
    /// Rows are round-robin striped over workers (early rows hold more
    /// pairs); the lower triangle is mirrored on the calling thread, so
    /// the matrix is bit-identical for every thread count. Charges `ctrl`
    /// one `m` unit per pair, matching the [`tsdist::Distance::cost_hint`]
    /// of the pairwise SBD it replaces.
    ///
    /// # Errors
    ///
    /// [`tserror::TsError::Stopped`] when the control trips, with
    /// `iterations` = pairs completed (empty labels: a partial matrix has
    /// no labeling).
    pub fn try_matrix_with_control(&self, ctrl: &RunControl) -> TsResult<Vec<f64>> {
        let n = self.n;
        let pair_cost = self.plan.series_len() as u64;
        let mut data = vec![0.0f64; n * n];
        let workers = worker_count(self.threads, n);
        let mut done = 0usize;
        let mut tripped: Vec<Option<StopReason>> = Vec::with_capacity(workers.max(1));
        if workers <= 1 {
            let mut scratch = SbdScratch::default();
            for i in 0..n {
                for j in i + 1..n {
                    if let Err(reason) = ctrl.charge(pair_cost) {
                        return Err(RunControl::stop_error(Vec::new(), done, reason));
                    }
                    data[i * n + j] = self
                        .plan
                        .sbd_spectra_multi(self.spectra_of(i), self.spectra_of(j), &mut scratch)
                        .0;
                    done += 1;
                }
            }
        } else {
            let rows: Vec<&mut [f64]> = data.chunks_mut(n).collect();
            let counted = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                for stripe in stripes(rows, workers) {
                    let counted = &counted;
                    handles.push(scope.spawn(move || -> Option<StopReason> {
                        let mut scratch = SbdScratch::default();
                        for (i, row) in stripe {
                            for (j, slot) in row.iter_mut().enumerate().skip(i + 1) {
                                if let Err(reason) = ctrl.charge(pair_cost) {
                                    return Some(reason);
                                }
                                *slot = self
                                    .plan
                                    .sbd_spectra_multi(
                                        self.spectra_of(i),
                                        self.spectra_of(j),
                                        &mut scratch,
                                    )
                                    .0;
                                counted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                        }
                        None
                    }));
                }
                for h in handles {
                    tripped.push(h.join().expect("matrix worker panicked"));
                }
            });
            done = counted.load(std::sync::atomic::Ordering::Relaxed);
        }
        if let Some(reason) = merge_reasons(&tripped) {
            return Err(RunControl::stop_error(Vec::new(), done, reason));
        }
        for i in 0..n {
            for j in i + 1..n {
                data[j * n + i] = data[i * n + j];
            }
        }
        Ok(data)
    }

    /// [`Self::try_matrix_with_control`] without execution control.
    #[must_use]
    pub fn matrix(&self) -> Vec<f64> {
        self.try_matrix_with_control(&RunControl::unlimited())
            .expect("unlimited control cannot trip")
    }
}

/// Convenience wrapper for callers without a standing engine (the
/// `tscluster` SBD-medoid ladder rung): builds the spectrum cache once
/// and returns the pairwise SBD matrix as a row-major `n × n` buffer.
///
/// # Errors
///
/// Input-validation errors from [`SpectraEngine::new`] plus
/// [`tserror::TsError::Stopped`] when `ctrl` trips.
pub fn try_sbd_matrix_with_control(
    series: &[Vec<f64>],
    threads: usize,
    ctrl: &RunControl,
) -> TsResult<Vec<f64>> {
    SpectraEngine::new(series, threads)?.try_matrix_with_control(ctrl)
}

/// Effective worker count for `items` independent slots.
fn worker_count(threads: usize, items: usize) -> usize {
    if threads <= 1 || items < MIN_PARALLEL_ITEMS {
        1
    } else {
        threads.min(items)
    }
}

/// First tripped reason in worker order, with cancellation dominating —
/// the same merge rule as the `tscluster` parallel matrix build.
fn merge_reasons(tripped: &[Option<StopReason>]) -> Option<StopReason> {
    tripped
        .iter()
        .flatten()
        .copied()
        .fold(None, |acc, r| match (acc, r) {
            (_, StopReason::Cancelled) => Some(StopReason::Cancelled),
            (None, r) => Some(r),
            (acc, _) => acc,
        })
}

/// Distributes `(index, row)` pairs round-robin over `k` stripes.
fn stripes<T>(rows: Vec<T>, k: usize) -> Vec<Vec<(usize, T)>> {
    let mut out: Vec<Vec<(usize, T)>> = (0..k).map(|_| Vec::new()).collect();
    for (i, r) in rows.into_iter().enumerate() {
        out[i % k].push((i, r));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::{resolve_threads, SpectraEngine};
    use crate::sbd::sbd;
    use tsrun::RunControl;

    fn toy_series(n: usize, m: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..m)
                    .map(|t| ((i * 7 + t) as f64 * 0.37).sin() + (i as f64) * 0.01)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn engine_matrix_matches_pairwise_sbd() {
        let series = toy_series(12, 24);
        let engine = SpectraEngine::new(&series, 1).expect("clean series");
        let mat = engine.matrix();
        for i in 0..12 {
            for j in 0..12 {
                let expect = if i == j {
                    0.0
                } else {
                    sbd(&series[i], &series[j]).dist
                };
                assert!(
                    (mat[i * 12 + j] - expect).abs() < 1e-12,
                    "({i},{j}): {} vs {expect}",
                    mat[i * 12 + j]
                );
            }
        }
    }

    #[test]
    fn matrix_is_bit_identical_across_thread_counts() {
        let series = toy_series(40, 32);
        let serial = SpectraEngine::new(&series, 1).unwrap().matrix();
        for threads in [2, 4, 7] {
            let par = SpectraEngine::new(&series, threads).unwrap().matrix();
            let a: Vec<u64> = serial.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u64> = par.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "threads={threads}");
        }
    }

    /// Snapshot of one assignment sweep: labels, distance bits, shifts,
    /// and the changed count.
    type AssignSnapshot = (Vec<usize>, Vec<u64>, Vec<isize>, usize);

    #[test]
    fn assignment_is_bit_identical_across_thread_counts() {
        let series = toy_series(50, 32);
        let centroids = vec![series[0].clone(), series[25].clone(), series[49].clone()];
        let ctrl = RunControl::unlimited();
        let mut reference: Option<AssignSnapshot> = None;
        for threads in [1usize, 2, 4, 8] {
            let engine = SpectraEngine::new(&series, threads).unwrap();
            let cents = engine.prepare_centroids(&centroids);
            let mut labels = vec![0usize; 50];
            let mut dists = vec![0.0f64; 50];
            let mut shifts = vec![0isize; 50];
            let changed = engine
                .assign(&cents, &mut labels, &mut dists, &mut shifts, &ctrl)
                .expect("unlimited control");
            let bits: Vec<u64> = dists.iter().map(|v| v.to_bits()).collect();
            match &reference {
                None => reference = Some((labels, bits, shifts, changed)),
                Some((l, d, s, c)) => {
                    assert_eq!(&labels, l, "threads={threads}");
                    assert_eq!(&bits, d, "threads={threads}");
                    assert_eq!(&shifts, s, "threads={threads}");
                    assert_eq!(&changed, c, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn assignment_matches_pairwise_nearest() {
        let series = toy_series(20, 24);
        let centroids = vec![series[3].clone(), series[17].clone()];
        let engine = SpectraEngine::new(&series, 1).unwrap();
        let cents = engine.prepare_centroids(&centroids);
        let mut labels = vec![0usize; 20];
        let mut dists = vec![0.0f64; 20];
        let mut shifts = vec![0isize; 20];
        engine
            .assign(
                &cents,
                &mut labels,
                &mut dists,
                &mut shifts,
                &RunControl::unlimited(),
            )
            .unwrap();
        for i in 0..20 {
            let d0 = sbd(&centroids[0], &series[i]);
            let d1 = sbd(&centroids[1], &series[i]);
            let (expect_l, expect_d, expect_s) = if d1.dist < d0.dist {
                (1, d1.dist, d1.shift)
            } else {
                (0, d0.dist, d0.shift)
            };
            assert_eq!(labels[i], expect_l, "series {i}");
            assert!((dists[i] - expect_d).abs() < 1e-12, "series {i}");
            assert_eq!(shifts[i], expect_s, "series {i}");
        }
    }

    #[test]
    fn matrix_build_respects_cost_cap() {
        use tsrun::Budget;
        let series = toy_series(20, 16);
        let engine = SpectraEngine::new(&series, 1).unwrap();
        // Enough for a handful of pairs only.
        let ctrl = RunControl::from_parts(Some(Budget::unlimited().with_cost_cap(5 * 16)), None);
        let err = engine
            .try_matrix_with_control(&ctrl)
            .expect_err("cap must trip");
        assert!(matches!(err, tserror::TsError::Stopped { .. }), "{err:?}");
    }

    #[test]
    fn engine_validates_input() {
        use tserror::TsError;
        assert!(matches!(
            SpectraEngine::new(&[], 1),
            Err(TsError::EmptyInput)
        ));
        let ragged = vec![vec![1.0, 2.0], vec![1.0]];
        assert!(matches!(
            SpectraEngine::new(&ragged, 1),
            Err(TsError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn resolve_threads_honours_explicit_request() {
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(1), 1);
        // 0 = auto: positive, whatever the host reports.
        assert!(resolve_threads(0) >= 1);
    }
}
