//! The k-Shape clustering algorithm (Section 3.3, Algorithm 3).
//!
//! k-Shape is an iterative refinement procedure in the mold of k-means but
//! with SBD as the distance and shape extraction as the centroid method.
//! Every iteration:
//!
//! 1. **refinement** — each cluster centroid is recomputed with
//!    [`crate::extraction::shape_extraction`] against the previous
//!    centroid,
//! 2. **assignment** — every series moves to the cluster of its
//!    SBD-nearest centroid.
//!
//! Iteration stops when memberships stop changing or `max_iter` (100 in the
//! paper) is reached. Complexity per iteration is
//! `O(max{n·k·m·log m, n·m², k·m³})`, linear in the number of series `n`.

use tserror::{ensure_k, validate_series_set, StopReason, TsResult};
use tsobs::{IterationEvent, Obs, Recorder};
use tsrand::StdRng;
use tsrun::{Budget, CancelToken, RunControl};

use crate::extraction::{extract_aligned, EigenMethod};
use crate::init::{plus_plus_assignment_spectra, random_assignment, InitStrategy};
use crate::spectra::{resolve_threads, SpectraEngine};

/// Configuration for a k-Shape run.
#[derive(Debug, Clone, Copy)]
pub struct KShapeConfig {
    /// Number of clusters to produce.
    pub k: usize,
    /// Maximum refinement iterations (the paper uses 100).
    pub max_iter: usize,
    /// RNG seed for the initial assignment.
    pub seed: u64,
    /// Initialization strategy.
    pub init: InitStrategy,
    /// Dominant-eigenvector method for shape extraction.
    pub eigen: EigenMethod,
    /// Worker threads for the batched sweeps: `0` = auto (the
    /// `KSHAPE_THREADS` environment variable, else the host parallelism).
    /// Results are bit-identical for every value — see
    /// [`crate::spectra`] for the determinism contract.
    pub threads: usize,
    /// Channels per series sample frame. `1` (the default) is the
    /// classic univariate fit. For `channels > 1` each input row holds
    /// `channels · m` samples channel-major (all of channel 0, then
    /// channel 1, …) and SBD becomes the summed per-channel NCC with one
    /// shared alignment shift; the fit routes through the shape-aware
    /// [`crate::outofcore::fit_store`] engine, which supports
    /// [`InitStrategy::Random`] only.
    pub channels: usize,
}

impl Default for KShapeConfig {
    fn default() -> Self {
        KShapeConfig {
            k: 2,
            max_iter: 100,
            seed: 0,
            init: InitStrategy::Random,
            eigen: EigenMethod::Full,
            threads: 0,
            channels: 1,
        }
    }
}

/// Unified options for [`KShape::fit_with`] — the single entry point
/// (the historical `fit` / `try_fit` / `try_fit_with_control` triplet
/// has been removed).
///
/// Algorithm knobs mirror [`KShapeConfig`]; execution control
/// ([`Budget`], [`CancelToken`]) and telemetry ([`Recorder`]) ride along
/// so call sites no longer choose between three function variants:
///
/// ```
/// use kshape::{KShape, KShapeOptions};
/// let series = vec![vec![0.0, 1.0, 0.0, -1.0], vec![1.0, 0.0, -1.0, 0.0]];
/// let opts = KShapeOptions::new(2).with_seed(7);
/// let fit = KShape::fit_with(&series, &opts).expect("clean input");
/// assert_eq!(fit.labels.len(), 2);
/// ```
#[derive(Clone, Default)]
pub struct KShapeOptions<'a> {
    /// Algorithm configuration (k, seed, iteration cap, init, eigen).
    pub config: KShapeConfig,
    /// Optional execution budget (deadline / iteration cap / cost cap).
    pub budget: Option<Budget>,
    /// Optional cooperative cancellation token.
    pub cancel: Option<CancelToken>,
    /// Optional telemetry recorder; `None` keeps the hot loop disarmed.
    pub recorder: Option<&'a dyn Recorder>,
}

impl std::fmt::Debug for KShapeOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KShapeOptions")
            .field("config", &self.config)
            .field("budget", &self.budget)
            .field("cancel", &self.cancel)
            .field("recorder", &self.recorder.is_some())
            .finish()
    }
}

impl From<KShapeConfig> for KShapeOptions<'_> {
    fn from(config: KShapeConfig) -> Self {
        KShapeOptions {
            config,
            ..KShapeOptions::default()
        }
    }
}

impl<'a> KShapeOptions<'a> {
    /// Default options for `k` clusters.
    #[must_use]
    pub fn new(k: usize) -> Self {
        KShapeOptions::from(KShapeConfig {
            k,
            ..KShapeConfig::default()
        })
    }

    /// Sets the RNG seed for the initial assignment.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the refinement iteration cap.
    #[must_use]
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.config.max_iter = max_iter;
        self
    }

    /// Sets the initialization strategy.
    #[must_use]
    pub fn with_init(mut self, init: InitStrategy) -> Self {
        self.config.init = init;
        self
    }

    /// Sets the dominant-eigenvector method for shape extraction.
    #[must_use]
    pub fn with_eigen(mut self, eigen: EigenMethod) -> Self {
        self.config.eigen = eigen;
        self
    }

    /// Sets the worker-thread count for the batched sweeps (`0` = auto).
    /// The fit is bit-identical for every value.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Sets the channel count per series (see
    /// [`KShapeConfig::channels`]). Rows must hold `channels · m`
    /// channel-major samples.
    #[must_use]
    pub fn with_channels(mut self, channels: usize) -> Self {
        self.config.channels = channels;
        self
    }

    /// Attaches an execution budget.
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Attaches a cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Attaches a telemetry recorder.
    #[must_use]
    pub fn with_recorder(mut self, recorder: &'a dyn Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Arms a [`RunControl`] from the budget/cancel fields.
    #[must_use]
    pub fn control(&self) -> RunControl {
        RunControl::from_parts(self.budget, self.cancel.clone())
    }

    /// The observability handle for this run.
    #[must_use]
    pub fn obs(&self) -> Obs<'a> {
        Obs::from_option(self.recorder)
    }
}

/// The outcome of a k-Shape run.
#[derive(Debug, Clone)]
pub struct KShapeResult {
    /// Cluster index per input series.
    pub labels: Vec<usize>,
    /// One z-normalized centroid per cluster.
    pub centroids: Vec<Vec<f64>>,
    /// Iterations executed before convergence or the cap.
    pub iterations: usize,
    /// Whether memberships converged before `max_iter`.
    pub converged: bool,
    /// Final sum of squared SBD distances of members to their centroids
    /// (the Equation 1 objective under SBD).
    pub inertia: f64,
}

/// The k-Shape clustering algorithm.
#[derive(Debug, Clone)]
pub struct KShape {
    config: KShapeConfig,
}

impl KShape {
    /// Creates a k-Shape instance with the given configuration.
    #[must_use]
    pub fn new(config: KShapeConfig) -> Self {
        KShape { config }
    }

    /// Convenience constructor with default settings.
    #[must_use]
    pub fn with_k(k: usize) -> Self {
        KShape::new(KShapeConfig {
            k,
            ..Default::default()
        })
    }

    /// Borrow the configuration.
    #[must_use]
    pub fn config(&self) -> &KShapeConfig {
        &self.config
    }

    /// Clusters `series` under a unified options object (Algorithm 3) —
    /// the single entry point (the historical `fit` / `try_fit` /
    /// `try_fit_with_control` triplet has been removed).
    ///
    /// Hitting the iteration cap is *not* an error: the returned
    /// [`KShapeResult`] carries `converged: false` and the best-effort
    /// labeling.
    ///
    /// With [`KShapeConfig::channels`]` > 1` each row holds
    /// `channels · m` channel-major samples and the fit runs through the
    /// shape-aware out-of-core engine under the summed per-channel NCC.
    ///
    /// # Errors
    ///
    /// * [`TsError::EmptyInput`], [`TsError::LengthMismatch`], or
    ///   [`TsError::NonFinite`] for malformed `series` (for multichannel
    ///   fits, a row length not divisible by `channels` is a
    ///   [`TsError::LengthMismatch`]);
    /// * [`TsError::InvalidK`] unless `1 <= k <= series.len()`;
    /// * [`TsError::NumericalFailure`] for a multichannel fit with an
    ///   initialization other than [`InitStrategy::Random`];
    /// * [`TsError::Stopped`] when the options' budget trips or the
    ///   token is cancelled (carrying the best labeling so far).
    pub fn fit_with(series: &[Vec<f64>], opts: &KShapeOptions<'_>) -> TsResult<KShapeResult> {
        if opts.config.channels != 1 {
            validate_series_set(series)?;
            let view = tsdata::store::ChannelView::new(series, opts.config.channels)?;
            return crate::outofcore::fit_store(&view, opts);
        }
        let ctrl = opts.control();
        let obs = opts.obs();
        let (result, _shifted) = KShape::new(opts.config).fit_core(series, &ctrl, obs)?;
        ctrl.report_cost(obs);
        Ok(result)
    }

    /// Validated k-Shape refinement loop behind [`KShape::fit_with`].
    /// Returns the result plus the number of series that changed cluster
    /// in the final iteration (0 when converged).
    ///
    /// Telemetry contract: everything recorded through `obs` is
    /// read-only — an armed recorder never changes labels, centroids, or
    /// iteration counts (`tests/observability.rs` enforces this against
    /// the golden hashes).
    pub(crate) fn fit_core(
        &self,
        series: &[Vec<f64>],
        ctrl: &RunControl,
        obs: Obs<'_>,
    ) -> TsResult<(KShapeResult, usize)> {
        let cfg = &self.config;
        let n = series.len();
        let m = validate_series_set(series)?;
        ensure_k(cfg.k, n)?;
        let fit_span = obs.span("kshape.fit");

        // Spectrum cache: every series is FFT'd exactly once per fit; all
        // SBD work below consumes the cached half-spectra.
        let threads = resolve_threads(cfg.threads);
        let engine = SpectraEngine::from_validated(series, m, threads);
        obs.counter("sbd.spectra.series_ffts", n as u64);
        obs.counter("kshape.parallel.threads", threads as u64);
        obs.counter("kshape.parallel.chunks", engine.chunk_count() as u64);

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut labels = match cfg.init {
            InitStrategy::Random => random_assignment(n, cfg.k, &mut rng),
            InitStrategy::PlusPlus => plus_plus_assignment_spectra(&engine, cfg.k, &mut rng),
        };
        let mut centroids: Vec<Vec<f64>> = vec![vec![0.0; m]; cfg.k];

        let mut iterations = 0;
        let mut converged = false;
        let mut dists = vec![0.0f64; n];
        // Per-series alignment shift toward its nearest centroid, written
        // by the assignment sweep. The next refinement reuses it instead
        // of re-running SBD per member: the shift was computed against
        // exactly the centroid that refinement aligns the member to.
        let mut shifts = vec![0isize; n];
        let mut shifted = 0usize;
        // Armed-only: per-cluster squared centroid movement, filled in at
        // each centroid write so the iteration event can report how far
        // the centroids moved without snapshotting (cloning) the full set.
        let mut deltas = if obs.is_armed() {
            Some(vec![0.0f64; cfg.k])
        } else {
            None
        };
        while iterations < cfg.max_iter {
            // Outer-loop poll point: cancellation, deadline, and the
            // budget's own iteration cap (independent of cfg.max_iter).
            if let Err(reason) = ctrl.check_iteration(iterations) {
                return Err(RunControl::stop_error(labels, iterations, reason));
            }
            iterations += 1;

            // ----- Refinement step: recompute centroids. -----
            let refine_span = obs.span("kshape.refinement");
            if let Err(reason) = self.refine(
                &engine,
                series,
                &mut labels,
                &mut centroids,
                &dists,
                &shifts,
                deltas.as_deref_mut(),
                ctrl,
                obs,
            ) {
                return Err(RunControl::stop_error(labels, iterations - 1, reason));
            }
            refine_span.end();

            // ----- Assignment step: move to nearest centroid. -----
            // One conjugate-multiply + inverse rFFT per (series, centroid)
            // pair over the cached spectra; each centroid is transformed
            // exactly once per iteration.
            let assign_span = obs.span("kshape.assignment");
            let cents = engine.prepare_centroids(&centroids);
            obs.counter("sbd.spectra.centroid_ffts", cfg.k as u64);
            let changed = match engine.assign(&cents, &mut labels, &mut dists, &mut shifts, ctrl) {
                Ok(changed) => changed,
                Err(reason) => return Err(RunControl::stop_error(labels, iterations - 1, reason)),
            };
            obs.counter("sbd.spectra.pair_sweeps", (n * cfg.k) as u64);
            assign_span.end();
            shifted = changed;
            if obs.is_armed() {
                // All armed-only reads: nothing here feeds back into the
                // refinement state.
                let inertia_now: f64 = dists.iter().map(|d| d * d).sum();
                // Summing the per-cluster write-site deltas in ascending
                // cluster order reproduces the historical clone-and-diff
                // telemetry bit for bit.
                let shift = deltas
                    .as_deref()
                    .map_or(f64::NAN, |d| d.iter().sum::<f64>().sqrt());
                obs.iteration(&IterationEvent {
                    algorithm: "kshape",
                    iter: iterations - 1,
                    inertia: inertia_now,
                    moved: changed,
                    centroid_shift: shift,
                });
            }
            if changed == 0 {
                converged = true;
                break;
            }
        }
        obs.counter("kshape.iterations", iterations as u64);
        fit_span.end();

        let inertia = dists.iter().map(|d| d * d).sum();
        Ok((
            KShapeResult {
                labels,
                centroids,
                iterations,
                converged,
                inertia,
            },
            shifted,
        ))
    }

    /// One refinement pass: recompute every cluster centroid via shape
    /// extraction, reusing the alignment shifts found by the previous
    /// assignment sweep, and reseed empty clusters.
    ///
    /// The serial path keeps the historical interleaving (poll → members →
    /// reseed-or-extract → charge, cluster by cluster). The parallel path
    /// splits it in two: a sequential pass snapshots member lists and
    /// performs reseeds in ascending cluster order (reseeds only touch
    /// *empty* clusters, disjoint from every extraction target, so the
    /// snapshots equal the serial path's), then extractions run on worker
    /// threads writing disjoint `centroids[j]` slots, and costs are
    /// charged in cluster order after the join. Non-tripped runs are
    /// bit-identical across thread counts; only the budget-trip
    /// granularity is coarser in parallel.
    #[allow(clippy::too_many_arguments)]
    fn refine(
        &self,
        engine: &SpectraEngine<'_>,
        series: &[Vec<f64>],
        labels: &mut [usize],
        centroids: &mut [Vec<f64>],
        dists: &[f64],
        shifts: &[isize],
        mut deltas: Option<&mut [f64]>,
        ctrl: &RunControl,
        obs: Obs<'_>,
    ) -> Result<(), StopReason> {
        let cfg = &self.config;
        let m = series[0].len();
        let k = cfg.k;
        // Shape extraction builds and decomposes a Gram matrix — an
        // expensive indivisible step, so poll before each cluster and
        // charge its O(m)-per-member + O(m²) cost after.
        if engine.threads() <= 1 || k < 2 {
            for j in 0..k {
                ctrl.poll()?;
                match refinement_task(
                    j,
                    series,
                    labels,
                    centroids,
                    dists,
                    shifts,
                    deltas.as_deref_mut(),
                    obs,
                ) {
                    None => continue,
                    Some((members, member_shifts)) => {
                        let members_len = members.len();
                        let next = extract_aligned(
                            &members,
                            member_shifts.as_deref(),
                            cfg.eigen,
                            engine.plan(),
                        );
                        if let Some(d) = deltas.as_deref_mut() {
                            d[j] = l2_delta_sq(&centroids[j], &next);
                        }
                        centroids[j] = next;
                        ctrl.charge((members_len * m + m * m) as u64)?;
                    }
                }
            }
            return Ok(());
        }
        // Pass A (sequential): reseeds and member-list snapshots, in the
        // exact order the serial path would visit them.
        let mut tasks: Vec<(usize, RefinementTask<'_>)> = Vec::with_capacity(k);
        for j in 0..k {
            ctrl.poll()?;
            if let Some(task) = refinement_task(
                j,
                series,
                labels,
                centroids,
                dists,
                shifts,
                deltas.as_deref_mut(),
                obs,
            ) {
                tasks.push((j, task));
            }
        }
        // Pass B (parallel): extractions striped round-robin over workers,
        // each writing its own cluster's centroid; collected in task order.
        let workers = engine.threads().min(tasks.len().max(1));
        let mut extracted: Vec<Vec<(usize, usize, Vec<f64>)>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let tasks = &tasks;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        tasks
                            .iter()
                            .skip(w)
                            .step_by(workers)
                            .map(|(j, (members, member_shifts))| {
                                let c = extract_aligned(
                                    members,
                                    member_shifts.as_deref(),
                                    cfg.eigen,
                                    engine.plan(),
                                );
                                (*j, members.len(), c)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                extracted.push(h.join().expect("refinement worker panicked"));
            }
        });
        let mut charges: Vec<(usize, u64)> = Vec::with_capacity(tasks.len());
        for (j, members_len, centroid) in extracted.into_iter().flatten() {
            if let Some(d) = deltas.as_deref_mut() {
                d[j] = l2_delta_sq(&centroids[j], &centroid);
            }
            centroids[j] = centroid;
            charges.push((j, (members_len * m + m * m) as u64));
        }
        charges.sort_unstable_by_key(|&(j, _)| j);
        for (_, cost) in charges {
            ctrl.charge(cost)?;
        }
        Ok(())
    }
}

/// One cluster's pending extraction: the member slices plus their cached
/// alignment shifts (`None` for an all-zero centroid, which skips
/// alignment).
type RefinementTask<'s> = (Vec<&'s [f64]>, Option<Vec<isize>>);

/// The refinement work for cluster `j`: `None` when the cluster was empty
/// (reseeded in place, historical side effects preserved), otherwise the
/// member snapshot plus their cached alignment shifts (`None` shifts for an
/// all-zero centroid — the initial state — which skips alignment).
#[allow(clippy::too_many_arguments)]
fn refinement_task<'s>(
    j: usize,
    series: &'s [Vec<f64>],
    labels: &mut [usize],
    centroids: &mut [Vec<f64>],
    dists: &[f64],
    shifts: &[isize],
    deltas: Option<&mut [f64]>,
    obs: Obs<'_>,
) -> Option<RefinementTask<'s>> {
    let idx: Vec<usize> = labels
        .iter()
        .enumerate()
        .filter(|&(_, &l)| l == j)
        .map(|(i, _)| i)
        .collect();
    if idx.is_empty() {
        // Re-seed an empty cluster with the series that is currently
        // worst-served by its own centroid.
        let worst = dists
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map_or(0, |(i, _)| i);
        labels[worst] = j;
        let next = tsdata::normalize::z_normalize(&series[worst]);
        if let Some(d) = deltas {
            d[j] = l2_delta_sq(&centroids[j], &next);
        }
        centroids[j] = next;
        obs.counter("kshape.empty_cluster_reseeds", 1);
        return None;
    }
    let members: Vec<&[f64]> = idx.iter().map(|&i| series[i].as_slice()).collect();
    // An all-zero centroid (the k-Shape initial state, or a degenerate
    // z-normalization) skips alignment, as the reference implementation
    // does; otherwise the assignment sweep's shifts align members toward
    // exactly this centroid.
    let member_shifts = centroids[j]
        .iter()
        .any(|&v| v != 0.0)
        .then(|| idx.iter().map(|&i| shifts[i]).collect::<Vec<isize>>());
    Some((members, member_shifts))
}

/// Squared L2 distance between one cluster's outgoing and incoming
/// centroid — telemetry only, computed exclusively on the armed path at
/// each centroid write. Each cluster is written exactly once per
/// refinement pass, so summing these per-cluster values in ascending
/// cluster order and taking the square root reproduces the historical
/// clone-the-whole-set-and-diff shift value bit for bit.
pub(crate) fn l2_delta_sq(prev: &[f64], next: &[f64]) -> f64 {
    prev.iter()
        .zip(next.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::{KShape, KShapeConfig, KShapeOptions, KShapeResult};
    use crate::extraction::EigenMethod;
    use crate::init::InitStrategy;
    use tsdata::normalize::z_normalize;

    fn bump(m: usize, center: f64, width: f64) -> Vec<f64> {
        (0..m)
            .map(|i| (-((i as f64 - center) / width).powi(2)).exp())
            .collect()
    }

    /// Two shape classes — a narrow early bump and a wide double bump —
    /// with per-member phase jitter.
    fn two_class_data() -> (Vec<Vec<f64>>, Vec<usize>) {
        let m = 64;
        let mut series = Vec::new();
        let mut truth = Vec::new();
        for j in 0..6 {
            let shift = j as f64 * 2.0 - 5.0;
            let a: Vec<f64> = (0..m)
                .map(|i| (-((i as f64 - 20.0 - shift) / 2.5).powi(2)).exp())
                .collect();
            let b: Vec<f64> = bump(m, 18.0 + shift, 6.0)
                .iter()
                .zip(bump(m, 42.0 + shift, 6.0).iter())
                .map(|(x, y)| x - y)
                .collect();
            series.push(z_normalize(&a));
            truth.push(0);
            series.push(z_normalize(&b));
            truth.push(1);
        }
        (series, truth)
    }

    fn fit(cfg: KShapeConfig, series: &[Vec<f64>]) -> KShapeResult {
        KShape::fit_with(series, &KShapeOptions::from(cfg)).expect("clean input")
    }

    fn fit_k(k: usize, series: &[Vec<f64>]) -> KShapeResult {
        KShape::fit_with(series, &KShapeOptions::new(k)).expect("clean input")
    }

    fn cluster_agreement(result: &KShapeResult, truth: &[usize]) -> bool {
        // Check whether labels equal truth up to cluster renaming (k=2).
        let direct = result.labels.iter().zip(truth.iter()).all(|(a, b)| a == b);
        let flipped = result
            .labels
            .iter()
            .zip(truth.iter())
            .all(|(a, b)| *a == 1 - *b);
        direct || flipped
    }

    #[test]
    fn recovers_two_shape_classes() {
        let (series, truth) = two_class_data();
        let result = fit(
            KShapeConfig {
                k: 2,
                seed: 7,
                ..Default::default()
            },
            &series,
        );
        assert!(result.converged, "did not converge");
        assert!(
            cluster_agreement(&result, &truth),
            "labels {:?} vs truth {truth:?}",
            result.labels
        );
    }

    #[test]
    fn result_invariants() {
        let (series, _) = two_class_data();
        let result = fit_k(2, &series);
        assert_eq!(result.labels.len(), series.len());
        assert_eq!(result.centroids.len(), 2);
        assert!(result.labels.iter().all(|&l| l < 2));
        assert!(result.inertia >= 0.0);
        assert!(result.iterations >= 1);
        for c in &result.centroids {
            assert_eq!(c.len(), 64);
            let mean: f64 = c.iter().sum::<f64>() / 64.0;
            assert!(mean.abs() < 1e-9, "centroid not centered");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (series, _) = two_class_data();
        let a = fit(
            KShapeConfig {
                k: 2,
                seed: 3,
                ..Default::default()
            },
            &series,
        );
        let b = fit(
            KShapeConfig {
                k: 2,
                seed: 3,
                ..Default::default()
            },
            &series,
        );
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn k_equals_n_puts_every_series_alone() {
        let (series, _) = two_class_data();
        let n = series.len();
        let result = fit(
            KShapeConfig {
                k: n,
                seed: 1,
                ..Default::default()
            },
            &series,
        );
        let mut sorted = result.labels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), n, "expected n singleton clusters");
        assert!(result.inertia < 1e-9);
    }

    #[test]
    fn k_equals_one_is_single_cluster() {
        let (series, _) = two_class_data();
        let result = fit_k(1, &series);
        assert!(result.labels.iter().all(|&l| l == 0));
        assert!(result.converged);
    }

    #[test]
    fn plus_plus_init_also_recovers_classes() {
        let (series, truth) = two_class_data();
        let result = fit(
            KShapeConfig {
                k: 2,
                seed: 11,
                init: InitStrategy::PlusPlus,
                ..Default::default()
            },
            &series,
        );
        assert!(cluster_agreement(&result, &truth));
    }

    #[test]
    fn power_eigen_matches_full_on_easy_data() {
        let (series, truth) = two_class_data();
        let result = fit(
            KShapeConfig {
                k: 2,
                seed: 7,
                eigen: EigenMethod::Power,
                ..Default::default()
            },
            &series,
        );
        assert!(cluster_agreement(&result, &truth));
    }

    #[test]
    fn max_iter_one_terminates_unconverged_or_lucky() {
        let (series, _) = two_class_data();
        let result = fit(
            KShapeConfig {
                k: 2,
                seed: 5,
                max_iter: 1,
                ..Default::default()
            },
            &series,
        );
        assert_eq!(result.iterations, 1);
    }

    #[test]
    fn fit_with_is_deterministic_for_fixed_seed() {
        let (series, _) = two_class_data();
        let cfg = KShapeConfig {
            k: 2,
            seed: 7,
            ..Default::default()
        };
        let a = fit(cfg, &series);
        let b = fit(cfg, &series);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.centroids, b.centroids);
        assert_eq!(a.inertia.to_bits(), b.inertia.to_bits());
    }

    #[test]
    fn fit_with_returns_unconverged_result_instead_of_error() {
        let (series, _) = two_class_data();
        let opts = KShapeOptions::new(2).with_seed(5).with_max_iter(0);
        let fit = KShape::fit_with(&series, &opts).expect("cap is not an error");
        assert!(!fit.converged);
        assert_eq!(fit.iterations, 0);
        assert_eq!(fit.labels.len(), series.len());
    }

    #[test]
    fn fit_with_reports_typed_errors() {
        use tserror::TsError;
        let opts = KShapeOptions::new(3);
        assert!(matches!(
            KShape::fit_with(&[], &opts),
            Err(TsError::EmptyInput)
        ));
        assert!(matches!(
            KShape::fit_with(&[vec![1.0, 2.0], vec![2.0, 1.0]], &opts),
            Err(TsError::InvalidK { k: 3, n: 2 })
        ));
        assert!(matches!(
            KShape::fit_with(&[vec![1.0, 2.0], vec![1.0]], &KShapeOptions::new(1)),
            Err(TsError::LengthMismatch {
                expected: 2,
                found: 1,
                series: 1
            })
        ));
        assert!(matches!(
            KShape::fit_with(&[vec![1.0, f64::NAN]], &KShapeOptions::new(1)),
            Err(TsError::NonFinite {
                series: 0,
                index: 1
            })
        ));
    }

    #[test]
    fn fit_with_channels_clusters_channel_major_rows() {
        let (series, truth) = two_class_data();
        let rows: Vec<Vec<f64>> = series.iter().map(|s| s.repeat(2)).collect();
        let opts = KShapeOptions::new(2).with_seed(7).with_channels(2);
        let fit = KShape::fit_with(&rows, &opts).expect("multichannel fit");
        let direct = fit.labels.iter().zip(truth.iter()).all(|(a, b)| a == b);
        let flipped = fit
            .labels
            .iter()
            .zip(truth.iter())
            .all(|(a, b)| *a == 1 - *b);
        assert!(direct || flipped, "labels {:?}", fit.labels);
        for c in &fit.centroids {
            assert_eq!(c.len(), 2 * 64);
        }
        // A row length not divisible by the channel count is a typed error.
        let bad = vec![vec![0.0; 63]; 4];
        assert!(matches!(
            KShape::fit_with(&bad, &KShapeOptions::new(2).with_channels(2)),
            Err(tserror::TsError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn fit_with_stops_on_cancellation() {
        use tsrun::CancelToken;
        let (series, _) = two_class_data();
        let token = CancelToken::new();
        token.cancel();
        let opts = KShapeOptions::new(2).with_cancel(token);
        let err = KShape::fit_with(&series, &opts).expect_err("cancelled up front");
        assert!(matches!(err, tserror::TsError::Stopped { .. }), "{err:?}");
    }

    #[test]
    fn fit_with_emits_convergence_telemetry() {
        let (series, _) = two_class_data();
        let sink = tsobs::MemorySink::new();
        // A (huge) cost cap arms the control's cost accounting; a fully
        // passive control skips the counter entirely.
        let opts = KShapeOptions::new(2)
            .with_seed(7)
            .with_budget(tsrun::Budget::unlimited().with_cost_cap(u64::MAX))
            .with_recorder(&sink);
        let fit = KShape::fit_with(&series, &opts).expect("clean data");

        let iters = sink.iteration_events();
        assert_eq!(iters.len(), fit.iterations);
        assert!(iters.iter().all(|e| e.algorithm == "kshape"));
        assert!(iters.iter().all(|e| e.inertia.is_finite()));
        assert!(iters.iter().all(|e| e.centroid_shift.is_finite()));
        // Converged: the last iteration moved nothing and its inertia is
        // the result's inertia.
        let last = iters.last().expect("at least one iteration");
        assert_eq!(last.moved, 0);
        assert_eq!(last.inertia.to_bits(), fit.inertia.to_bits());

        assert_eq!(sink.span_count("kshape.fit"), 1);
        assert_eq!(sink.span_count("kshape.refinement"), fit.iterations);
        assert_eq!(sink.span_count("kshape.assignment"), fit.iterations);
        assert_eq!(
            sink.counter_total("kshape.iterations"),
            fit.iterations as u64
        );
        assert!(sink.counter_total(tsrun::COST_COUNTER) > 0);
    }

    #[test]
    fn armed_recorder_never_changes_the_fit() {
        let (series, _) = two_class_data();
        let plain = KShape::fit_with(&series, &KShapeOptions::new(2).with_seed(3)).expect("clean");
        let sink = tsobs::MemorySink::new();
        let armed = KShape::fit_with(
            &series,
            &KShapeOptions::new(2).with_seed(3).with_recorder(&sink),
        )
        .expect("clean");
        assert_eq!(plain.labels, armed.labels);
        assert_eq!(plain.iterations, armed.iterations);
        assert_eq!(plain.centroids, armed.centroids);
        assert_eq!(plain.inertia.to_bits(), armed.inertia.to_bits());
        assert!(!sink.is_empty());
    }
}
