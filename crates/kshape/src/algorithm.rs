//! The k-Shape clustering algorithm (Section 3.3, Algorithm 3).
//!
//! k-Shape is an iterative refinement procedure in the mold of k-means but
//! with SBD as the distance and shape extraction as the centroid method.
//! Every iteration:
//!
//! 1. **refinement** — each cluster centroid is recomputed with
//!    [`crate::extraction::shape_extraction`] against the previous
//!    centroid,
//! 2. **assignment** — every series moves to the cluster of its
//!    SBD-nearest centroid.
//!
//! Iteration stops when memberships stop changing or `max_iter` (100 in the
//! paper) is reached. Complexity per iteration is
//! `O(max{n·k·m·log m, n·m², k·m³})`, linear in the number of series `n`.

use tserror::{ensure_k, validate_series_set, TsError, TsResult};
use tsrand::StdRng;
use tsrun::RunControl;

use crate::extraction::{try_shape_extraction, EigenMethod};
use crate::init::{plus_plus_assignment, random_assignment, InitStrategy};
use crate::sbd::SbdPlan;

/// Configuration for a k-Shape run.
#[derive(Debug, Clone, Copy)]
pub struct KShapeConfig {
    /// Number of clusters to produce.
    pub k: usize,
    /// Maximum refinement iterations (the paper uses 100).
    pub max_iter: usize,
    /// RNG seed for the initial assignment.
    pub seed: u64,
    /// Initialization strategy.
    pub init: InitStrategy,
    /// Dominant-eigenvector method for shape extraction.
    pub eigen: EigenMethod,
}

impl Default for KShapeConfig {
    fn default() -> Self {
        KShapeConfig {
            k: 2,
            max_iter: 100,
            seed: 0,
            init: InitStrategy::Random,
            eigen: EigenMethod::Full,
        }
    }
}

/// The outcome of a k-Shape run.
#[derive(Debug, Clone)]
pub struct KShapeResult {
    /// Cluster index per input series.
    pub labels: Vec<usize>,
    /// One z-normalized centroid per cluster.
    pub centroids: Vec<Vec<f64>>,
    /// Iterations executed before convergence or the cap.
    pub iterations: usize,
    /// Whether memberships converged before `max_iter`.
    pub converged: bool,
    /// Final sum of squared SBD distances of members to their centroids
    /// (the Equation 1 objective under SBD).
    pub inertia: f64,
}

/// The k-Shape clustering algorithm.
#[derive(Debug, Clone)]
pub struct KShape {
    config: KShapeConfig,
}

impl KShape {
    /// Creates a k-Shape instance with the given configuration.
    #[must_use]
    pub fn new(config: KShapeConfig) -> Self {
        KShape { config }
    }

    /// Convenience constructor with default settings.
    #[must_use]
    pub fn with_k(k: usize) -> Self {
        KShape::new(KShapeConfig {
            k,
            ..Default::default()
        })
    }

    /// Borrow the configuration.
    #[must_use]
    pub fn config(&self) -> &KShapeConfig {
        &self.config
    }

    /// Clusters `series` into `k` groups (Algorithm 3).
    ///
    /// Inputs are expected to be z-normalized (the paper z-normalizes all
    /// data up front); the algorithm still works on raw data because SBD
    /// itself is scale invariant, but centroids assume centered members.
    ///
    /// # Panics
    ///
    /// Panics if `series` is empty, ragged, contains non-finite samples,
    /// or `k` is 0 or exceeds the number of series. Use [`KShape::try_fit`]
    /// to receive these conditions as typed [`TsError`]s instead.
    #[must_use]
    pub fn fit(&self, series: &[Vec<f64>]) -> KShapeResult {
        self.fit_core(series, &RunControl::unlimited())
            .unwrap_or_else(|e| panic!("{e}"))
            .0
    }

    /// Fallible variant of [`KShape::fit`]: validates the input once up
    /// front and never panics.
    ///
    /// # Errors
    ///
    /// * [`TsError::EmptyInput`], [`TsError::LengthMismatch`], or
    ///   [`TsError::NonFinite`] for malformed `series`;
    /// * [`TsError::InvalidK`] unless `1 <= k <= series.len()`;
    /// * [`TsError::NotConverged`] when memberships are still changing at
    ///   `max_iter` — the error carries the final labeling, the iteration
    ///   count, and how many series shifted cluster in the last iteration,
    ///   so callers can still consume the best-effort result.
    pub fn try_fit(&self, series: &[Vec<f64>]) -> TsResult<KShapeResult> {
        self.try_fit_with_control(series, &RunControl::unlimited())
    }

    /// Budget- and cancellation-aware variant of [`KShape::try_fit`].
    ///
    /// The refinement loop polls `ctrl` once per outer iteration
    /// ([`RunControl::check_iteration`]) and charges cost proportional to
    /// the SBD work of every assignment sweep, so a wall-clock deadline is
    /// detected mid-fit rather than after the fact.
    ///
    /// # Errors
    ///
    /// Everything [`KShape::try_fit`] reports, plus
    /// [`TsError::Stopped`] carrying the best labeling so far, the
    /// iterations completed, and the [`tserror::StopReason`] when the
    /// budget trips or the token is cancelled.
    pub fn try_fit_with_control(
        &self,
        series: &[Vec<f64>],
        ctrl: &RunControl,
    ) -> TsResult<KShapeResult> {
        let (result, shifted) = self.fit_core(series, ctrl)?;
        if result.converged {
            Ok(result)
        } else {
            Err(TsError::NotConverged {
                labels: result.labels,
                iterations: result.iterations,
                shifted,
            })
        }
    }

    /// Validated k-Shape refinement loop shared by [`KShape::fit`] and
    /// [`KShape::try_fit`]. Returns the result plus the number of series
    /// that changed cluster in the final iteration (0 when converged).
    pub(crate) fn fit_core(
        &self,
        series: &[Vec<f64>],
        ctrl: &RunControl,
    ) -> TsResult<(KShapeResult, usize)> {
        let cfg = &self.config;
        let n = series.len();
        let m = validate_series_set(series)?;
        ensure_k(cfg.k, n)?;

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut labels = match cfg.init {
            InitStrategy::Random => random_assignment(n, cfg.k, &mut rng),
            InitStrategy::PlusPlus => plus_plus_assignment(series, cfg.k, &mut rng),
        };
        let mut centroids: Vec<Vec<f64>> = vec![vec![0.0; m]; cfg.k];
        let plan = SbdPlan::new(m);

        let mut iterations = 0;
        let mut converged = false;
        let mut dists = vec![0.0f64; n];
        let mut shifted = 0usize;
        while iterations < cfg.max_iter {
            // Outer-loop poll point: cancellation, deadline, and the
            // budget's own iteration cap (independent of cfg.max_iter).
            if let Err(reason) = ctrl.check_iteration(iterations) {
                return Err(RunControl::stop_error(labels, iterations, reason));
            }
            iterations += 1;

            // ----- Refinement step: recompute centroids. -----
            #[allow(clippy::needless_range_loop)]
            for j in 0..cfg.k {
                // Shape extraction builds and decomposes an m×m matrix —
                // an expensive indivisible step, so poll before it and
                // charge its O(m²)-per-member + O(m³) eigen cost after.
                if let Err(reason) = ctrl.poll() {
                    return Err(RunControl::stop_error(labels, iterations - 1, reason));
                }
                let members: Vec<&[f64]> = labels
                    .iter()
                    .enumerate()
                    .filter(|&(_, &l)| l == j)
                    .map(|(i, _)| series[i].as_slice())
                    .collect();
                if members.is_empty() {
                    // Re-seed an empty cluster with the series that is
                    // currently worst-served by its own centroid.
                    let worst = dists
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.total_cmp(b.1))
                        .map_or(0, |(i, _)| i);
                    labels[worst] = j;
                    centroids[j] = tsdata::normalize::z_normalize(&series[worst]);
                    continue;
                }
                let members_len = members.len();
                centroids[j] = try_shape_extraction(&members, &centroids[j], cfg.eigen)?;
                if let Err(reason) = ctrl.charge((members_len * m + m * m) as u64) {
                    return Err(RunControl::stop_error(labels, iterations - 1, reason));
                }
            }

            // ----- Assignment step: move to nearest centroid. -----
            let prepared: Vec<_> = centroids.iter().map(|c| plan.prepare(c)).collect();
            let mut changed = 0usize;
            for (i, s) in series.iter().enumerate() {
                let mut best = f64::INFINITY;
                let mut best_j = labels[i];
                for (j, p) in prepared.iter().enumerate() {
                    let d = plan.sbd_prepared(p, s).dist;
                    if d < best {
                        best = d;
                        best_j = j;
                    }
                }
                dists[i] = best;
                if best_j != labels[i] {
                    labels[i] = best_j;
                    changed += 1;
                }
                // One NCC sweep against every centroid ≈ k · m log m work.
                if let Err(reason) = ctrl.charge((cfg.k * m) as u64) {
                    return Err(RunControl::stop_error(labels, iterations - 1, reason));
                }
            }
            shifted = changed;
            if changed == 0 {
                converged = true;
                break;
            }
        }

        let inertia = dists.iter().map(|d| d * d).sum();
        Ok((
            KShapeResult {
                labels,
                centroids,
                iterations,
                converged,
                inertia,
            },
            shifted,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::{KShape, KShapeConfig, KShapeResult};
    use crate::extraction::EigenMethod;
    use crate::init::InitStrategy;
    use tsdata::normalize::z_normalize;

    fn bump(m: usize, center: f64, width: f64) -> Vec<f64> {
        (0..m)
            .map(|i| (-((i as f64 - center) / width).powi(2)).exp())
            .collect()
    }

    /// Two shape classes — a narrow early bump and a wide double bump —
    /// with per-member phase jitter.
    fn two_class_data() -> (Vec<Vec<f64>>, Vec<usize>) {
        let m = 64;
        let mut series = Vec::new();
        let mut truth = Vec::new();
        for j in 0..6 {
            let shift = j as f64 * 2.0 - 5.0;
            let a: Vec<f64> = (0..m)
                .map(|i| (-((i as f64 - 20.0 - shift) / 2.5).powi(2)).exp())
                .collect();
            let b: Vec<f64> = bump(m, 18.0 + shift, 6.0)
                .iter()
                .zip(bump(m, 42.0 + shift, 6.0).iter())
                .map(|(x, y)| x - y)
                .collect();
            series.push(z_normalize(&a));
            truth.push(0);
            series.push(z_normalize(&b));
            truth.push(1);
        }
        (series, truth)
    }

    fn cluster_agreement(result: &KShapeResult, truth: &[usize]) -> bool {
        // Check whether labels equal truth up to cluster renaming (k=2).
        let direct = result.labels.iter().zip(truth.iter()).all(|(a, b)| a == b);
        let flipped = result
            .labels
            .iter()
            .zip(truth.iter())
            .all(|(a, b)| *a == 1 - *b);
        direct || flipped
    }

    #[test]
    fn recovers_two_shape_classes() {
        let (series, truth) = two_class_data();
        let result = KShape::new(KShapeConfig {
            k: 2,
            seed: 7,
            ..Default::default()
        })
        .fit(&series);
        assert!(result.converged, "did not converge");
        assert!(
            cluster_agreement(&result, &truth),
            "labels {:?} vs truth {truth:?}",
            result.labels
        );
    }

    #[test]
    fn result_invariants() {
        let (series, _) = two_class_data();
        let result = KShape::with_k(2).fit(&series);
        assert_eq!(result.labels.len(), series.len());
        assert_eq!(result.centroids.len(), 2);
        assert!(result.labels.iter().all(|&l| l < 2));
        assert!(result.inertia >= 0.0);
        assert!(result.iterations >= 1);
        for c in &result.centroids {
            assert_eq!(c.len(), 64);
            let mean: f64 = c.iter().sum::<f64>() / 64.0;
            assert!(mean.abs() < 1e-9, "centroid not centered");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (series, _) = two_class_data();
        let a = KShape::new(KShapeConfig {
            k: 2,
            seed: 3,
            ..Default::default()
        })
        .fit(&series);
        let b = KShape::new(KShapeConfig {
            k: 2,
            seed: 3,
            ..Default::default()
        })
        .fit(&series);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn k_equals_n_puts_every_series_alone() {
        let (series, _) = two_class_data();
        let n = series.len();
        let result = KShape::new(KShapeConfig {
            k: n,
            seed: 1,
            ..Default::default()
        })
        .fit(&series);
        let mut sorted = result.labels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), n, "expected n singleton clusters");
        assert!(result.inertia < 1e-9);
    }

    #[test]
    fn k_equals_one_is_single_cluster() {
        let (series, _) = two_class_data();
        let result = KShape::with_k(1).fit(&series);
        assert!(result.labels.iter().all(|&l| l == 0));
        assert!(result.converged);
    }

    #[test]
    fn plus_plus_init_also_recovers_classes() {
        let (series, truth) = two_class_data();
        let result = KShape::new(KShapeConfig {
            k: 2,
            seed: 11,
            init: InitStrategy::PlusPlus,
            ..Default::default()
        })
        .fit(&series);
        assert!(cluster_agreement(&result, &truth));
    }

    #[test]
    fn power_eigen_matches_full_on_easy_data() {
        let (series, truth) = two_class_data();
        let result = KShape::new(KShapeConfig {
            k: 2,
            seed: 7,
            eigen: EigenMethod::Power,
            ..Default::default()
        })
        .fit(&series);
        assert!(cluster_agreement(&result, &truth));
    }

    #[test]
    fn max_iter_one_terminates_unconverged_or_lucky() {
        let (series, _) = two_class_data();
        let result = KShape::new(KShapeConfig {
            k: 2,
            seed: 5,
            max_iter: 1,
            ..Default::default()
        })
        .fit(&series);
        assert_eq!(result.iterations, 1);
    }

    #[test]
    #[should_panic(expected = "k must not exceed")]
    fn rejects_k_larger_than_n() {
        let _ = KShape::with_k(5).fit(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
    }

    #[test]
    #[should_panic(expected = "at least one series")]
    fn rejects_empty_input() {
        let _ = KShape::with_k(1).fit(&[]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn rejects_ragged_input() {
        let _ = KShape::with_k(1).fit(&[vec![1.0, 2.0], vec![1.0]]);
    }

    #[test]
    fn try_fit_matches_fit_on_clean_data() {
        let (series, _) = two_class_data();
        let cfg = KShapeConfig {
            k: 2,
            seed: 7,
            ..Default::default()
        };
        let a = KShape::new(cfg).fit(&series);
        let b = KShape::new(cfg).try_fit(&series).expect("clean data");
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn try_fit_reports_typed_errors() {
        use tserror::TsError;
        let ks = KShape::with_k(3);
        assert!(matches!(ks.try_fit(&[]), Err(TsError::EmptyInput)));
        assert!(matches!(
            ks.try_fit(&[vec![1.0, 2.0], vec![2.0, 1.0]]),
            Err(TsError::InvalidK { k: 3, n: 2 })
        ));
        assert!(matches!(
            KShape::with_k(1).try_fit(&[vec![1.0, 2.0], vec![1.0]]),
            Err(TsError::LengthMismatch {
                expected: 2,
                found: 1,
                series: 1
            })
        ));
        assert!(matches!(
            KShape::with_k(1).try_fit(&[vec![1.0, f64::NAN]]),
            Err(TsError::NonFinite {
                series: 0,
                index: 1
            })
        ));
    }

    #[test]
    fn try_fit_reports_not_converged_with_diagnostics() {
        use tserror::TsError;
        let (series, _) = two_class_data();
        // max_iter 0 can never converge; the diagnostics still carry a
        // full labeling.
        let err = KShape::new(KShapeConfig {
            k: 2,
            seed: 5,
            max_iter: 0,
            ..Default::default()
        })
        .try_fit(&series)
        .expect_err("cannot converge in zero iterations");
        match err {
            TsError::NotConverged {
                labels, iterations, ..
            } => {
                assert_eq!(labels.len(), series.len());
                assert_eq!(iterations, 0);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }
}
