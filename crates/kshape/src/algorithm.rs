//! The k-Shape clustering algorithm (Section 3.3, Algorithm 3).
//!
//! k-Shape is an iterative refinement procedure in the mold of k-means but
//! with SBD as the distance and shape extraction as the centroid method.
//! Every iteration:
//!
//! 1. **refinement** — each cluster centroid is recomputed with
//!    [`crate::extraction::shape_extraction`] against the previous
//!    centroid,
//! 2. **assignment** — every series moves to the cluster of its
//!    SBD-nearest centroid.
//!
//! Iteration stops when memberships stop changing or `max_iter` (100 in the
//! paper) is reached. Complexity per iteration is
//! `O(max{n·k·m·log m, n·m², k·m³})`, linear in the number of series `n`.

use tsrand::StdRng;

use crate::extraction::{shape_extraction, EigenMethod};
use crate::init::{plus_plus_assignment, random_assignment, InitStrategy};
use crate::sbd::SbdPlan;

/// Configuration for a k-Shape run.
#[derive(Debug, Clone, Copy)]
pub struct KShapeConfig {
    /// Number of clusters to produce.
    pub k: usize,
    /// Maximum refinement iterations (the paper uses 100).
    pub max_iter: usize,
    /// RNG seed for the initial assignment.
    pub seed: u64,
    /// Initialization strategy.
    pub init: InitStrategy,
    /// Dominant-eigenvector method for shape extraction.
    pub eigen: EigenMethod,
}

impl Default for KShapeConfig {
    fn default() -> Self {
        KShapeConfig {
            k: 2,
            max_iter: 100,
            seed: 0,
            init: InitStrategy::Random,
            eigen: EigenMethod::Full,
        }
    }
}

/// The outcome of a k-Shape run.
#[derive(Debug, Clone)]
pub struct KShapeResult {
    /// Cluster index per input series.
    pub labels: Vec<usize>,
    /// One z-normalized centroid per cluster.
    pub centroids: Vec<Vec<f64>>,
    /// Iterations executed before convergence or the cap.
    pub iterations: usize,
    /// Whether memberships converged before `max_iter`.
    pub converged: bool,
    /// Final sum of squared SBD distances of members to their centroids
    /// (the Equation 1 objective under SBD).
    pub inertia: f64,
}

/// The k-Shape clustering algorithm.
#[derive(Debug, Clone)]
pub struct KShape {
    config: KShapeConfig,
}

impl KShape {
    /// Creates a k-Shape instance with the given configuration.
    #[must_use]
    pub fn new(config: KShapeConfig) -> Self {
        KShape { config }
    }

    /// Convenience constructor with default settings.
    #[must_use]
    pub fn with_k(k: usize) -> Self {
        KShape::new(KShapeConfig {
            k,
            ..Default::default()
        })
    }

    /// Borrow the configuration.
    #[must_use]
    pub fn config(&self) -> &KShapeConfig {
        &self.config
    }

    /// Clusters `series` into `k` groups (Algorithm 3).
    ///
    /// Inputs are expected to be z-normalized (the paper z-normalizes all
    /// data up front); the algorithm still works on raw data because SBD
    /// itself is scale invariant, but centroids assume centered members.
    ///
    /// # Panics
    ///
    /// Panics if `series` is empty, ragged, or `k` is 0 or exceeds the
    /// number of series.
    #[must_use]
    pub fn fit(&self, series: &[Vec<f64>]) -> KShapeResult {
        let cfg = &self.config;
        let n = series.len();
        assert!(n > 0, "k-Shape requires at least one series");
        assert!(cfg.k > 0, "k must be positive");
        assert!(cfg.k <= n, "k must not exceed the number of series");
        let m = series[0].len();
        assert!(m > 0, "series must be non-empty");
        assert!(
            series.iter().all(|s| s.len() == m),
            "all series must have equal length"
        );

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut labels = match cfg.init {
            InitStrategy::Random => random_assignment(n, cfg.k, &mut rng),
            InitStrategy::PlusPlus => plus_plus_assignment(series, cfg.k, &mut rng),
        };
        let mut centroids: Vec<Vec<f64>> = vec![vec![0.0; m]; cfg.k];
        let plan = SbdPlan::new(m);

        let mut iterations = 0;
        let mut converged = false;
        let mut dists = vec![0.0f64; n];
        while iterations < cfg.max_iter {
            iterations += 1;

            // ----- Refinement step: recompute centroids. -----
            #[allow(clippy::needless_range_loop)]
            for j in 0..cfg.k {
                let members: Vec<&[f64]> = labels
                    .iter()
                    .enumerate()
                    .filter(|&(_, &l)| l == j)
                    .map(|(i, _)| series[i].as_slice())
                    .collect();
                if members.is_empty() {
                    // Re-seed an empty cluster with the series that is
                    // currently worst-served by its own centroid.
                    let worst = dists
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN distance"))
                        .map_or(0, |(i, _)| i);
                    labels[worst] = j;
                    centroids[j] = tsdata::normalize::z_normalize(&series[worst]);
                    continue;
                }
                centroids[j] = shape_extraction(&members, &centroids[j], cfg.eigen);
            }

            // ----- Assignment step: move to nearest centroid. -----
            let prepared: Vec<_> = centroids.iter().map(|c| plan.prepare(c)).collect();
            let mut changed = false;
            for (i, s) in series.iter().enumerate() {
                let mut best = f64::INFINITY;
                let mut best_j = labels[i];
                for (j, p) in prepared.iter().enumerate() {
                    let d = plan.sbd_prepared(p, s).dist;
                    if d < best {
                        best = d;
                        best_j = j;
                    }
                }
                dists[i] = best;
                if best_j != labels[i] {
                    labels[i] = best_j;
                    changed = true;
                }
            }
            if !changed {
                converged = true;
                break;
            }
        }

        let inertia = dists.iter().map(|d| d * d).sum();
        KShapeResult {
            labels,
            centroids,
            iterations,
            converged,
            inertia,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{KShape, KShapeConfig, KShapeResult};
    use crate::extraction::EigenMethod;
    use crate::init::InitStrategy;
    use tsdata::normalize::z_normalize;

    fn bump(m: usize, center: f64, width: f64) -> Vec<f64> {
        (0..m)
            .map(|i| (-((i as f64 - center) / width).powi(2)).exp())
            .collect()
    }

    /// Two shape classes — a narrow early bump and a wide double bump —
    /// with per-member phase jitter.
    fn two_class_data() -> (Vec<Vec<f64>>, Vec<usize>) {
        let m = 64;
        let mut series = Vec::new();
        let mut truth = Vec::new();
        for j in 0..6 {
            let shift = j as f64 * 2.0 - 5.0;
            let a: Vec<f64> = (0..m)
                .map(|i| (-((i as f64 - 20.0 - shift) / 2.5).powi(2)).exp())
                .collect();
            let b: Vec<f64> = bump(m, 18.0 + shift, 6.0)
                .iter()
                .zip(bump(m, 42.0 + shift, 6.0).iter())
                .map(|(x, y)| x - y)
                .collect();
            series.push(z_normalize(&a));
            truth.push(0);
            series.push(z_normalize(&b));
            truth.push(1);
        }
        (series, truth)
    }

    fn cluster_agreement(result: &KShapeResult, truth: &[usize]) -> bool {
        // Check whether labels equal truth up to cluster renaming (k=2).
        let direct = result.labels.iter().zip(truth.iter()).all(|(a, b)| a == b);
        let flipped = result
            .labels
            .iter()
            .zip(truth.iter())
            .all(|(a, b)| *a == 1 - *b);
        direct || flipped
    }

    #[test]
    fn recovers_two_shape_classes() {
        let (series, truth) = two_class_data();
        let result = KShape::new(KShapeConfig {
            k: 2,
            seed: 7,
            ..Default::default()
        })
        .fit(&series);
        assert!(result.converged, "did not converge");
        assert!(
            cluster_agreement(&result, &truth),
            "labels {:?} vs truth {truth:?}",
            result.labels
        );
    }

    #[test]
    fn result_invariants() {
        let (series, _) = two_class_data();
        let result = KShape::with_k(2).fit(&series);
        assert_eq!(result.labels.len(), series.len());
        assert_eq!(result.centroids.len(), 2);
        assert!(result.labels.iter().all(|&l| l < 2));
        assert!(result.inertia >= 0.0);
        assert!(result.iterations >= 1);
        for c in &result.centroids {
            assert_eq!(c.len(), 64);
            let mean: f64 = c.iter().sum::<f64>() / 64.0;
            assert!(mean.abs() < 1e-9, "centroid not centered");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (series, _) = two_class_data();
        let a = KShape::new(KShapeConfig {
            k: 2,
            seed: 3,
            ..Default::default()
        })
        .fit(&series);
        let b = KShape::new(KShapeConfig {
            k: 2,
            seed: 3,
            ..Default::default()
        })
        .fit(&series);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn k_equals_n_puts_every_series_alone() {
        let (series, _) = two_class_data();
        let n = series.len();
        let result = KShape::new(KShapeConfig {
            k: n,
            seed: 1,
            ..Default::default()
        })
        .fit(&series);
        let mut sorted = result.labels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), n, "expected n singleton clusters");
        assert!(result.inertia < 1e-9);
    }

    #[test]
    fn k_equals_one_is_single_cluster() {
        let (series, _) = two_class_data();
        let result = KShape::with_k(1).fit(&series);
        assert!(result.labels.iter().all(|&l| l == 0));
        assert!(result.converged);
    }

    #[test]
    fn plus_plus_init_also_recovers_classes() {
        let (series, truth) = two_class_data();
        let result = KShape::new(KShapeConfig {
            k: 2,
            seed: 11,
            init: InitStrategy::PlusPlus,
            ..Default::default()
        })
        .fit(&series);
        assert!(cluster_agreement(&result, &truth));
    }

    #[test]
    fn power_eigen_matches_full_on_easy_data() {
        let (series, truth) = two_class_data();
        let result = KShape::new(KShapeConfig {
            k: 2,
            seed: 7,
            eigen: EigenMethod::Power,
            ..Default::default()
        })
        .fit(&series);
        assert!(cluster_agreement(&result, &truth));
    }

    #[test]
    fn max_iter_one_terminates_unconverged_or_lucky() {
        let (series, _) = two_class_data();
        let result = KShape::new(KShapeConfig {
            k: 2,
            seed: 5,
            max_iter: 1,
            ..Default::default()
        })
        .fit(&series);
        assert_eq!(result.iterations, 1);
    }

    #[test]
    #[should_panic(expected = "k must not exceed")]
    fn rejects_k_larger_than_n() {
        let _ = KShape::with_k(5).fit(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
    }

    #[test]
    #[should_panic(expected = "at least one series")]
    fn rejects_empty_input() {
        let _ = KShape::with_k(1).fit(&[]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn rejects_ragged_input() {
        let _ = KShape::with_k(1).fit(&[vec![1.0, 2.0], vec![1.0]]);
    }
}
