//! SBD for sequences of different lengths.
//!
//! The paper restricts the exposition to equal lengths "for simplicity"
//! (footnote 3) but the measure itself needs no such restriction: the
//! cross-correlation sequence simply spans lags `−(|y|−1)..=(|x|−1)` and
//! the coefficient normalization is unchanged. The aligned copy of `y` is
//! placed into a buffer of `x`'s length so downstream consumers (shape
//! extraction, plotting) receive comparable arrays.
//!
//! All transform work routes through [`SbdPlan`]: a plan for the longer
//! input always has enough power-of-two padding for the full
//! `nx + ny − 1` lag range, so unequal-length queries share plans — and,
//! via [`crate::sbd::Sbd::try_sbd_unequal`], the bounded plan cache —
//! with the equal-length hot path instead of maintaining a private
//! pad-and-transform pipeline.
//!
//! For the *uniform scaling* invariance of Section 2.2 (sequences that
//! differ in sampling duration), [`sbd_rescaled`] first stretches the
//! shorter sequence to the longer one's length and then applies the
//! equal-length SBD.
//!
//! The free functions in this module are **deprecated**: the unified
//! shape-aware entry [`crate::sbd::Sbd::distance`] dispatches
//! equal-length, unequal-length, rescaled, and multichannel SBD from one
//! call through the bounded plan cache. They remain as thin wrappers for
//! existing call sites.

use tsdata::distort::resample;
use tserror::{ensure_finite, TsError, TsResult};
use tsfft::correlate::autocorr0;

use crate::sbd::{try_sbd, SbdPlan, SbdResult, SbdScratch};

/// SBD between sequences of possibly different lengths.
///
/// The distance is still `1 − max NCCc ∈ [0, 2]`; `aligned` has `x`'s
/// length, with `y` shifted by the optimal lag and zero-padded/truncated.
///
/// # Panics
///
/// Panics if either sequence is empty or contains non-finite samples. See
/// [`try_sbd_unequal`] for the fallible variant.
#[must_use]
#[deprecated(
    since = "0.1.0",
    note = "use Sbd::distance with SbdOptions — it shares the bounded plan cache"
)]
pub fn sbd_unequal(x: &[f64], y: &[f64]) -> SbdResult {
    assert!(
        !x.is_empty() && !y.is_empty(),
        "SBD requires non-empty sequences"
    );
    #[allow(deprecated)]
    try_sbd_unequal(x, y).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible unequal-length SBD: validates once up front, never panics.
///
/// # Errors
///
/// [`TsError::EmptyInput`] when either sequence is empty,
/// [`TsError::NonFinite`] on NaN/infinite samples.
#[deprecated(
    since = "0.1.0",
    note = "use Sbd::distance with SbdOptions — it shares the bounded plan cache"
)]
pub fn try_sbd_unequal(x: &[f64], y: &[f64]) -> TsResult<SbdResult> {
    if x.is_empty() || y.is_empty() {
        return Err(TsError::EmptyInput);
    }
    ensure_finite(x, 0)?;
    ensure_finite(y, 1)?;
    if x.len() == y.len() {
        return try_sbd(x, y);
    }
    Ok(unequal_with_plan(&SbdPlan::new(x.len().max(y.len())), x, y))
}

/// Shared core of the free and plan-cached unequal-length SBD paths.
///
/// Inputs are validated (non-empty, finite) and `plan` serves the longer
/// length, so its padding covers the full `nx + ny − 1` lag range. All
/// transform work routes through the plan's real-FFT spectrum machinery —
/// there is no private pad-and-transform path left in this module.
pub(crate) fn unequal_with_plan(plan: &SbdPlan, x: &[f64], y: &[f64]) -> SbdResult {
    let (x_r0, y_r0) = (autocorr0(x), autocorr0(y));
    if (x_r0 * y_r0).sqrt() == 0.0 {
        let both_zero = x_r0 == 0.0 && y_r0 == 0.0;
        let mut aligned = y.to_vec();
        aligned.resize(x.len(), 0.0);
        return SbdResult {
            dist: if both_zero { 0.0 } else { 1.0 },
            shift: 0,
            aligned,
        };
    }
    let (nx, ny) = (x.len(), y.len());
    let (px, py) = (plan.prepare_padded(x), plan.prepare_padded(y));
    let mut scratch = SbdScratch::default();
    let mut cc = Vec::new();
    let (dist, shift) =
        unequal_dist_shift(plan, &px, nx, x_r0, &py, ny, y_r0, &mut cc, &mut scratch);
    let mut aligned = vec![0.0; nx];
    place_into_frame(y, shift, &mut aligned);
    SbdResult {
        dist,
        shift,
        aligned,
    }
}

/// Distance-and-shift core of [`unequal_with_plan`] over already-padded
/// spectra, with every buffer caller-owned and no aligned copy built.
///
/// The out-of-core ragged sweep calls this once per `(row, centroid)`
/// pair — centroid spectra and autocorrelations are hoisted per
/// iteration, the row's per sweep — and materializes the aligned frame
/// only for the winning centroid via [`place_into_frame`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn unequal_dist_shift(
    plan: &SbdPlan,
    px: &crate::sbd::PreparedSeries,
    nx: usize,
    x_r0: f64,
    py: &crate::sbd::PreparedSeries,
    ny: usize,
    y_r0: f64,
    cc: &mut Vec<f64>,
    scratch: &mut SbdScratch,
) -> (f64, isize) {
    let denom = (x_r0 * y_r0).sqrt();
    if denom == 0.0 {
        let both_zero = x_r0 == 0.0 && y_r0 == 0.0;
        return (if both_zero { 0.0 } else { 1.0 }, 0);
    }
    plan.cross_correlate_padded(px, nx, py, ny, cc, scratch);
    let (best_idx, best) = cc
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty correlation");
    let shift = best_idx as isize - (ny as isize - 1);
    (1.0 - best / denom, shift)
}

/// Places `y` into the (possibly longer) frame `out` at offset `shift`,
/// zero-filling everything `y` does not cover — the alignment rule of
/// [`unequal_with_plan`], shared with the out-of-core ragged Gram fold.
pub(crate) fn place_into_frame(y: &[f64], shift: isize, out: &mut [f64]) {
    let n = out.len();
    out.fill(0.0);
    for (l, &v) in y.iter().enumerate() {
        let t = l as isize + shift;
        if (0..n as isize).contains(&t) {
            out[t as usize] = v;
        }
    }
}

/// Uniform-scaling SBD: stretches the shorter sequence to the longer
/// length with linear interpolation (Section 2.2's "uniform scaling
/// invariance"), then compares with the equal-length SBD.
///
/// # Panics
///
/// Panics if either sequence is empty or contains non-finite samples. See
/// [`try_sbd_rescaled`] for the fallible variant.
#[must_use]
#[deprecated(
    since = "0.1.0",
    note = "use Sbd::distance with SbdOptions::new().with_rescale(true)"
)]
pub fn sbd_rescaled(x: &[f64], y: &[f64]) -> SbdResult {
    assert!(
        !x.is_empty() && !y.is_empty(),
        "SBD requires non-empty sequences"
    );
    #[allow(deprecated)]
    try_sbd_rescaled(x, y).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible uniform-scaling SBD.
///
/// # Errors
///
/// [`TsError::EmptyInput`] or [`TsError::NonFinite`].
#[deprecated(
    since = "0.1.0",
    note = "use Sbd::distance with SbdOptions::new().with_rescale(true)"
)]
pub fn try_sbd_rescaled(x: &[f64], y: &[f64]) -> TsResult<SbdResult> {
    if x.is_empty() || y.is_empty() {
        return Err(TsError::EmptyInput);
    }
    ensure_finite(x, 0)?;
    ensure_finite(y, 1)?;
    let target = x.len().max(y.len());
    let xs;
    let ys;
    let (xr, yr): (&[f64], &[f64]) = if x.len() == target {
        ys = resample(y, target);
        (x, &ys)
    } else {
        xs = resample(x, target);
        (&xs, y)
    };
    try_sbd(xr, yr)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::{sbd_rescaled, sbd_unequal};
    use crate::sbd::sbd;
    use tsdata::distort::resample;
    use tsdata::normalize::z_normalize;

    fn bump(m: usize, center: f64, width: f64) -> Vec<f64> {
        (0..m)
            .map(|i| (-((i as f64 - center) / width).powi(2)).exp())
            .collect()
    }

    #[test]
    fn equal_lengths_delegate_to_plain_sbd() {
        let x = bump(32, 12.0, 3.0);
        let y = bump(32, 18.0, 3.0);
        let a = sbd_unequal(&x, &y);
        let b = sbd(&x, &y);
        assert!((a.dist - b.dist).abs() < 1e-12);
        assert_eq!(a.shift, b.shift);
    }

    #[test]
    fn finds_sub_sequence() {
        // y is a clean window of x: distance near the window's share of
        // energy, shift recovering the window offset.
        let x = bump(64, 30.0, 4.0);
        let y = x[22..46].to_vec();
        let r = sbd_unequal(&x, &y);
        assert_eq!(r.shift, 22);
        assert!(r.dist < 0.05, "dist {}", r.dist);
        assert_eq!(r.aligned.len(), 64);
        // The aligned copy overlays the original window.
        for (t, &v) in r.aligned.iter().enumerate() {
            if (22..46).contains(&t) {
                assert!((v - x[t]).abs() < 1e-12);
            } else {
                assert_eq!(v, 0.0);
            }
        }
    }

    #[test]
    fn distance_range_holds() {
        let x = bump(40, 10.0, 2.0);
        let y: Vec<f64> = (0..23).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let d = sbd_unequal(&x, &y).dist;
        assert!((0.0..=2.0 + 1e-9).contains(&d));
        // Swapped arguments give the same distance (negated lags).
        let d2 = sbd_unequal(&y, &x).dist;
        assert!((d - d2).abs() < 1e-9);
    }

    #[test]
    fn rescaled_recognizes_uniformly_stretched_copy() {
        // y is x at 2x the sampling rate: uniform scaling invariance.
        let x = z_normalize(&bump(48, 20.0, 4.0));
        let y = resample(&x, 96);
        let r = sbd_rescaled(&x, &y);
        assert!(r.dist < 0.01, "dist {}", r.dist);
    }

    #[test]
    fn zero_energy_edge_cases() {
        let z = vec![0.0; 8];
        let x = bump(12, 6.0, 2.0);
        assert_eq!(sbd_unequal(&z, &x).dist, 1.0);
        assert_eq!(sbd_unequal(&z, &[0.0; 5]).dist, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty() {
        let _ = sbd_unequal(&[], &[1.0]);
    }

    #[test]
    fn cached_sbd_matches_free_function_and_shares_plans() {
        use crate::sbd::Sbd;
        let x = bump(64, 30.0, 4.0);
        let y = x[22..46].to_vec();
        let sbd_cached = Sbd::new();
        let a = sbd_cached.try_sbd_unequal(&x, &y).expect("clean data");
        let b = sbd_unequal(&x, &y);
        assert_eq!(a.shift, b.shift);
        assert!((a.dist - b.dist).abs() < 1e-15);
        assert_eq!(a.aligned, b.aligned);
        // The plan is cached under the longer length — the same key the
        // equal-length hot path uses for length-64 series.
        assert!(sbd_cached.has_cached_plan_for(64));
        assert_eq!(sbd_cached.cache_stats().misses, 1);
        let _ = sbd_cached.try_sbd_unequal(&x, &y).expect("clean data");
        assert_eq!(sbd_cached.cache_stats().hits, 1);
        // Equal lengths through the cached entry agree with `sbd`.
        let z = bump(64, 40.0, 5.0);
        let eq = sbd_cached.try_sbd_unequal(&x, &z).expect("clean data");
        let plain = sbd(&x, &z);
        assert_eq!(eq.shift, plain.shift);
        assert!((eq.dist - plain.dist).abs() < 1e-15);
    }

    #[test]
    fn padded_plan_correlation_matches_naive() {
        use crate::sbd::{SbdPlan, SbdScratch};
        use tsfft::unequal::cross_correlate_unequal_naive;
        let x = bump(40, 10.0, 2.0);
        let y: Vec<f64> = (0..23).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let plan = SbdPlan::new(40);
        let (px, py) = (plan.prepare_padded(&x), plan.prepare_padded(&y));
        let mut cc = Vec::new();
        let mut scratch = SbdScratch::default();
        plan.cross_correlate_padded(&px, 40, &py, 23, &mut cc, &mut scratch);
        let naive = cross_correlate_unequal_naive(&x, &y);
        assert_eq!(cc.len(), naive.len());
        for (i, (a, b)) in cc.iter().zip(naive.iter()).enumerate() {
            assert!((a - b).abs() < 1e-9, "lag {i}: {a} vs {b}");
        }
    }

    #[test]
    fn try_variants_report_typed_errors_and_match() {
        use super::{try_sbd_rescaled, try_sbd_unequal};
        use tserror::TsError;
        assert!(matches!(
            try_sbd_unequal(&[], &[1.0]),
            Err(TsError::EmptyInput)
        ));
        assert!(matches!(
            try_sbd_rescaled(&[1.0], &[]),
            Err(TsError::EmptyInput)
        ));
        assert!(matches!(
            try_sbd_unequal(&[1.0, f64::NAN], &[1.0]),
            Err(TsError::NonFinite {
                series: 0,
                index: 1
            })
        ));
        assert!(matches!(
            try_sbd_rescaled(&[1.0, 2.0], &[1.0, f64::INFINITY, 3.0]),
            Err(TsError::NonFinite {
                series: 1,
                index: 1
            })
        ));
        let x = bump(64, 30.0, 4.0);
        let y = x[22..46].to_vec();
        let a = sbd_unequal(&x, &y);
        let b = try_sbd_unequal(&x, &y).expect("clean data");
        assert_eq!(a.shift, b.shift);
        assert!((a.dist - b.dist).abs() < 1e-15);
    }
}
