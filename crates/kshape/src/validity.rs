//! Selecting the number of clusters `k` with intrinsic criteria.
//!
//! The paper takes `k` as given (the class count) and notes in footnote 2
//! that without a gold standard one "can do so by varying k and evaluating
//! clustering quality with criteria that capture information intrinsic to
//! the data alone". This module implements that sweep for k-Shape:
//!
//! * the **silhouette coefficient** under SBD (peaks at the natural k),
//! * the **inertia** curve (monotone decreasing; its elbow marks k).
//!
//! The pairwise SBD matrix is computed once and reused across all k.

use tserror::{validate_series_set, TsError, TsResult};
use tseval::silhouette::silhouette_score;

use crate::algorithm::{KShape, KShapeConfig, KShapeResult};
use crate::multi::try_fit_best;
use crate::spectra::{resolve_threads, SpectraEngine};

/// Evaluation of one candidate cluster count.
#[derive(Debug, Clone)]
pub struct KCandidate {
    /// The candidate number of clusters.
    pub k: usize,
    /// Mean silhouette coefficient under SBD (higher is better).
    pub silhouette: f64,
    /// Best-of-restarts k-Shape objective (Σ SBD² to centroids).
    pub inertia: f64,
    /// The clustering that produced these scores.
    pub result: KShapeResult,
}

/// Sweeps `k` over `k_range`, fitting k-Shape with `restarts` restarts per
/// candidate, and returns one [`KCandidate`] per k in ascending order.
///
/// # Panics
///
/// Panics if `series` is empty or ragged, the range is empty, or any
/// candidate `k` is 0 or exceeds the number of series. See [`try_sweep_k`]
/// for the fallible variant.
#[must_use]
pub fn sweep_k(
    series: &[Vec<f64>],
    k_range: std::ops::RangeInclusive<usize>,
    restarts: usize,
    seed: u64,
) -> Vec<KCandidate> {
    try_sweep_k(series, k_range, restarts, seed).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible k-sweep: validates input once up front and never panics.
///
/// # Errors
///
/// [`TsError::EmptyInput`] for an empty series set or empty `k_range`,
/// [`TsError::LengthMismatch`]/[`TsError::NonFinite`] for malformed
/// series, and [`TsError::InvalidK`] when a candidate `k` exceeds the
/// number of series.
pub fn try_sweep_k(
    series: &[Vec<f64>],
    k_range: std::ops::RangeInclusive<usize>,
    restarts: usize,
    seed: u64,
) -> TsResult<Vec<KCandidate>> {
    let m = validate_series_set(series)?;
    if k_range.is_empty() {
        return Err(TsError::EmptyInput);
    }

    // Pairwise SBD matrix, computed once over the spectrum cache: one
    // forward rFFT per series, one batched kernel per pair.
    let n = series.len();
    let dmat = SpectraEngine::from_validated(series, m, resolve_threads(0)).matrix();

    k_range
        .map(|k| {
            let cfg = KShapeConfig {
                k,
                seed: seed.wrapping_add(k as u64 * 7919),
                ..Default::default()
            };
            let result = if restarts > 1 {
                try_fit_best(&cfg, series, restarts)?
            } else {
                KShape::new(cfg)
                    .fit_core(series, &tsrun::RunControl::unlimited(), tsobs::Obs::none())?
                    .0
            };
            let silhouette = silhouette_score(&result.labels, |i, j| dmat[i * n + j]);
            Ok(KCandidate {
                k,
                silhouette,
                inertia: result.inertia,
                result,
            })
        })
        .collect()
}

/// Picks the candidate with the highest silhouette from a sweep.
///
/// # Panics
///
/// Panics if `candidates` is empty.
#[must_use]
pub fn best_by_silhouette(candidates: &[KCandidate]) -> &KCandidate {
    try_best_by_silhouette(candidates).unwrap_or_else(|e| panic!("{e}: at least one candidate"))
}

/// Fallible counterpart of [`best_by_silhouette`].
///
/// # Errors
///
/// [`TsError::EmptyInput`] when `candidates` is empty.
pub fn try_best_by_silhouette(candidates: &[KCandidate]) -> TsResult<&KCandidate> {
    candidates
        .iter()
        .max_by(|a, b| a.silhouette.total_cmp(&b.silhouette))
        .ok_or(TsError::EmptyInput)
}

#[cfg(test)]
mod tests {
    use super::{best_by_silhouette, sweep_k};
    use tsdata::normalize::z_normalize;

    /// Three well-separated shape classes with mild phase jitter.
    fn three_class_series() -> Vec<Vec<f64>> {
        let m = 64usize;
        let mut out = Vec::new();
        for j in 0..6 {
            let shift = j as f64 - 2.5;
            // Narrow early bump.
            out.push(z_normalize(
                &(0..m)
                    .map(|i| (-((i as f64 - 14.0 - shift) / 2.0).powi(2)).exp())
                    .collect::<Vec<_>>(),
            ));
            // Negative wide late bump.
            out.push(z_normalize(
                &(0..m)
                    .map(|i| -(-((i as f64 - 44.0 - shift) / 5.0).powi(2)).exp())
                    .collect::<Vec<_>>(),
            ));
            // Two-bump pattern.
            out.push(z_normalize(
                &(0..m)
                    .map(|i| {
                        (-((i as f64 - 16.0 - shift) / 3.0).powi(2)).exp()
                            + (-((i as f64 - 46.0 - shift) / 3.0).powi(2)).exp()
                    })
                    .collect::<Vec<_>>(),
            ));
        }
        out
    }

    #[test]
    fn sweep_recovers_true_k() {
        let series = three_class_series();
        let candidates = sweep_k(&series, 2..=5, 3, 11);
        assert_eq!(candidates.len(), 4);
        let best = best_by_silhouette(&candidates);
        assert_eq!(
            best.k,
            3,
            "silhouettes: {:?}",
            candidates
                .iter()
                .map(|c| (c.k, c.silhouette))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn inertia_decreases_with_k() {
        let series = three_class_series();
        let candidates = sweep_k(&series, 2..=6, 2, 3);
        for w in candidates.windows(2) {
            assert!(
                w[1].inertia <= w[0].inertia + 0.15,
                "inertia should broadly decrease: k={} {:.3} -> k={} {:.3}",
                w[0].k,
                w[0].inertia,
                w[1].k,
                w[1].inertia
            );
        }
    }

    #[test]
    fn candidates_carry_consistent_results() {
        let series = three_class_series();
        let candidates = sweep_k(&series, 2..=3, 1, 5);
        for c in &candidates {
            assert_eq!(c.result.labels.len(), series.len());
            assert!(c.result.labels.iter().all(|&l| l < c.k));
            assert!((-1.0..=1.0).contains(&c.silhouette));
        }
    }

    #[test]
    fn try_sweep_reports_typed_errors() {
        use super::{try_best_by_silhouette, try_sweep_k};
        use tserror::TsError;
        assert!(matches!(
            try_sweep_k(&[], 2..=3, 1, 0),
            Err(TsError::EmptyInput)
        ));
        let series = three_class_series();
        #[allow(clippy::reversed_empty_ranges)]
        let empty_range = try_sweep_k(&series, 5..=2, 1, 0);
        assert!(matches!(empty_range, Err(TsError::EmptyInput)));
        let too_many = try_sweep_k(&series, 2..=series.len() + 1, 1, 0);
        assert!(matches!(too_many, Err(TsError::InvalidK { .. })));
        assert!(matches!(
            try_best_by_silhouette(&[]),
            Err(TsError::EmptyInput)
        ));
        // Clean sweep agrees with the panicking API.
        let a = sweep_k(&series, 2..=3, 2, 11);
        let b = try_sweep_k(&series, 2..=3, 2, 11).expect("clean data");
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.result.labels, y.result.labels);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_range() {
        let series = three_class_series();
        #[allow(clippy::reversed_empty_ranges)]
        let _ = sweep_k(&series, 5..=2, 1, 0);
    }
}
