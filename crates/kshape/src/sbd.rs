//! The shape-based distance SBD (Equation 9, Algorithm 1).
//!
//! `SBD(x, y) = 1 − max_w NCCc_w(x, y)`, taking values in `[0, 2]` with 0
//! meaning identical shape. Alongside the distance, Algorithm 1 returns the
//! copy of `y` optimally aligned (shifted with zero padding) toward `x`,
//! which shape extraction relies on.
//!
//! Three computation strategies mirror the Table 2 ablation:
//!
//! * [`CorrMethod::FftPow2`] — FFT padded to the next power of two after
//!   `2m − 1` (the production `SBD`),
//! * [`CorrMethod::FftExact`] — Bluestein FFT at exactly `2m − 1`
//!   (`SBD-NoPow2`),
//! * [`CorrMethod::Naive`] — direct O(m²) correlation (`SBD-NoFFT`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use tsdist::Distance;
use tserror::{validate_nonempty_pair, TsError, TsResult};
use tsfft::bluestein::BluesteinFft;
use tsfft::correlate::{
    autocorr0, cross_correlate_bluestein, cross_correlate_fft, cross_correlate_naive,
};
use tsfft::next_pow2;
use tsfft::real::pad_to_complex;
use tsfft::real_plan::RealFftPlan;
use tsfft::Complex;

/// Cross-correlation computation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CorrMethod {
    /// Power-of-two padded FFT (Algorithm 1; the fast default).
    #[default]
    FftPow2,
    /// Bluestein FFT at exact length `2m − 1` (`SBD-NoPow2`).
    FftExact,
    /// Direct O(m²) summation (`SBD-NoFFT`).
    Naive,
}

impl CorrMethod {
    /// The paper's name for the resulting SBD variant.
    #[must_use]
    pub fn sbd_name(self) -> &'static str {
        match self {
            CorrMethod::FftPow2 => "SBD",
            CorrMethod::FftExact => "SBD-NoPow2",
            CorrMethod::Naive => "SBD-NoFFT",
        }
    }
}

/// Output of one SBD computation (Algorithm 1).
#[derive(Debug, Clone)]
pub struct SbdResult {
    /// `1 − max NCCc`, in `[0, 2]`.
    pub dist: f64,
    /// Optimal lag of `y` relative to `x` (positive = `y` delayed).
    pub shift: isize,
    /// `y` shifted by `shift` with zero padding (Equation 5).
    pub aligned: Vec<f64>,
}

/// Computes SBD with the default power-of-two FFT strategy.
///
/// # Example
///
/// ```
/// use kshape::sbd::sbd;
///
/// let x = [0.0, 1.0, 0.0, 0.0, 0.0, 0.0];
/// let y = [0.0, 0.0, 0.0, 1.0, 0.0, 0.0]; // same spike, delayed by 2
/// let r = sbd(&x, &y);
/// assert!(r.dist < 1e-9);      // identical shape …
/// assert_eq!(r.shift, -2);     // … y must be advanced by 2 to match x
/// assert_eq!(r.aligned, x);    // y realigned onto x
/// ```
///
/// # Panics
///
/// Panics if the lengths differ, the inputs are empty, or a sample is
/// non-finite. See [`try_sbd`] for the fallible variant.
#[must_use]
pub fn sbd(x: &[f64], y: &[f64]) -> SbdResult {
    sbd_with(x, y, CorrMethod::FftPow2)
}

/// Fallible SBD with the default power-of-two FFT strategy.
///
/// # Errors
///
/// [`TsError::EmptyInput`], [`TsError::LengthMismatch`], or
/// [`TsError::NonFinite`] describing the first violation.
pub fn try_sbd(x: &[f64], y: &[f64]) -> TsResult<SbdResult> {
    try_sbd_with(x, y, CorrMethod::FftPow2)
}

/// Computes SBD with an explicit correlation strategy.
///
/// Zero-energy edge cases: if both inputs are all-zero the distance is 0
/// (identical); if exactly one is all-zero the distance is 1 (the NCCc
/// sequence is identically zero).
///
/// # Panics
///
/// Panics if the lengths differ, the inputs are empty, or a sample is
/// non-finite. See [`try_sbd_with`] for the fallible variant.
#[must_use]
pub fn sbd_with(x: &[f64], y: &[f64], method: CorrMethod) -> SbdResult {
    assert_eq!(x.len(), y.len(), "SBD requires equal-length sequences");
    assert!(!x.is_empty(), "SBD requires non-empty sequences");
    try_sbd_with(x, y, method).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible SBD with an explicit correlation strategy: validates once up
/// front and never panics.
///
/// # Errors
///
/// [`TsError::EmptyInput`], [`TsError::LengthMismatch`], or
/// [`TsError::NonFinite`] describing the first violation.
pub fn try_sbd_with(x: &[f64], y: &[f64], method: CorrMethod) -> TsResult<SbdResult> {
    validate_nonempty_pair(x, y)?;
    let denom = (autocorr0(x) * autocorr0(y)).sqrt();
    if denom == 0.0 {
        let both_zero = autocorr0(x) == 0.0 && autocorr0(y) == 0.0;
        return Ok(SbdResult {
            dist: if both_zero { 0.0 } else { 1.0 },
            shift: 0,
            aligned: y.to_vec(),
        });
    }
    let cc = match method {
        CorrMethod::FftPow2 => cross_correlate_fft(x, y),
        CorrMethod::FftExact => cross_correlate_bluestein(x, y),
        CorrMethod::Naive => cross_correlate_naive(x, y),
    };
    Ok(finish(x.len(), y, &cc, denom))
}

/// Shared tail of Algorithm 1: normalize, find the peak, align `y`.
fn finish(m: usize, y: &[f64], cc: &[f64], denom: f64) -> SbdResult {
    let mut best_idx = 0usize;
    let mut best = f64::NEG_INFINITY;
    for (i, &v) in cc.iter().enumerate() {
        if v > best {
            best = v;
            best_idx = i;
        }
    }
    let value = best / denom;
    let shift = best_idx as isize - (m as isize - 1);
    SbdResult {
        dist: 1.0 - value,
        shift,
        aligned: tsdata::distort::shift_zero_pad(y, shift),
    }
}

/// A reusable SBD computation plan for a fixed series length.
///
/// Caches the real-input FFT plan ([`RealFftPlan`]) so that comparing one
/// reference against many candidates (the k-Shape assignment step, 1-NN
/// search) pays the planning and one of the two forward transforms only
/// once. Spectra are stored as packed half-spectra (`padded/2 + 1` bins):
/// real inputs have conjugate-symmetric spectra, and the conjugate product
/// of two such spectra stays conjugate symmetric, so the whole SBD pipeline
/// is closed over half-spectra at half the transform cost.
#[derive(Debug)]
pub struct SbdPlan {
    m: usize,
    padded: usize,
    plan: RealFftPlan,
}

/// Reusable buffers for the allocation-free pair kernel
/// [`SbdPlan::sbd_spectra`].
///
/// One scratch per worker thread; the shared [`SbdPlan`] stays immutable.
#[derive(Debug, Default, Clone)]
pub struct SbdScratch {
    corr: Vec<f64>,
    fft: Vec<Complex>,
    /// Cross-channel correlation accumulator for
    /// [`SbdPlan::sbd_spectra_multi`].
    acc: Vec<f64>,
}

impl SbdPlan {
    /// Creates a plan for series of length `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    #[must_use]
    pub fn new(m: usize) -> Self {
        assert!(m > 0, "SBD plan requires a positive length");
        // `2 * m - 1` correlation lags; `max(2)` keeps the m = 1 edge case
        // on a valid (trivial) real-FFT size.
        let padded = next_pow2(2 * m - 1).max(2);
        SbdPlan {
            m,
            padded,
            plan: RealFftPlan::new(padded),
        }
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// [`TsError::EmptyInput`] when `m == 0`.
    pub fn try_new(m: usize) -> TsResult<Self> {
        if m == 0 {
            return Err(TsError::EmptyInput);
        }
        Ok(SbdPlan::new(m))
    }

    /// The series length this plan serves.
    #[inline]
    #[must_use]
    pub fn series_len(&self) -> usize {
        self.m
    }

    /// The padded FFT length backing this plan.
    #[inline]
    #[must_use]
    pub fn padded_len(&self) -> usize {
        self.padded
    }

    /// Precomputes the half-spectrum and energy of a reference series.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the plan length.
    #[must_use]
    pub fn prepare(&self, x: &[f64]) -> PreparedSeries {
        let mut scratch = Vec::new();
        self.prepare_with(x, &mut scratch)
    }

    /// [`Self::prepare`] with a caller-supplied FFT scratch buffer, for
    /// batch spectrum-cache construction without per-series allocation
    /// beyond the cached spectrum itself.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the plan length.
    #[must_use]
    pub fn prepare_with(&self, x: &[f64], scratch: &mut Vec<Complex>) -> PreparedSeries {
        assert_eq!(x.len(), self.m, "series length must match plan");
        let mut spectrum = vec![Complex::ZERO; self.plan.spectrum_len()];
        self.plan.rfft_into(x, &mut spectrum, scratch);
        PreparedSeries {
            spectrum,
            energy: autocorr0(x),
        }
    }

    /// [`Self::prepare_with`] into a caller-owned [`PreparedSeries`] slot —
    /// the fully allocation-free variant for streaming sweeps that prepare
    /// one row at a time from an out-of-core store, where a per-row
    /// spectrum allocation would dominate the pass. The slot's spectrum
    /// buffer is resized once and reused forever after.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the plan length.
    pub fn prepare_into(&self, x: &[f64], slot: &mut PreparedSeries, scratch: &mut Vec<Complex>) {
        assert_eq!(x.len(), self.m, "series length must match plan");
        slot.spectrum.clear();
        slot.spectrum
            .resize(self.plan.spectrum_len(), Complex::ZERO);
        self.plan.rfft_into(x, &mut slot.spectrum, scratch);
        slot.energy = autocorr0(x);
    }

    /// Precomputes the half-spectrum of a series *no longer than* the plan
    /// length, zero-padded on the right — the unequal-length counterpart
    /// of [`Self::prepare`].
    ///
    /// A plan for the longer of two lengths always has enough padding for
    /// their full linear cross-correlation (`padded ≥ 2·m − 1 ≥ nx + ny − 1`
    /// whenever both lengths are at most `m`), so mixed-length workloads
    /// share plans — and the spectrum cache — with the equal-length hot
    /// path at the reference length.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or longer than the plan length.
    #[must_use]
    pub fn prepare_padded(&self, x: &[f64]) -> PreparedSeries {
        assert!(
            !x.is_empty() && x.len() <= self.m,
            "series length {} outside plan range 1..={}",
            x.len(),
            self.m
        );
        let mut spectrum = vec![Complex::ZERO; self.plan.spectrum_len()];
        let mut scratch = Vec::new();
        self.plan.rfft_into(x, &mut spectrum, &mut scratch);
        PreparedSeries {
            spectrum,
            energy: autocorr0(x),
        }
    }

    /// Cross-correlation of two padded-prepared series of original lengths
    /// `nx` and `ny`, written to `out` in lag order `−(ny−1)..=(nx−1)`
    /// (`nx + ny − 1` values) — the unequal-length counterpart of
    /// [`Self::cross_correlate_prepared`], sharing the plan's FFT and
    /// both cached spectra.
    ///
    /// # Panics
    ///
    /// Panics if either length is zero or exceeds the plan length.
    pub fn cross_correlate_padded(
        &self,
        x: &PreparedSeries,
        nx: usize,
        y: &PreparedSeries,
        ny: usize,
        out: &mut Vec<f64>,
        scratch: &mut SbdScratch,
    ) {
        assert!(
            (1..=self.m).contains(&nx) && (1..=self.m).contains(&ny),
            "series lengths ({nx}, {ny}) outside plan range 1..={}",
            self.m
        );
        scratch.corr.resize(self.padded, 0.0);
        self.plan.correlate_spectra_into(
            &x.spectrum,
            &y.spectrum,
            &mut scratch.corr,
            &mut scratch.fft,
        );
        let n = self.padded;
        out.clear();
        out.reserve(nx + ny - 1);
        out.extend((1..ny).rev().map(|k| scratch.corr[n - k]));
        out.extend_from_slice(&scratch.corr[..nx]);
    }

    /// SBD between a prepared reference `x` and a raw candidate `y`.
    ///
    /// # Panics
    ///
    /// Panics if `y.len()` differs from the plan length.
    #[must_use]
    pub fn sbd_prepared(&self, x: &PreparedSeries, y: &[f64]) -> SbdResult {
        assert_eq!(y.len(), self.m, "series length must match plan");
        let prepared_y = self.prepare(y);
        let mut scratch = SbdScratch::default();
        let (dist, shift) = self.sbd_spectra(x, &prepared_y, &mut scratch);
        SbdResult {
            dist,
            shift,
            aligned: tsdata::distort::shift_zero_pad(y, shift),
        }
    }

    /// Distance and optimal shift between two *prepared* series — the
    /// allocation-free kernel of the batched frequency-domain sweep.
    ///
    /// The cost per call is one conjugate multiply over `padded/2 + 1`
    /// bins, one half-size inverse FFT, and one peak scan; neither forward
    /// transform is repeated. Results are bit-identical to
    /// [`Self::sbd_prepared`] on the same inputs.
    #[must_use]
    pub fn sbd_spectra(
        &self,
        x: &PreparedSeries,
        y: &PreparedSeries,
        scratch: &mut SbdScratch,
    ) -> (f64, isize) {
        let denom = (x.energy * y.energy).sqrt();
        if denom == 0.0 {
            let both_zero = x.energy == 0.0 && y.energy == 0.0;
            return (if both_zero { 0.0 } else { 1.0 }, 0);
        }
        scratch.corr.resize(self.padded, 0.0);
        self.plan.correlate_spectra_into(
            &x.spectrum,
            &y.spectrum,
            &mut scratch.corr,
            &mut scratch.fft,
        );
        // Peak scan in unwrapped lag order −(m−1)..=(m−1), i.e. the
        // circular tail `corr[n−(m−1)..]` followed by the head
        // `corr[..m]`, with the same first-maximum tie-breaking as the
        // unplanned path.
        let (m, n) = (self.m, self.padded);
        let mut best = f64::NEG_INFINITY;
        let mut best_idx = 0usize;
        for (i, &v) in scratch.corr[n - (m - 1)..].iter().enumerate() {
            if v > best {
                best = v;
                best_idx = i;
            }
        }
        for (i, &v) in scratch.corr[..m].iter().enumerate() {
            if v > best {
                best = v;
                best_idx = i + (m - 1);
            }
        }
        let shift = best_idx as isize - (m as isize - 1);
        (1.0 - best / denom, shift)
    }

    /// Multichannel SBD over per-channel cached spectra: the distance is
    /// `1 − max_w Σ_ch CC_w(x_ch, y_ch) / √(Σ_ch R₀(x_ch) · Σ_ch R₀(y_ch))`
    /// — summed per-channel cross-correlation under one shared shift,
    /// normalized by the summed channel energies.
    ///
    /// `x` and `y` are per-channel [`PreparedSeries`] slices of equal
    /// length (one entry per channel, every channel at the plan length).
    /// With a single channel this dispatches to [`Self::sbd_spectra`], so
    /// the univariate result is **bit-identical** — the compatibility
    /// guarantee the shape-aware engines rely on.
    ///
    /// # Panics
    ///
    /// Panics if the channel counts differ or are zero.
    #[must_use]
    pub fn sbd_spectra_multi(
        &self,
        x: &[PreparedSeries],
        y: &[PreparedSeries],
        scratch: &mut SbdScratch,
    ) -> (f64, isize) {
        assert_eq!(x.len(), y.len(), "channel counts must match");
        assert!(!x.is_empty(), "at least one channel required");
        if x.len() == 1 {
            return self.sbd_spectra(&x[0], &y[0], scratch);
        }
        let ex: f64 = x.iter().map(PreparedSeries::energy).sum();
        let ey: f64 = y.iter().map(PreparedSeries::energy).sum();
        let denom = (ex * ey).sqrt();
        if denom == 0.0 {
            let both_zero = ex == 0.0 && ey == 0.0;
            return (if both_zero { 0.0 } else { 1.0 }, 0);
        }
        scratch.acc.clear();
        scratch.acc.resize(self.padded, 0.0);
        for (cx, cy) in x.iter().zip(y.iter()) {
            scratch.corr.resize(self.padded, 0.0);
            self.plan.correlate_spectra_into(
                &cx.spectrum,
                &cy.spectrum,
                &mut scratch.corr,
                &mut scratch.fft,
            );
            for (a, &c) in scratch.acc.iter_mut().zip(scratch.corr.iter()) {
                *a += c;
            }
        }
        // Same unwrapped-lag peak scan and tie-breaking as sbd_spectra,
        // over the channel-summed correlation.
        let (m, n) = (self.m, self.padded);
        let mut best = f64::NEG_INFINITY;
        let mut best_idx = 0usize;
        for (i, &v) in scratch.acc[n - (m - 1)..].iter().enumerate() {
            if v > best {
                best = v;
                best_idx = i;
            }
        }
        for (i, &v) in scratch.acc[..m].iter().enumerate() {
            if v > best {
                best = v;
                best_idx = i + (m - 1);
            }
        }
        let shift = best_idx as isize - (m as isize - 1);
        (1.0 - best / denom, shift)
    }

    /// Raw cross-correlation sequence `CC_w(x, y)` of two prepared series,
    /// written to `out` in unwrapped lag order `−(m−1)..=(m−1)` (length
    /// `2m − 1`) — the batched counterpart of
    /// [`tsfft::correlate::cross_correlate_fft`], sharing both forward
    /// transforms through the spectrum cache. Backs [`crate::ncc`]'s
    /// `*_prepared` entry points.
    pub fn cross_correlate_prepared(
        &self,
        x: &PreparedSeries,
        y: &PreparedSeries,
        out: &mut Vec<f64>,
        scratch: &mut SbdScratch,
    ) {
        scratch.corr.resize(self.padded, 0.0);
        self.plan.correlate_spectra_into(
            &x.spectrum,
            &y.spectrum,
            &mut scratch.corr,
            &mut scratch.fft,
        );
        let (m, n) = (self.m, self.padded);
        out.clear();
        out.reserve(2 * m - 1);
        out.extend_from_slice(&scratch.corr[n - (m - 1)..]);
        out.extend_from_slice(&scratch.corr[..m]);
    }
}

/// A reference series preprocessed by [`SbdPlan::prepare`]: the packed
/// half-spectrum of the zero-padded series plus its energy `R₀(x, x)`.
#[derive(Debug, Clone)]
pub struct PreparedSeries {
    spectrum: Vec<Complex>,
    energy: f64,
}

impl PreparedSeries {
    /// An empty slot for [`SbdPlan::prepare_into`]: no spectrum buffer
    /// yet (allocated to the plan's size on first use), zero energy.
    #[must_use]
    pub fn empty() -> Self {
        PreparedSeries {
            spectrum: Vec::new(),
            energy: 0.0,
        }
    }

    /// The series energy `R₀(x, x) = Σ x_i²` captured at preparation time.
    #[inline]
    #[must_use]
    pub fn energy(&self) -> f64 {
        self.energy
    }
}

/// Maximum number of per-length FFT plans each [`Sbd`] instance keeps.
///
/// Multi-length workloads (the unequal-length SBD paths, mixed-archive
/// sweeps) would otherwise grow the plan cache without bound — one
/// `Radix2Fft` per distinct length, each holding O(padded) twiddle
/// tables. Eight lengths cover every workload in the evaluation while
/// bounding worst-case memory; eviction is most-recently-used-first, so
/// the lengths a clustering loop is actively cycling through stay warm.
pub const SBD_PLAN_CACHE_CAP: usize = 8;

/// A bounded most-recently-used plan cache keyed by length.
///
/// Entry 0 is the most recently used; inserts beyond
/// [`SBD_PLAN_CACHE_CAP`] evict from the tail (the least recently used
/// length). Plans are handed out as `Arc`s so the lock is released before
/// any FFT work and concurrent dissimilarity-matrix workers are never
/// serialized on the cache.
#[derive(Debug)]
struct PlanCache<T> {
    entries: Mutex<Vec<(usize, Arc<T>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<T> Default for PlanCache<T> {
    fn default() -> Self {
        PlanCache {
            entries: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }
}

impl<T> PlanCache<T> {
    /// Fetches the plan for `key`, building and installing it on a miss.
    fn get_or_insert(&self, key: usize, build: impl FnOnce() -> T) -> Arc<T> {
        let mut guard = lock_plan_cache(&self.entries);
        if let Some(pos) = guard.iter().position(|(k, _)| *k == key) {
            let entry = guard.remove(pos);
            let plan = Arc::clone(&entry.1);
            guard.insert(0, entry);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return plan;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(build());
        guard.insert(0, (key, Arc::clone(&plan)));
        if guard.len() > SBD_PLAN_CACHE_CAP {
            let evicted = guard.len() - SBD_PLAN_CACHE_CAP;
            guard.truncate(SBD_PLAN_CACHE_CAP);
            self.evictions.fetch_add(evicted as u64, Ordering::Relaxed);
        }
        plan
    }

    /// Number of cached plans (test/diagnostic hook).
    fn len(&self) -> usize {
        lock_plan_cache(&self.entries).len()
    }

    /// Whether `key` currently has a cached plan (test/diagnostic hook).
    fn contains(&self, key: usize) -> bool {
        lock_plan_cache(&self.entries)
            .iter()
            .any(|(k, _)| *k == key)
    }

    /// Snapshot of the cache's lifetime counters and current size.
    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: self.len(),
        }
    }
}

/// Lifetime statistics of a bounded-MRU plan cache, exposed via
/// [`Sbd::cache_stats`].
///
/// Before this accessor existed, the PR 3 cache behaviour (bounded size,
/// MRU retention) was only testable through timing side effects; these
/// counters make hit rates a first-class, assertable quantity and feed
/// the `sbd.cache.*` telemetry counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build a new plan.
    pub misses: u64,
    /// Plans evicted by the bounded-MRU policy.
    pub evictions: u64,
    /// Plans currently resident.
    pub len: usize,
}

impl CacheStats {
    /// Folds another snapshot into this one (summing counters and sizes).
    #[must_use]
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
            len: self.len + other.len,
        }
    }

    /// Hit fraction of all lookups so far (0 when none happened).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Emits the snapshot as `sbd.cache.{hits,misses,evictions,len}`
    /// telemetry counters. Counters are monotonic, so call this once per
    /// distinct `Sbd` instance (e.g. after a matrix build), not per
    /// lookup.
    pub fn emit(&self, obs: tsobs::Obs<'_>) {
        obs.counter("sbd.cache.hits", self.hits);
        obs.counter("sbd.cache.misses", self.misses);
        obs.counter("sbd.cache.evictions", self.evictions);
        obs.counter("sbd.cache.len", self.len as u64);
    }
}

/// Shape options for the unified [`Sbd::distance`] entry point, following
/// the workspace's borrowed-options-object convention
/// (`KShapeOptions`-style): one struct carries every shape knob, and the
/// entry dispatches equal-length, unequal-length, rescaled, and
/// multichannel SBD internally.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SbdOptions {
    /// Channel count both inputs are interpreted with (channel-major
    /// layout, see `tsdata::store::RowShape`). Default 1 — univariate.
    pub channels: usize,
    /// For univariate inputs of *different* lengths: `true` stretches the
    /// shorter to the longer with linear interpolation first (the paper's
    /// Section 2.2 uniform-scaling invariance), `false` (default)
    /// compares them directly over the padded `nx + ny − 1` lag range.
    /// Irrelevant when the lengths match.
    pub rescale: bool,
}

impl Default for SbdOptions {
    fn default() -> Self {
        SbdOptions {
            channels: 1,
            rescale: false,
        }
    }
}

impl SbdOptions {
    /// Univariate defaults (`channels = 1`, no rescaling).
    #[must_use]
    pub fn new() -> Self {
        SbdOptions::default()
    }

    /// Sets the channel count.
    #[must_use]
    pub fn with_channels(mut self, channels: usize) -> Self {
        self.channels = channels;
        self
    }

    /// Enables uniform-scaling rescaling for unequal univariate lengths.
    #[must_use]
    pub fn with_rescale(mut self, rescale: bool) -> Self {
        self.rescale = rescale;
        self
    }
}

/// SBD as a [`Distance`] implementation, pluggable into the generic 1-NN
/// and clustering machinery.
///
/// Internally caches FFT plans per observed length behind a mutex; plan
/// construction is cheap relative to a transform but not free, and the
/// clustering hot paths reuse lengths heavily. The Bluestein variant
/// caches its chirp plans the same way — without it, per-call plan setup
/// would dominate and distort the Table 2 runtime ratios. Both caches are
/// bounded to [`SBD_PLAN_CACHE_CAP`] distinct lengths with
/// most-recently-used retention.
#[derive(Debug, Default)]
pub struct Sbd {
    method: CorrMethod,
    cached: PlanCache<SbdPlan>,
    cached_bluestein: PlanCache<BluesteinFft>,
}

/// Locks a plan-cache mutex, recovering from poisoning.
///
/// A panic in another thread while it held the cache lock (e.g. an
/// assertion inside plan construction) poisons the mutex. The cached plans
/// are pure performance artifacts — they can always be rebuilt from
/// scratch — so instead of propagating the poison panic we clear the
/// poison flag, drop whatever half-installed plans the dead writer left
/// behind, and let the caller rebuild. Deterministic and lossless: the
/// next access pays one extra plan construction.
fn lock_plan_cache<T>(cache: &Mutex<Vec<T>>) -> MutexGuard<'_, Vec<T>> {
    match cache.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            cache.clear_poison();
            let mut guard = poisoned.into_inner();
            guard.clear();
            guard
        }
    }
}

impl Sbd {
    /// SBD with the default power-of-two FFT strategy.
    #[must_use]
    pub fn new() -> Self {
        Sbd::default()
    }

    /// SBD with an explicit correlation strategy (for the Table 2
    /// ablations).
    #[must_use]
    pub fn with_method(method: CorrMethod) -> Self {
        Sbd {
            method,
            ..Sbd::default()
        }
    }

    /// Number of distinct series lengths with a cached plan (across both
    /// the power-of-two and Bluestein caches). Never exceeds
    /// `2 * SBD_PLAN_CACHE_CAP`.
    #[must_use]
    pub fn cached_plan_count(&self) -> usize {
        self.cached.len() + self.cached_bluestein.len()
    }

    /// Whether series length `m` currently has a cached plan.
    #[must_use]
    pub fn has_cached_plan_for(&self, m: usize) -> bool {
        self.cached.contains(m) || (m > 0 && self.cached_bluestein.contains(2 * m - 1))
    }

    /// Combined hit/miss/eviction statistics of the power-of-two and
    /// Bluestein plan caches since this `Sbd` was created.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cached.stats().merged(self.cached_bluestein.stats())
    }

    /// Unequal-length SBD through the bounded plan cache.
    ///
    /// Plans are keyed by the *longer* input's length (whose padding
    /// covers the full `nx + ny − 1` lag range), so repeated queries
    /// against a fixed-length reference set — 1-NN over a mixed archive,
    /// sub-sequence search — hit the same cached plans as the
    /// equal-length hot path. Always uses the power-of-two real-FFT
    /// pipeline regardless of the configured [`CorrMethod`].
    ///
    /// # Errors
    ///
    /// [`TsError::EmptyInput`] when either sequence is empty,
    /// [`TsError::NonFinite`] on NaN/infinite samples.
    pub fn try_sbd_unequal(&self, x: &[f64], y: &[f64]) -> TsResult<SbdResult> {
        if x.is_empty() || y.is_empty() {
            return Err(TsError::EmptyInput);
        }
        tserror::ensure_finite(x, 0)?;
        tserror::ensure_finite(y, 1)?;
        let m = x.len().max(y.len());
        let plan = self.cached.get_or_insert(m, || SbdPlan::new(m));
        if x.len() == y.len() {
            return Ok(plan.sbd_prepared(&plan.prepare(x), y));
        }
        Ok(crate::sbd_unequal::unequal_with_plan(&plan, x, y))
    }

    /// The unified shape-aware SBD entry point: dispatches equal-length,
    /// unequal-length (padded lags or uniform-scaling rescale), and
    /// multichannel SBD from one call, all through the bounded plan
    /// cache.
    ///
    /// With the default [`SbdOptions`] this is exactly the cached
    /// univariate kernel (bit-identical to [`Sbd::try_sbd_unequal`]).
    /// With `channels = c > 1`, both inputs are read channel-major
    /// (`c · m` samples), the distance is the summed per-channel NCC of
    /// [`SbdPlan::sbd_spectra_multi`], and `aligned` holds `y` with every
    /// channel shifted by the shared optimal lag.
    ///
    /// # Errors
    ///
    /// [`TsError::EmptyInput`] when either input is empty,
    /// [`TsError::NonFinite`] on bad samples,
    /// [`TsError::LengthMismatch`] when a length is not a multiple of
    /// `channels` or multichannel inputs differ in length, and
    /// [`TsError::NumericalFailure`] for `channels == 0`.
    pub fn distance(&self, x: &[f64], y: &[f64], opts: &SbdOptions) -> TsResult<SbdResult> {
        if opts.channels == 0 {
            return Err(TsError::NumericalFailure {
                context: "SbdOptions.channels must be at least 1".into(),
            });
        }
        if x.is_empty() || y.is_empty() {
            return Err(TsError::EmptyInput);
        }
        tserror::ensure_finite(x, 0)?;
        tserror::ensure_finite(y, 1)?;
        let c = opts.channels;
        if c == 1 {
            if opts.rescale && x.len() != y.len() {
                // Uniform-scaling invariance: stretch the shorter input,
                // then compare at equal length through the cached plan.
                let target = x.len().max(y.len());
                let stretched;
                let (xr, yr): (&[f64], &[f64]) = if x.len() == target {
                    stretched = tsdata::distort::resample(y, target);
                    (x, &stretched)
                } else {
                    stretched = tsdata::distort::resample(x, target);
                    (&stretched, y)
                };
                let plan = self.cached.get_or_insert(target, || SbdPlan::new(target));
                return Ok(plan.sbd_prepared(&plan.prepare(xr), yr));
            }
            let m = x.len().max(y.len());
            let plan = self.cached.get_or_insert(m, || SbdPlan::new(m));
            if x.len() == y.len() {
                return Ok(plan.sbd_prepared(&plan.prepare(x), y));
            }
            return Ok(crate::sbd_unequal::unequal_with_plan(&plan, x, y));
        }
        if !x.len().is_multiple_of(c) {
            return Err(TsError::LengthMismatch {
                expected: c,
                found: x.len(),
                series: 0,
            });
        }
        if y.len() != x.len() {
            return Err(TsError::LengthMismatch {
                expected: x.len(),
                found: y.len(),
                series: 1,
            });
        }
        let m = x.len() / c;
        let plan = self.cached.get_or_insert(m, || SbdPlan::new(m));
        let mut fft_scratch = Vec::new();
        let px: Vec<PreparedSeries> = x
            .chunks_exact(m)
            .map(|ch| plan.prepare_with(ch, &mut fft_scratch))
            .collect();
        let py: Vec<PreparedSeries> = y
            .chunks_exact(m)
            .map(|ch| plan.prepare_with(ch, &mut fft_scratch))
            .collect();
        let mut scratch = SbdScratch::default();
        let (dist, shift) = plan.sbd_spectra_multi(&px, &py, &mut scratch);
        let mut aligned = Vec::with_capacity(x.len());
        for ch in y.chunks_exact(m) {
            aligned.extend_from_slice(&tsdata::distort::shift_zero_pad(ch, shift));
        }
        Ok(SbdResult {
            dist,
            shift,
            aligned,
        })
    }

    /// Bluestein-based SBD with a cached chirp plan (the `SBD-NoPow2`
    /// hot path).
    fn dist_bluestein(&self, x: &[f64], y: &[f64]) -> f64 {
        let m = x.len();
        let denom = (autocorr0(x) * autocorr0(y)).sqrt();
        if denom == 0.0 || m == 0 {
            return sbd_with(x, y, CorrMethod::FftExact).dist;
        }
        let n = 2 * m - 1;
        let plan = self
            .cached_bluestein
            .get_or_insert(n, || BluesteinFft::new(n));
        let fx = plan.forward(&pad_to_complex(x, n));
        let fy = plan.forward(&pad_to_complex(y, n));
        let prod: Vec<tsfft::Complex> = fx
            .iter()
            .zip(fy.iter())
            .map(|(a, b)| *a * b.conj())
            .collect();
        let c = plan.inverse(&prod);
        let mut cc = Vec::with_capacity(2 * m - 1);
        cc.extend((1..m).rev().map(|k| c[n - k].re));
        cc.extend(c[..m].iter().map(|z| z.re));
        finish(m, y, &cc, denom).dist
    }
}

impl Distance for Sbd {
    fn name(&self) -> String {
        self.method.sbd_name().into()
    }

    fn dist(&self, x: &[f64], y: &[f64]) -> f64 {
        match self.method {
            CorrMethod::FftPow2 => {
                // The cache hands back an Arc with the lock already
                // released, so concurrent dissimilarity-matrix workers are
                // not serialized on the plan cache during FFT work.
                let plan = self.cached.get_or_insert(x.len(), || SbdPlan::new(x.len()));
                let prepared = plan.prepare(x);
                plan.sbd_prepared(&prepared, y).dist
            }
            CorrMethod::FftExact => self.dist_bluestein(x, y),
            CorrMethod::Naive => sbd_with(x, y, CorrMethod::Naive).dist,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{sbd, sbd_with, CorrMethod, Sbd, SbdPlan};
    use tsdata::normalize::z_normalize;
    use tsdist::Distance;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        }
    }

    #[test]
    fn identical_series_distance_zero() {
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.2).sin()).collect();
        let r = sbd(&x, &x);
        assert!(r.dist.abs() < 1e-9);
        assert_eq!(r.shift, 0);
        assert_eq!(r.aligned, x);
    }

    #[test]
    fn distance_in_range_zero_two() {
        let mut next = lcg(3);
        for _ in 0..30 {
            let x: Vec<f64> = (0..40).map(|_| next()).collect();
            let y: Vec<f64> = (0..40).map(|_| next()).collect();
            let d = sbd(&x, &y).dist;
            assert!((0.0..=2.0 + 1e-12).contains(&d), "{d}");
        }
    }

    #[test]
    fn negation_increases_distance() {
        // Negating a shape can never look *more* similar than the shape
        // itself, and the worst case (m = 1, where no shift can help)
        // reaches the upper bound of 2.
        let bump: Vec<f64> = (0..32)
            .map(|i| (-((i as f64 - 16.0) / 2.0).powi(2)).exp())
            .collect();
        let centered = z_normalize(&bump);
        let neg: Vec<f64> = centered.iter().map(|v| -v).collect();
        let d_self = sbd(&centered, &centered).dist;
        let d_neg = sbd(&centered, &neg).dist;
        assert!(d_neg > d_self + 0.5, "self {d_self}, negated {d_neg}");
        // Single-sample worst case: NCC has one lag with value −1.
        assert!((sbd(&[1.0], &[-1.0]).dist - 2.0).abs() < 1e-12);
    }

    #[test]
    fn scale_invariance() {
        let x: Vec<f64> = (0..50).map(|i| (i as f64 * 0.17).sin()).collect();
        let y: Vec<f64> = (0..50).map(|i| (i as f64 * 0.17 + 0.4).cos()).collect();
        let y5: Vec<f64> = y.iter().map(|v| 5.0 * v).collect();
        assert!((sbd(&x, &y).dist - sbd(&x, &y5).dist).abs() < 1e-10);
    }

    #[test]
    fn shift_recovery_and_alignment() {
        let m = 64;
        let base: Vec<f64> = (0..m)
            .map(|i| (-((i as f64 - 25.0) / 4.0).powi(2)).exp())
            .collect();
        let delayed = tsdata::distort::shift_zero_pad(&base, 7);
        // Aligning `delayed` toward `base` must undo the delay.
        let r = sbd(&base, &delayed);
        assert_eq!(r.shift, -7);
        assert!(r.dist < 0.05, "dist {}", r.dist);
        // The aligned copy should now be very close to base.
        let resid: f64 = r
            .aligned
            .iter()
            .zip(base.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(resid < 1e-6, "resid {resid}");
    }

    #[test]
    fn all_methods_agree() {
        let mut next = lcg(12);
        for &m in &[3usize, 8, 17, 33, 64] {
            let x: Vec<f64> = (0..m).map(|_| next()).collect();
            let y: Vec<f64> = (0..m).map(|_| next()).collect();
            let a = sbd_with(&x, &y, CorrMethod::FftPow2);
            let b = sbd_with(&x, &y, CorrMethod::FftExact);
            let c = sbd_with(&x, &y, CorrMethod::Naive);
            assert!((a.dist - b.dist).abs() < 1e-8, "m={m}");
            assert!((a.dist - c.dist).abs() < 1e-8, "m={m}");
            assert_eq!(a.shift, c.shift, "m={m}");
        }
    }

    #[test]
    fn plan_matches_direct_computation() {
        let mut next = lcg(9);
        let m = 48;
        let plan = SbdPlan::new(m);
        let x: Vec<f64> = (0..m).map(|_| next()).collect();
        let prepared = plan.prepare(&x);
        for _ in 0..10 {
            let y: Vec<f64> = (0..m).map(|_| next()).collect();
            let fast = plan.sbd_prepared(&prepared, &y);
            let slow = sbd(&x, &y);
            assert!((fast.dist - slow.dist).abs() < 1e-9);
            assert_eq!(fast.shift, slow.shift);
        }
    }

    #[test]
    fn zero_energy_edge_cases() {
        let z = vec![0.0; 8];
        let x = vec![1.0; 8];
        assert_eq!(sbd(&z, &z).dist, 0.0);
        assert_eq!(sbd(&z, &x).dist, 1.0);
        assert_eq!(sbd(&x, &z).dist, 1.0);
    }

    #[test]
    fn symmetry_of_distance() {
        let mut next = lcg(77);
        for _ in 0..10 {
            let x: Vec<f64> = (0..30).map(|_| next()).collect();
            let y: Vec<f64> = (0..30).map(|_| next()).collect();
            assert!((sbd(&x, &y).dist - sbd(&y, &x).dist).abs() < 1e-9);
        }
    }

    #[test]
    fn distance_trait_caches_plan_across_lengths() {
        let d = Sbd::new();
        let x: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..16).map(|i| (16 - i) as f64).collect();
        let d1 = d.dist(&x, &y);
        // Different length invalidates the cache and must still work.
        let a: Vec<f64> = (0..24).map(|i| (i as f64).sin()).collect();
        let b: Vec<f64> = (0..24).map(|i| (i as f64).cos()).collect();
        let d2 = d.dist(&a, &b);
        assert!((0.0..=2.0).contains(&d1));
        assert!((0.0..=2.0).contains(&d2));
        // And back to the original length.
        let d3 = d.dist(&x, &y);
        assert!((d1 - d3).abs() < 1e-12);
        assert_eq!(d.name(), "SBD");
        assert_eq!(Sbd::with_method(CorrMethod::Naive).name(), "SBD-NoFFT");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty() {
        let _ = sbd(&[], &[]);
    }

    #[test]
    fn try_sbd_reports_typed_errors_and_matches_sbd() {
        use super::{try_sbd, try_sbd_with, SbdPlan};
        use tserror::TsError;
        assert!(matches!(try_sbd(&[], &[]), Err(TsError::EmptyInput)));
        assert!(matches!(
            try_sbd(&[1.0], &[1.0, 2.0]),
            Err(TsError::LengthMismatch {
                expected: 1,
                found: 2,
                series: 1
            })
        ));
        assert!(matches!(
            try_sbd(&[f64::NAN, 1.0], &[1.0, 2.0]),
            Err(TsError::NonFinite {
                series: 0,
                index: 0
            })
        ));
        assert!(matches!(SbdPlan::try_new(0), Err(TsError::EmptyInput)));
        assert_eq!(SbdPlan::try_new(5).map(|p| p.series_len()), Ok(5));
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.2).sin()).collect();
        let y: Vec<f64> = (0..32).map(|i| (i as f64 * 0.2 + 0.7).cos()).collect();
        let a = sbd(&x, &y);
        let b = try_sbd(&x, &y).expect("clean data");
        assert!((a.dist - b.dist).abs() < 1e-15);
        assert_eq!(a.shift, b.shift);
        for method in [CorrMethod::FftPow2, CorrMethod::FftExact, CorrMethod::Naive] {
            let c = try_sbd_with(&x, &y, method).expect("clean data");
            assert!((a.dist - c.dist).abs() < 1e-8);
        }
    }

    /// Regression test for the cached-plan lock poisoning: a thread that
    /// panics while holding the cache lock must not take every future
    /// `Sbd::dist` call down with it — the cache is rebuilt instead.
    #[test]
    fn recovers_from_poisoned_plan_caches() {
        use std::sync::Arc;

        let x: Vec<f64> = (0..16).map(|i| (i as f64 * 0.3).sin()).collect();
        let y: Vec<f64> = (0..16).map(|i| (i as f64 * 0.3 + 0.5).cos()).collect();

        // Pow2 plan cache.
        let d = Arc::new(Sbd::new());
        let before = d.dist(&x, &y); // install a plan
        let d2 = Arc::clone(&d);
        let handle = std::thread::spawn(move || {
            let _guard = d2.cached.entries.lock().unwrap();
            panic!("poisoning the SBD plan lock on purpose");
        });
        assert!(handle.join().is_err(), "the poisoner must have panicked");
        assert!(d.cached.entries.is_poisoned(), "lock should be poisoned");
        let after = d.dist(&x, &y);
        assert!(
            (before - after).abs() < 1e-15,
            "distance must survive poisoning"
        );
        assert!(
            !d.cached.entries.is_poisoned(),
            "poison flag should be cleared"
        );

        // Bluestein chirp-plan cache.
        let b = Arc::new(Sbd::with_method(CorrMethod::FftExact));
        let before = b.dist(&x, &y);
        let b2 = Arc::clone(&b);
        let handle = std::thread::spawn(move || {
            let _guard = b2.cached_bluestein.entries.lock().unwrap();
            panic!("poisoning the Bluestein plan lock on purpose");
        });
        assert!(handle.join().is_err());
        assert!(b.cached_bluestein.entries.is_poisoned());
        let after = b.dist(&x, &y);
        assert!((before - after).abs() < 1e-15);
        assert!(!b.cached_bluestein.entries.is_poisoned());
    }

    /// Regression test for the bounded plan cache: feeding many distinct
    /// lengths through one `Sbd` must never grow the cache past
    /// [`super::SBD_PLAN_CACHE_CAP`], and the most recently used lengths
    /// must be the ones retained.
    #[test]
    fn plan_cache_is_bounded_with_mru_retention() {
        use super::SBD_PLAN_CACHE_CAP;

        let d = Sbd::new();
        let lengths: Vec<usize> = (4..4 + 3 * SBD_PLAN_CACHE_CAP).collect();
        for &m in &lengths {
            let x: Vec<f64> = (0..m).map(|i| (i as f64 * 0.31).sin()).collect();
            let y: Vec<f64> = (0..m).map(|i| (i as f64 * 0.31 + 0.4).cos()).collect();
            let dist = d.dist(&x, &y);
            assert!((0.0..=2.0 + 1e-12).contains(&dist));
            assert!(
                d.cached_plan_count() <= SBD_PLAN_CACHE_CAP,
                "cache grew to {} (cap {})",
                d.cached_plan_count(),
                SBD_PLAN_CACHE_CAP
            );
        }
        // The last CAP lengths are exactly the retained ones.
        for &m in &lengths[lengths.len() - SBD_PLAN_CACHE_CAP..] {
            assert!(d.has_cached_plan_for(m), "recent length {m} evicted");
        }
        assert!(!d.has_cached_plan_for(lengths[0]), "oldest length retained");

        // Re-touching an old length reinstalls it at the front …
        let m0 = lengths[0];
        let x: Vec<f64> = (0..m0).map(|i| i as f64).collect();
        let _ = d.dist(&x, &x);
        assert!(d.has_cached_plan_for(m0));
        assert!(d.cached_plan_count() <= SBD_PLAN_CACHE_CAP);

        // … and the Bluestein cache obeys the same cap.
        let b = Sbd::with_method(CorrMethod::FftExact);
        for &m in &lengths {
            let x: Vec<f64> = (0..m).map(|i| (i as f64 * 0.17).sin()).collect();
            let _ = b.dist(&x, &x);
            assert!(b.cached_plan_count() <= SBD_PLAN_CACHE_CAP);
        }
    }

    #[test]
    fn distance_univariate_is_bit_identical_to_cached_kernel() {
        use super::SbdOptions;
        let d = Sbd::new();
        let x: Vec<f64> = (0..48).map(|i| (i as f64 * 0.23).sin()).collect();
        let y: Vec<f64> = (0..48).map(|i| (i as f64 * 0.23 + 0.9).cos()).collect();
        let short: Vec<f64> = y[10..31].to_vec();
        let opts = SbdOptions::new();
        // Equal lengths.
        let a = d.distance(&x, &y, &opts).unwrap();
        let b = d.try_sbd_unequal(&x, &y).unwrap();
        assert_eq!(a.dist.to_bits(), b.dist.to_bits());
        assert_eq!(a.shift, b.shift);
        assert_eq!(a.aligned, b.aligned);
        // Unequal lengths route through the padded-plan path.
        let a = d.distance(&x, &short, &opts).unwrap();
        let b = d.try_sbd_unequal(&x, &short).unwrap();
        assert_eq!(a.dist.to_bits(), b.dist.to_bits());
        assert_eq!(a.shift, b.shift);
        // Rescale stretches the shorter input first.
        let r = d
            .distance(&x, &short, &SbdOptions::new().with_rescale(true))
            .unwrap();
        assert_eq!(r.aligned.len(), 48);
        assert!((0.0..=2.0 + 1e-9).contains(&r.dist));
    }

    #[test]
    fn distance_multichannel_is_summed_per_channel_ncc() {
        use super::SbdOptions;
        use tsfft::correlate::cross_correlate_naive;
        let mut next = lcg(41);
        let (c, m) = (3usize, 24usize);
        let x: Vec<f64> = (0..c * m).map(|_| next()).collect();
        let y: Vec<f64> = (0..c * m).map(|_| next()).collect();
        let d = Sbd::new();
        let got = d
            .distance(&x, &y, &SbdOptions::new().with_channels(c))
            .unwrap();
        // Reference: naive per-channel cross-correlation, summed across
        // channels, normalized by summed energies.
        let mut summed = vec![0.0f64; 2 * m - 1];
        let (mut ex, mut ey) = (0.0f64, 0.0f64);
        for ch in 0..c {
            let xc = &x[ch * m..(ch + 1) * m];
            let yc = &y[ch * m..(ch + 1) * m];
            ex += super::autocorr0(xc);
            ey += super::autocorr0(yc);
            for (s, v) in summed.iter_mut().zip(cross_correlate_naive(xc, yc)) {
                *s += v;
            }
        }
        let denom = (ex * ey).sqrt();
        let (best_idx, best) = summed
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        let want_dist = 1.0 - best / denom;
        let want_shift = best_idx as isize - (m as isize - 1);
        assert!(
            (got.dist - want_dist).abs() < 1e-9,
            "{} vs {want_dist}",
            got.dist
        );
        assert_eq!(got.shift, want_shift);
        // Symmetric in its arguments.
        let rev = d
            .distance(&y, &x, &SbdOptions::new().with_channels(c))
            .unwrap();
        assert!((got.dist - rev.dist).abs() < 1e-9);
        // Aligned output shifts every channel by the shared lag.
        assert_eq!(got.aligned.len(), c * m);
        for ch in 0..c {
            let want = tsdata::distort::shift_zero_pad(&y[ch * m..(ch + 1) * m], got.shift);
            assert_eq!(&got.aligned[ch * m..(ch + 1) * m], &want[..]);
        }
    }

    #[test]
    fn distance_single_channel_multi_kernel_is_bit_identical() {
        use super::{SbdOptions, SbdScratch};
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.19).sin()).collect();
        let y: Vec<f64> = (0..32).map(|i| (i as f64 * 0.19 + 0.3).cos()).collect();
        let plan = SbdPlan::new(32);
        let (px, py) = (plan.prepare(&x), plan.prepare(&y));
        let mut scratch = SbdScratch::default();
        let uni = plan.sbd_spectra(&px, &py, &mut scratch);
        let multi = plan.sbd_spectra_multi(
            std::slice::from_ref(&px),
            std::slice::from_ref(&py),
            &mut scratch,
        );
        assert_eq!(uni.0.to_bits(), multi.0.to_bits());
        assert_eq!(uni.1, multi.1);
        // And through the options entry with channels = 1.
        let d = Sbd::new();
        let a = d.distance(&x, &y, &SbdOptions::new()).unwrap();
        assert_eq!(a.dist.to_bits(), uni.0.to_bits());
    }

    #[test]
    fn distance_rejects_bad_shapes() {
        use super::SbdOptions;
        use tserror::TsError;
        let d = Sbd::new();
        let x = vec![1.0; 6];
        assert!(matches!(
            d.distance(&x, &x, &SbdOptions::new().with_channels(0)),
            Err(TsError::NumericalFailure { .. })
        ));
        assert!(matches!(
            d.distance(&[], &x, &SbdOptions::new()),
            Err(TsError::EmptyInput)
        ));
        // Length not divisible by the channel count.
        assert!(matches!(
            d.distance(&x[..5], &x[..5], &SbdOptions::new().with_channels(2)),
            Err(TsError::LengthMismatch { .. })
        ));
        // Multichannel inputs must agree in total length.
        assert!(matches!(
            d.distance(&x, &x[..4], &SbdOptions::new().with_channels(2)),
            Err(TsError::LengthMismatch { .. })
        ));
        assert!(matches!(
            d.distance(&[1.0, f64::NAN], &[1.0, 2.0], &SbdOptions::new()),
            Err(TsError::NonFinite { .. })
        ));
    }

    /// The `CacheStats` accessor makes hit/miss/eviction behaviour
    /// directly assertable instead of inferable from timing.
    #[test]
    fn cache_stats_count_hits_misses_and_evictions() {
        use super::{CacheStats, SBD_PLAN_CACHE_CAP};

        let d = Sbd::new();
        assert_eq!(d.cache_stats(), CacheStats::default());
        assert_eq!(d.cache_stats().hit_rate(), 0.0);

        let x: Vec<f64> = (0..16).map(|i| (i as f64 * 0.3).sin()).collect();
        let y: Vec<f64> = (0..16).map(|i| (i as f64 * 0.3 + 0.5).cos()).collect();

        // First call on a fresh length: one miss, no hit, no eviction.
        let _ = d.dist(&x, &y);
        let s = d.cache_stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.len), (0, 1, 0, 1));

        // Same length again: pure hits from here on.
        let _ = d.dist(&x, &y);
        let _ = d.dist(&y, &x);
        let s = d.cache_stats();
        assert_eq!((s.hits, s.misses, s.len), (2, 1, 1));
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);

        // Overflow the cache: evictions become observable.
        for m in 4..(4 + 2 * SBD_PLAN_CACHE_CAP) {
            let z: Vec<f64> = (0..m).map(|i| (i as f64 * 0.21).sin()).collect();
            let _ = d.dist(&z, &z);
        }
        let s = d.cache_stats();
        assert!(s.evictions > 0, "expected evictions, got {s:?}");
        assert!(s.len <= SBD_PLAN_CACHE_CAP);

        // Stats emit as telemetry counters under the sbd.cache.* names.
        let sink = tsobs::MemorySink::new();
        s.emit(tsobs::Obs::new(&sink));
        assert_eq!(sink.counter_total("sbd.cache.hits"), s.hits);
        assert_eq!(sink.counter_total("sbd.cache.misses"), s.misses);
        assert_eq!(sink.counter_total("sbd.cache.evictions"), s.evictions);
        assert_eq!(sink.counter_total("sbd.cache.len"), s.len as u64);
    }
}
