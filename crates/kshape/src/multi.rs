//! Multi-restart driver for k-Shape.
//!
//! k-Shape, like k-means, converges to a local optimum that depends on the
//! random initialization. The paper reports the average Rand index over 10
//! random runs; practical users usually want the *best* run instead. This
//! module provides both: run `n_restarts` independent fits and either keep
//! the lowest-inertia result or return all of them.

use tserror::{TsError, TsResult};
use tsrun::RunControl;

use crate::algorithm::{KShape, KShapeConfig, KShapeResult};

/// Runs k-Shape `n_restarts` times with seeds `base_seed..base_seed + r`
/// and returns every result, in seed order.
///
/// # Panics
///
/// Panics if `n_restarts == 0` or on invalid clustering input (see
/// [`KShape::fit_with`]).
#[must_use]
pub fn fit_restarts(
    config: &KShapeConfig,
    series: &[Vec<f64>],
    n_restarts: usize,
) -> Vec<KShapeResult> {
    assert!(n_restarts > 0, "need at least one restart");
    try_fit_restarts(config, series, n_restarts).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible multi-restart driver: validates once and never panics.
///
/// Individual restarts that stop at `max_iter` without converging are
/// *not* an error here — the per-run `converged` flag reports them — so
/// the restart sweep can still pick the best local optimum.
///
/// # Errors
///
/// [`TsError::EmptyInput`] when `n_restarts == 0`, plus every validation
/// error of [`KShape::fit_with`].
pub fn try_fit_restarts(
    config: &KShapeConfig,
    series: &[Vec<f64>],
    n_restarts: usize,
) -> TsResult<Vec<KShapeResult>> {
    try_fit_restarts_with_control(config, series, n_restarts, &RunControl::unlimited())
}

/// Budget- and cancellation-aware variant of [`try_fit_restarts`]: every
/// restart polls the same shared `ctrl`, so one deadline bounds the whole
/// sweep.
///
/// # Errors
///
/// Same as [`try_fit_restarts`], plus [`TsError::Stopped`] (carrying the
/// interrupted restart's best labels) when the control trips.
pub fn try_fit_restarts_with_control(
    config: &KShapeConfig,
    series: &[Vec<f64>],
    n_restarts: usize,
    ctrl: &RunControl,
) -> TsResult<Vec<KShapeResult>> {
    if n_restarts == 0 {
        return Err(TsError::EmptyInput);
    }
    (0..n_restarts)
        .map(|r| {
            let cfg = KShapeConfig {
                seed: config.seed.wrapping_add(r as u64),
                ..*config
            };
            KShape::new(cfg)
                .fit_core(series, ctrl, tsobs::Obs::none())
                .map(|(result, _)| result)
        })
        .collect()
}

/// Runs `n_restarts` fits and keeps the one with the lowest inertia
/// (the Equation 1 objective under SBD).
///
/// # Panics
///
/// Panics if `n_restarts == 0` or on invalid clustering input.
#[must_use]
pub fn fit_best(config: &KShapeConfig, series: &[Vec<f64>], n_restarts: usize) -> KShapeResult {
    assert!(n_restarts > 0, "need at least one restart");
    try_fit_best(config, series, n_restarts).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible best-of-restarts driver.
///
/// # Errors
///
/// Same as [`try_fit_restarts`].
pub fn try_fit_best(
    config: &KShapeConfig,
    series: &[Vec<f64>],
    n_restarts: usize,
) -> TsResult<KShapeResult> {
    try_fit_best_with_control(config, series, n_restarts, &RunControl::unlimited())
}

/// Budget- and cancellation-aware variant of [`try_fit_best`].
///
/// # Errors
///
/// Same as [`try_fit_restarts_with_control`].
pub fn try_fit_best_with_control(
    config: &KShapeConfig,
    series: &[Vec<f64>],
    n_restarts: usize,
    ctrl: &RunControl,
) -> TsResult<KShapeResult> {
    try_fit_restarts_with_control(config, series, n_restarts, ctrl)?
        .into_iter()
        .min_by(|a, b| a.inertia.total_cmp(&b.inertia))
        .ok_or(TsError::EmptyInput)
}

#[cfg(test)]
mod tests {
    use super::{fit_best, fit_restarts};
    use crate::algorithm::KShapeConfig;
    use tsdata::normalize::z_normalize;

    fn data() -> Vec<Vec<f64>> {
        let m = 48;
        let mut out = Vec::new();
        for j in 0..5 {
            let c = 12.0 + j as f64;
            out.push(z_normalize(
                &(0..m)
                    .map(|i| (-((i as f64 - c) / 2.0).powi(2)).exp())
                    .collect::<Vec<_>>(),
            ));
            let c = 34.0 + j as f64;
            out.push(z_normalize(
                &(0..m)
                    .map(|i| -(-((i as f64 - c) / 5.0).powi(2)).exp())
                    .collect::<Vec<_>>(),
            ));
        }
        out
    }

    #[test]
    fn restarts_produce_requested_count() {
        let cfg = KShapeConfig {
            k: 2,
            seed: 1,
            ..Default::default()
        };
        let results = fit_restarts(&cfg, &data(), 4);
        assert_eq!(results.len(), 4);
    }

    #[test]
    fn best_has_minimal_inertia() {
        let cfg = KShapeConfig {
            k: 2,
            seed: 1,
            ..Default::default()
        };
        let series = data();
        let all = fit_restarts(&cfg, &series, 5);
        let best = fit_best(&cfg, &series, 5);
        let min = all.iter().map(|r| r.inertia).fold(f64::INFINITY, f64::min);
        assert!((best.inertia - min).abs() < 1e-12);
    }

    #[test]
    fn restarts_use_distinct_seeds() {
        let cfg = KShapeConfig {
            k: 3,
            seed: 100,
            ..Default::default()
        };
        let results = fit_restarts(&cfg, &data(), 3);
        // At least the iteration counts or labels should not all be
        // identical across seeds on this data — weak but deterministic.
        let first = &results[0].labels;
        let any_different = results[1..].iter().any(|r| &r.labels != first)
            || results
                .windows(2)
                .any(|w| w[0].iterations != w[1].iterations);
        // If all runs land in the same optimum that is fine too; just make
        // sure nothing panicked and shapes are valid.
        for r in &results {
            assert_eq!(r.labels.len(), 10);
        }
        let _ = any_different;
    }

    #[test]
    fn try_variants_match_panicking_ones() {
        use super::{try_fit_best, try_fit_restarts};
        use tserror::TsError;
        let cfg = KShapeConfig {
            k: 2,
            seed: 1,
            ..Default::default()
        };
        let series = data();
        let a = fit_best(&cfg, &series, 3);
        let b = try_fit_best(&cfg, &series, 3).expect("clean data");
        assert_eq!(a.labels, b.labels);
        assert!((a.inertia - b.inertia).abs() < 1e-15);
        assert!(matches!(
            try_fit_restarts(&cfg, &series, 0),
            Err(TsError::EmptyInput)
        ));
        assert!(matches!(
            try_fit_best(&cfg, &[], 2),
            Err(TsError::EmptyInput)
        ));
    }

    #[test]
    #[should_panic(expected = "at least one restart")]
    fn rejects_zero_restarts() {
        let cfg = KShapeConfig {
            k: 2,
            ..Default::default()
        };
        let _ = fit_restarts(&cfg, &data(), 0);
    }
}
