//! Shape extraction — the k-Shape centroid computation (Section 3.2,
//! Algorithm 2).
//!
//! The centroid is the maximizer of the squared normalized
//! cross-correlations to all cluster members (Equation 13). After aligning
//! every member toward the current centroid with SBD, the problem reduces
//! to maximizing the Rayleigh quotient
//!
//! ```text
//! μ* = argmax_μ  (μᵀ M μ) / (μᵀ μ),     M = Qᵀ S Q,
//! S = Σᵢ xᵢ xᵢᵀ,   Q = I − (1/m)·O
//! ```
//!
//! whose solution is the eigenvector of the largest eigenvalue of `M`
//! (Equation 15). The eigenvector's sign is arbitrary; following the
//! reference implementation we keep the orientation closer to the cluster
//! members, and z-normalize the result.

use tsdata::distort::shift_zero_pad_into;
use tsdata::normalize::z_normalize_in_place;
use tserror::{ensure_finite, TsError, TsResult};
use tslinalg::dominant::try_dominant_symmetric_eigen;
use tslinalg::matrix::{dot_unrolled, Matrix};
use tslinalg::power::power_iteration;

use crate::sbd::{SbdPlan, SbdScratch};

/// How the dominant eigenvector of `M` is obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EigenMethod {
    /// Full symmetric eigendecomposition (Householder + QL), as in the
    /// paper's `Eig(M, 1)`.
    #[default]
    Full,
    /// Power iteration — an O(m²)-per-step fast path; `M` is PSD so the
    /// dominant eigenvalue is the largest. Ablation bench material.
    Power,
}

/// Computes the shape-extraction centroid of `members` against the current
/// `reference` centroid (Algorithm 2).
///
/// # Example
///
/// ```
/// use kshape::extraction::{shape_extraction, EigenMethod};
/// use kshape::sbd::sbd;
/// use tsdata::normalize::z_normalize;
///
/// // Phase-shifted copies of one bump; the centroid recovers the bump.
/// let proto: Vec<f64> = z_normalize(
///     &(0..32).map(|i| (-((i as f64 - 16.0) / 2.0).powi(2)).exp()).collect::<Vec<_>>(),
/// );
/// let early = tsdata::distort::shift_zero_pad(&proto, -3);
/// let late = tsdata::distort::shift_zero_pad(&proto, 3);
/// let members: Vec<&[f64]> = vec![&early, &proto, &late];
/// let centroid = shape_extraction(&members, &proto, EigenMethod::Full);
/// assert!(sbd(&proto, &centroid).dist < 0.05);
/// ```
///
/// * An all-zero reference (the k-Shape initial state) skips alignment, as
///   the reference MATLAB implementation does.
/// * An empty member set returns the reference unchanged.
///
/// The returned centroid is z-normalized.
///
/// # Panics
///
/// Panics if member lengths differ from the reference length or any sample
/// is non-finite (see [`try_shape_extraction`] for the fallible variant).
#[must_use]
pub fn shape_extraction(members: &[&[f64]], reference: &[f64], method: EigenMethod) -> Vec<f64> {
    try_shape_extraction(members, reference, method)
        .unwrap_or_else(|e| panic!("member lengths must match the reference: {e}"))
}

/// Fallible shape extraction: validates member lengths and finiteness up
/// front and recovers deterministically from degenerate eigenvectors.
///
/// When the extracted eigenvector is numerically degenerate — all-zero
/// (e.g. every member constant, so the centered matrix `B` vanishes) or
/// non-finite — the centroid falls back to the **SBD-medoid** of the
/// cluster: the z-normalized member minimizing the total SBD to the other
/// members, ties broken by the lowest index. On clean, non-degenerate data
/// this fallback never triggers and the result is bit-identical to the
/// panicking [`shape_extraction`].
///
/// # Errors
///
/// * [`TsError::LengthMismatch`] if a member's length differs from the
///   reference length;
/// * [`TsError::NonFinite`] if the reference or any member contains a NaN
///   or infinite sample.
pub fn try_shape_extraction(
    members: &[&[f64]],
    reference: &[f64],
    method: EigenMethod,
) -> TsResult<Vec<f64>> {
    let m = reference.len();
    if members.is_empty() || m == 0 {
        return Ok(reference.to_vec());
    }
    ensure_finite(reference, 0)?;
    for (i, s) in members.iter().enumerate() {
        if s.len() != m {
            return Err(TsError::LengthMismatch {
                expected: m,
                found: s.len(),
                series: i,
            });
        }
        ensure_finite(s, i)?;
    }

    let ref_is_zero = reference.iter().all(|&v| v == 0.0);
    let plan = SbdPlan::new(m);
    // Alignment shifts of every member toward the reference, via the cached
    // reference spectrum — one forward rFFT per member plus one batched
    // kernel, instead of a full pairwise SBD. An all-zero reference (the
    // k-Shape initial state) skips alignment entirely.
    let shifts: Option<Vec<isize>> = (!ref_is_zero).then(|| {
        let mut fft_scratch = Vec::new();
        let mut scratch = SbdScratch::default();
        let p = plan.prepare_with(reference, &mut fft_scratch);
        members
            .iter()
            .map(|member| {
                let pm = plan.prepare_with(member, &mut fft_scratch);
                plan.sbd_spectra(&p, &pm, &mut scratch).1
            })
            .collect()
    });
    Ok(extract_aligned(members, shifts.as_deref(), method, &plan))
}

/// Shape extraction over pre-computed alignment shifts — the hot-path core
/// shared with the k-Shape refinement step, which reuses the shifts already
/// found by the previous batched assignment sweep instead of re-running SBD
/// per member.
///
/// `shifts[r]` aligns `members[r]` toward the reference the shifts were
/// computed against; `None` skips alignment (the all-zero-reference case).
/// Inputs must be validated (equal lengths, finite, non-empty, `m > 0`).
pub(crate) fn extract_aligned(
    members: &[&[f64]],
    shifts: Option<&[isize]>,
    method: EigenMethod,
    plan: &SbdPlan,
) -> Vec<f64> {
    let n = members.len();
    let m = members[0].len();

    // Aligned, row-centered member matrix B = X'·Q, where Q = I − (1/m)·O
    // simply removes each row's mean. Then M = Qᵀ S Q = Bᵀ B. One aligned
    // scratch row is reused across members — no per-member allocation.
    let mut b = Matrix::zeros(n, m);
    let mut aligned_sum = vec![0.0; m];
    let mut aligned = vec![0.0; m];
    for (r, member) in members.iter().enumerate() {
        match shifts {
            Some(sh) => shift_zero_pad_into(member, sh[r], &mut aligned),
            None => aligned.copy_from_slice(member),
        }
        for (acc, v) in aligned_sum.iter_mut().zip(aligned.iter()) {
            *acc += v;
        }
        let mean = aligned.iter().sum::<f64>() / m as f64;
        let row = b.row_mut(r);
        for (o, v) in row.iter_mut().zip(aligned.iter()) {
            *o = v - mean;
        }
    }

    // The dominant eigenvector of M = BᵀB (m×m) is the top right singular
    // vector of B. When the cluster has fewer members than time points —
    // the common case — it is far cheaper to get it from the n×n dual
    // Gram matrix BBᵀ: if u is the dominant eigenvector of BBᵀ, then
    // Bᵀu (normalized) is the dominant eigenvector of BᵀB. Identical
    // result, O(n²m + n³) instead of O(nm² + m³).
    let mut centroid =
        if n < m {
            let mut dual = Matrix::zeros(n, n);
            for r in 0..n {
                for c in 0..=r {
                    let d = dot_unrolled(b.row(r), b.row(c));
                    dual[(r, c)] = d;
                    dual[(c, r)] = d;
                }
            }
            let u = match method {
                // Lanczos for the single dominant pair (the paper's Eig(M, 1));
                // a solver failure produces a NaN vector here, which the medoid
                // fallback below converts into a usable centroid.
                EigenMethod::Full => try_dominant_symmetric_eigen(&dual)
                    .map_or_else(|_| vec![f64::NAN; n], |e| e.vector),
                EigenMethod::Power => power_iteration(&dual, 200, 1e-12).vector,
            };
            // v = Bᵀ u.
            let mut v = vec![0.0; m];
            for (r, &ur) in u.iter().enumerate() {
                if ur != 0.0 {
                    for (o, x) in v.iter_mut().zip(b.row(r).iter()) {
                        *o += ur * x;
                    }
                }
            }
            v
        } else {
            // Primal path: form M = BᵀB explicitly.
            let mut mat = Matrix::zeros(m, m);
            for r in 0..n {
                mat.rank_one_update(b.row(r), 1.0);
            }
            match method {
                EigenMethod::Full => try_dominant_symmetric_eigen(&mat)
                    .map_or_else(|_| vec![f64::NAN; m], |e| e.vector),
                EigenMethod::Power => power_iteration(&mat, 200, 1e-12).vector,
            }
        };

    // Resolve the sign ambiguity: orient toward the aligned members.
    let dot: f64 = centroid
        .iter()
        .zip(aligned_sum.iter())
        .map(|(a, b)| a * b)
        .sum();
    if dot < 0.0 {
        for v in &mut centroid {
            *v = -*v;
        }
    }

    z_normalize_in_place(&mut centroid);

    // Degenerate-eigenvector recovery: if the extracted shape collapsed to
    // a non-finite or all-zero vector (zero centered matrix, repeated
    // eigenvalues with cancelling components, …), fall back to the
    // SBD-medoid of the cluster. Deterministic, and unreachable on clean
    // non-degenerate data.
    if centroid.iter().any(|v| !v.is_finite()) || centroid.iter().all(|&v| v == 0.0) {
        centroid = sbd_medoid(members, plan);
    }
    centroid
}

/// Streaming shape-extraction state for one cluster: the primal matrix
/// `M = Σᵣ (alignedᵣ − mean·1)(alignedᵣ − mean·1)ᵀ` accumulated one
/// member at a time, plus the aligned sum used for sign orientation.
///
/// This is the out-of-core twin of [`extract_aligned`]'s primal path
/// (`n ≥ m`): instead of materializing the full n×m matrix `B` — which
/// is exactly the footprint an out-of-core fit cannot afford — each
/// aligned member row rank-one-updates the m×m Gram directly and is then
/// forgotten. Memory is O(m²) per cluster regardless of member count,
/// and for the same member rows in the same order the accumulated `M`,
/// `aligned_sum`, and extracted eigenvector match the primal path's
/// floating-point operations one for one.
///
/// Unlike [`try_shape_extraction`], the degenerate-eigenvector case
/// cannot fall back to the SBD-medoid (that requires revisiting every
/// member — a full extra pass); [`GramAccumulator::extract`] returns
/// `None` instead and the caller picks its own fallback (the
/// out-of-core fit keeps the previous centroid). This is the one
/// documented divergence from the in-RAM path, reachable only on
/// degenerate clusters (e.g. all members constant).
#[derive(Debug, Clone)]
pub struct GramAccumulator {
    mat: Matrix,
    aligned_sum: Vec<f64>,
    count: usize,
    centered: Vec<f64>,
}

impl GramAccumulator {
    /// Empty accumulator for series of length `m`.
    #[must_use]
    pub fn new(m: usize) -> Self {
        GramAccumulator {
            mat: Matrix::zeros(m, m),
            aligned_sum: vec![0.0; m],
            count: 0,
            centered: vec![0.0; m],
        }
    }

    /// Resets to the empty state without releasing buffers.
    pub fn clear(&mut self) {
        self.mat.fill(0.0);
        self.aligned_sum.fill(0.0);
        self.count = 0;
    }

    /// Members folded in so far.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Folds one member row, already aligned toward the cluster's
    /// reference centroid (or raw when the reference is all-zero —
    /// the same skip-alignment rule as [`try_shape_extraction`]).
    ///
    /// # Panics
    ///
    /// Panics if `aligned.len()` differs from the accumulator's `m`.
    pub fn push_aligned(&mut self, aligned: &[f64]) {
        let m = self.aligned_sum.len();
        assert_eq!(aligned.len(), m, "member length must match accumulator");
        for (acc, v) in self.aligned_sum.iter_mut().zip(aligned.iter()) {
            *acc += v;
        }
        let mean = aligned.iter().sum::<f64>() / m as f64;
        for (o, v) in self.centered.iter_mut().zip(aligned.iter()) {
            *o = v - mean;
        }
        self.mat.rank_one_update(&self.centered, 1.0);
        self.count += 1;
    }

    /// Extracts the centroid from the accumulated Gram: the dominant
    /// eigenvector of `M`, sign-oriented toward the aligned sum,
    /// z-normalized — identical math to [`extract_aligned`]'s primal
    /// path. Returns `None` for an empty accumulator or a degenerate
    /// (non-finite / all-zero) eigenvector; the caller chooses the
    /// fallback.
    #[must_use]
    pub fn extract(&self, method: EigenMethod) -> Option<Vec<f64>> {
        if self.count == 0 {
            return None;
        }
        let m = self.aligned_sum.len();
        let mut centroid = match method {
            EigenMethod::Full => try_dominant_symmetric_eigen(&self.mat)
                .map_or_else(|_| vec![f64::NAN; m], |e| e.vector),
            EigenMethod::Power => power_iteration(&self.mat, 200, 1e-12).vector,
        };
        let dot: f64 = centroid
            .iter()
            .zip(self.aligned_sum.iter())
            .map(|(a, b)| a * b)
            .sum();
        if dot < 0.0 {
            for v in &mut centroid {
                *v = -*v;
            }
        }
        z_normalize_in_place(&mut centroid);
        if centroid.iter().any(|v| !v.is_finite()) || centroid.iter().all(|&v| v == 0.0) {
            return None;
        }
        Some(centroid)
    }
}

/// The z-normalized member minimizing total SBD to the other members
/// (ties: lowest index). Used as the deterministic fallback centroid when
/// eigen-based shape extraction degenerates.
fn sbd_medoid(members: &[&[f64]], plan: &SbdPlan) -> Vec<f64> {
    let mut best_idx = 0usize;
    let mut best_total = f64::INFINITY;
    for (i, mi) in members.iter().enumerate() {
        let prepared = plan.prepare(mi);
        let total: f64 = members
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, mj)| plan.sbd_prepared(&prepared, mj).dist)
            .sum();
        if total.total_cmp(&best_total) == std::cmp::Ordering::Less {
            best_total = total;
            best_idx = i;
        }
    }
    let mut c = members[best_idx].to_vec();
    z_normalize_in_place(&mut c);
    c
}

#[cfg(test)]
mod tests {
    use super::{shape_extraction, EigenMethod};
    use crate::sbd::sbd;
    use tsdata::distort::shift_zero_pad;
    use tsdata::normalize::z_normalize;

    fn bump(m: usize, center: f64, width: f64) -> Vec<f64> {
        (0..m)
            .map(|i| (-((i as f64 - center) / width).powi(2)).exp())
            .collect()
    }

    #[test]
    fn empty_members_return_reference() {
        let reference = vec![1.0, 2.0, 3.0];
        let c = shape_extraction(&[], &reference, EigenMethod::Full);
        assert_eq!(c, reference);
    }

    #[test]
    fn centroid_of_identical_members_matches_their_shape() {
        let proto = z_normalize(&bump(48, 20.0, 4.0));
        let members: Vec<&[f64]> = vec![&proto, &proto, &proto];
        let c = shape_extraction(&members, &proto, EigenMethod::Full);
        let d = sbd(&proto, &c).dist;
        assert!(d < 1e-6, "SBD to prototype {d}");
    }

    #[test]
    fn centroid_is_z_normalized() {
        let a = bump(32, 10.0, 3.0);
        let b = bump(32, 12.0, 3.0);
        let c = shape_extraction(&[&a, &b], &vec![0.0; 32], EigenMethod::Full);
        let mean: f64 = c.iter().sum::<f64>() / 32.0;
        let var: f64 = c.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 32.0;
        assert!(mean.abs() < 1e-9);
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn recovers_shape_from_shifted_members() {
        // Members are the same bump at different phases; after alignment to
        // a reasonable reference, the centroid must match the bump shape up
        // to shift much better than the arithmetic mean does.
        let m = 64;
        let proto = z_normalize(&bump(m, 30.0, 3.0));
        let shifts = [-6isize, -3, 0, 3, 6];
        let members: Vec<Vec<f64>> = shifts.iter().map(|&s| shift_zero_pad(&proto, s)).collect();
        let refs: Vec<&[f64]> = members.iter().map(Vec::as_slice).collect();
        let centroid = shape_extraction(&refs, &proto, EigenMethod::Full);
        let d_centroid = sbd(&proto, &centroid).dist;
        // Arithmetic mean smears the bump.
        let mut mean = vec![0.0; m];
        for s in &members {
            for (a, v) in mean.iter_mut().zip(s.iter()) {
                *a += v / members.len() as f64;
            }
        }
        let d_mean = sbd(&proto, &z_normalize(&mean)).dist;
        assert!(
            d_centroid < d_mean,
            "shape extraction {d_centroid} vs arithmetic mean {d_mean}"
        );
        assert!(d_centroid < 0.05, "{d_centroid}");
    }

    #[test]
    fn power_and_full_methods_agree() {
        let a = z_normalize(&bump(40, 14.0, 3.0));
        let b = z_normalize(&bump(40, 18.0, 3.0));
        let c = z_normalize(&bump(40, 16.0, 4.0));
        let members: Vec<&[f64]> = vec![&a, &b, &c];
        let reference = z_normalize(&bump(40, 16.0, 3.0));
        let full = shape_extraction(&members, &reference, EigenMethod::Full);
        let fast = shape_extraction(&members, &reference, EigenMethod::Power);
        let d = sbd(&full, &fast).dist;
        assert!(d < 1e-6, "methods disagree: SBD {d}");
    }

    #[test]
    fn zero_reference_skips_alignment_but_still_extracts() {
        let a = z_normalize(&bump(32, 12.0, 3.0));
        let members: Vec<&[f64]> = vec![&a, &a];
        let c = shape_extraction(&members, &vec![0.0; 32], EigenMethod::Full);
        assert!(sbd(&a, &c).dist < 1e-6);
    }

    #[test]
    fn sign_orientation_points_toward_members() {
        let a = z_normalize(&bump(32, 16.0, 3.0));
        let members: Vec<&[f64]> = vec![&a];
        let c = shape_extraction(&members, &a, EigenMethod::Full);
        let dot: f64 = a.iter().zip(c.iter()).map(|(x, y)| x * y).sum();
        assert!(dot > 0.0, "centroid flipped: dot {dot}");
    }

    #[test]
    #[should_panic(expected = "match the reference")]
    fn rejects_mismatched_lengths() {
        let a = vec![1.0, 2.0];
        let members: Vec<&[f64]> = vec![&a];
        let _ = shape_extraction(&members, &[1.0, 2.0, 3.0], EigenMethod::Full);
    }

    #[test]
    fn try_rejects_mismatched_lengths_and_nan() {
        use super::try_shape_extraction;
        use tserror::TsError;
        let a = vec![1.0, 2.0];
        let members: Vec<&[f64]> = vec![&a];
        assert!(matches!(
            try_shape_extraction(&members, &[1.0, 2.0, 3.0], EigenMethod::Full),
            Err(TsError::LengthMismatch {
                expected: 3,
                found: 2,
                series: 0
            })
        ));
        let bad = vec![1.0, f64::NAN];
        let members: Vec<&[f64]> = vec![&bad];
        assert!(matches!(
            try_shape_extraction(&members, &[1.0, 2.0], EigenMethod::Full),
            Err(TsError::NonFinite {
                series: 0,
                index: 1
            })
        ));
    }

    #[test]
    fn degenerate_members_fall_back_to_finite_medoid() {
        // All-constant members: after centering, B = 0 and the eigenvector
        // is degenerate; the SBD-medoid fallback must keep the result
        // finite rather than emitting NaN.
        let a = vec![3.0; 16];
        let members: Vec<&[f64]> = vec![&a, &a, &a];
        let c = shape_extraction(&members, &[0.0; 16], EigenMethod::Full);
        assert_eq!(c.len(), 16);
        assert!(c.iter().all(|v| v.is_finite()), "{c:?}");
    }

    #[test]
    fn medoid_fallback_is_deterministic() {
        // Distinct constant levels all center to zero rows, so extraction
        // degenerates for every eigen method; the medoid fallback must be
        // finite and identical across repeated calls and methods.
        let a = vec![1.0; 24];
        let b = vec![2.0; 24];
        let c = vec![5.0; 24];
        let members: Vec<&[f64]> = vec![&a, &b, &c];
        let c1 = shape_extraction(&members, &[0.0; 24], EigenMethod::Full);
        let c2 = shape_extraction(&members, &[0.0; 24], EigenMethod::Power);
        assert_eq!(c1, c2);
        assert!(c1.iter().all(|v| v.is_finite()));
    }
}
