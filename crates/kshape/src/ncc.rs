//! Normalized cross-correlation sequences (Equation 8 of the paper).
//!
//! Given the raw cross-correlation sequence `CC_w(x, y)` (2m−1 values over
//! lags `−(m−1)..=(m−1)`), three normalizations are defined:
//!
//! * `NCCb` — the *biased* estimator: divide by `m`,
//! * `NCCu` — the *unbiased* estimator: divide by `m − |lag|`,
//! * `NCCc` — *coefficient* normalization: divide by
//!   `√(R₀(x,x) · R₀(y,y))`, bounding values to `[−1, 1]`.
//!
//! The paper's Figure 3 shows how the choice of normalization (together
//! with z-normalization of the data) changes where the sequence peaks;
//! Appendix A shows `NCCc` (the basis of SBD) is the most robust.

use tsfft::correlate::{autocorr0, cross_correlate_fft};

use crate::sbd::{PreparedSeries, SbdPlan, SbdScratch};

/// Which cross-correlation normalization to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NccVariant {
    /// Biased estimator `CC_w / m`.
    Biased,
    /// Unbiased estimator `CC_w / (m − |lag|)`.
    Unbiased,
    /// Coefficient normalization `CC_w / √(R₀(x,x)·R₀(y,y))`.
    Coefficient,
}

impl NccVariant {
    /// Short name matching the paper's notation.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            NccVariant::Biased => "NCCb",
            NccVariant::Unbiased => "NCCu",
            NccVariant::Coefficient => "NCCc",
        }
    }
}

/// Computes the normalized cross-correlation sequence of `x` and `y`
/// (length `2m − 1`, lags `−(m−1)..=(m−1)`).
///
/// For [`NccVariant::Coefficient`] with a zero-energy input the sequence is
/// all zeros (no direction is more similar than another).
///
/// # Panics
///
/// Panics if the lengths differ.
#[must_use]
pub fn ncc(x: &[f64], y: &[f64], variant: NccVariant) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "NCC requires equal-length sequences");
    let mut cc = cross_correlate_fft(x, y);
    normalize_cc(&mut cc, x.len(), variant, autocorr0(x), autocorr0(y));
    cc
}

/// Applies one NCC normalization to a raw cross-correlation sequence in
/// place. `ex`/`ey` are the series energies `R₀(·,·)`, only consulted for
/// [`NccVariant::Coefficient`].
fn normalize_cc(cc: &mut [f64], m: usize, variant: NccVariant, ex: f64, ey: f64) {
    match variant {
        NccVariant::Biased => {
            let inv = 1.0 / m as f64;
            for v in cc.iter_mut() {
                *v *= inv;
            }
        }
        NccVariant::Unbiased => {
            for (i, v) in cc.iter_mut().enumerate() {
                let lag = i as isize - (m as isize - 1);
                let denom = (m as isize - lag.abs()) as f64;
                *v /= denom;
            }
        }
        NccVariant::Coefficient => {
            let denom = (ex * ey).sqrt();
            if denom > 0.0 {
                let inv = 1.0 / denom;
                for v in cc.iter_mut() {
                    *v *= inv;
                }
            } else {
                cc.iter_mut().for_each(|v| *v = 0.0);
            }
        }
    }
}

/// [`ncc`] over cached spectra: the normalized cross-correlation sequence
/// of two series already prepared on `plan`, with no forward transforms —
/// one conjugate multiply and one half-size inverse rFFT per call.
///
/// Matches [`ncc`] on the same inputs (energies are captured at
/// preparation time, so the [`NccVariant::Coefficient`] denominator is
/// identical).
#[must_use]
pub fn ncc_prepared(
    plan: &SbdPlan,
    x: &PreparedSeries,
    y: &PreparedSeries,
    variant: NccVariant,
    scratch: &mut SbdScratch,
) -> Vec<f64> {
    let mut cc = Vec::new();
    plan.cross_correlate_prepared(x, y, &mut cc, scratch);
    normalize_cc(&mut cc, plan.series_len(), variant, x.energy(), y.energy());
    cc
}

/// [`ncc_max`] over cached spectra: `(max value, lag)` of the normalized
/// cross-correlation of two prepared series.
#[must_use]
pub fn ncc_max_prepared(
    plan: &SbdPlan,
    x: &PreparedSeries,
    y: &PreparedSeries,
    variant: NccVariant,
    scratch: &mut SbdScratch,
) -> (f64, isize) {
    let seq = ncc_prepared(plan, x, y, variant, scratch);
    let m = plan.series_len() as isize;
    let (idx, &val) = seq
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("plan length is positive, so the sequence is non-empty");
    (val, idx as isize - (m - 1))
}

/// Returns `(max value, lag)` of the normalized cross-correlation — the
/// peak the SBD distance and alignment are derived from.
///
/// # Panics
///
/// Panics if the inputs are empty or of differing lengths.
#[must_use]
pub fn ncc_max(x: &[f64], y: &[f64], variant: NccVariant) -> (f64, isize) {
    let seq = ncc(x, y, variant);
    assert!(!seq.is_empty(), "NCC of empty sequences has no maximum");
    let m = x.len() as isize;
    let (idx, &val) = seq
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty");
    (val, idx as isize - (m - 1))
}

/// Distance induced by an NCC variant: `1 − max_w NCC_w(x, y)`.
///
/// Only [`NccVariant::Coefficient`] guarantees a range of `[0, 2]` (that is
/// SBD); the others are exposed for the Appendix A comparison (Figures 10
/// and 11).
#[must_use]
pub fn ncc_distance(x: &[f64], y: &[f64], variant: NccVariant) -> f64 {
    1.0 - ncc_max(x, y, variant).0
}

#[cfg(test)]
mod tests {
    use super::{ncc, ncc_distance, ncc_max, NccVariant};

    #[test]
    fn names() {
        assert_eq!(NccVariant::Biased.name(), "NCCb");
        assert_eq!(NccVariant::Unbiased.name(), "NCCu");
        assert_eq!(NccVariant::Coefficient.name(), "NCCc");
    }

    #[test]
    fn coefficient_bounded_in_unit_interval() {
        let x: Vec<f64> = (0..50).map(|i| (i as f64 * 0.37).sin()).collect();
        let y: Vec<f64> = (0..50).map(|i| (i as f64 * 0.11).cos() * 2.0).collect();
        for v in ncc(&x, &y, NccVariant::Coefficient) {
            assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&v), "{v}");
        }
    }

    #[test]
    fn self_correlation_peaks_at_one_lag_zero() {
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.5).sin()).collect();
        let (val, lag) = ncc_max(&x, &x, NccVariant::Coefficient);
        assert!((val - 1.0).abs() < 1e-9);
        assert_eq!(lag, 0);
    }

    #[test]
    fn shifted_copy_peaks_at_the_shift() {
        let m = 64;
        let base: Vec<f64> = (0..m)
            .map(|i| (-((i as f64 - 20.0) / 3.0).powi(2)).exp())
            .collect();
        let mut delayed = vec![0.0; m];
        delayed[5..m].copy_from_slice(&base[..m - 5]);
        // R_k(base, delayed) peaks where base[l+k] ≈ delayed[l] = base[l-5],
        // i.e. at lag k = −5.
        let (_, lag) = ncc_max(&base, &delayed, NccVariant::Coefficient);
        assert_eq!(lag, -5);
        // And symmetrically the other way round.
        let (_, lag) = ncc_max(&delayed, &base, NccVariant::Coefficient);
        assert_eq!(lag, 5);
    }

    #[test]
    fn biased_divides_by_m() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 5.0, 6.0];
        let raw = tsfft::correlate::cross_correlate_naive(&x, &y);
        let b = ncc(&x, &y, NccVariant::Biased);
        for (r, nb) in raw.iter().zip(b.iter()) {
            assert!((r / 3.0 - nb).abs() < 1e-9);
        }
    }

    #[test]
    fn unbiased_divides_by_overlap() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 5.0, 6.0];
        let raw = tsfft::correlate::cross_correlate_naive(&x, &y);
        let u = ncc(&x, &y, NccVariant::Unbiased);
        let overlaps = [1.0, 2.0, 3.0, 2.0, 1.0];
        for ((r, nu), ov) in raw.iter().zip(u.iter()).zip(overlaps.iter()) {
            assert!((r / ov - nu).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_energy_coefficient_is_all_zeros() {
        let z = [0.0; 8];
        let x = [1.0; 8];
        assert!(ncc(&z, &x, NccVariant::Coefficient)
            .iter()
            .all(|&v| v == 0.0));
    }

    #[test]
    fn prepared_variants_match_pairwise() {
        use super::{ncc_max_prepared, ncc_prepared};
        use crate::sbd::{SbdPlan, SbdScratch};
        let m = 48;
        let x: Vec<f64> = (0..m).map(|i| (i as f64 * 0.23).sin()).collect();
        let y: Vec<f64> = (0..m)
            .map(|i| (i as f64 * 0.31 + 0.9).cos() * 1.7)
            .collect();
        let plan = SbdPlan::new(m);
        let px = plan.prepare(&x);
        let py = plan.prepare(&y);
        let mut scratch = SbdScratch::default();
        for variant in [
            NccVariant::Biased,
            NccVariant::Unbiased,
            NccVariant::Coefficient,
        ] {
            let direct = ncc(&x, &y, variant);
            let batched = ncc_prepared(&plan, &px, &py, variant, &mut scratch);
            assert_eq!(direct.len(), batched.len());
            for (a, b) in direct.iter().zip(batched.iter()) {
                assert!((a - b).abs() < 1e-9, "{} ({a} vs {b})", variant.name());
            }
            let (v1, l1) = ncc_max(&x, &y, variant);
            let (v2, l2) = ncc_max_prepared(&plan, &px, &py, variant, &mut scratch);
            assert!((v1 - v2).abs() < 1e-9);
            assert_eq!(l1, l2);
        }
    }

    #[test]
    fn prepared_zero_energy_coefficient_is_all_zeros() {
        use super::ncc_prepared;
        use crate::sbd::{SbdPlan, SbdScratch};
        let plan = SbdPlan::new(8);
        let pz = plan.prepare(&[0.0; 8]);
        let px = plan.prepare(&[1.0; 8]);
        let mut scratch = SbdScratch::default();
        let seq = ncc_prepared(&plan, &pz, &px, NccVariant::Coefficient, &mut scratch);
        assert!(seq.iter().all(|&v| v == 0.0), "{seq:?}");
    }

    #[test]
    fn coefficient_distance_scale_invariant() {
        let x: Vec<f64> = (0..40).map(|i| (i as f64 * 0.3).sin()).collect();
        let y: Vec<f64> = (0..40).map(|i| (i as f64 * 0.3 + 1.0).sin()).collect();
        let y_scaled: Vec<f64> = y.iter().map(|v| 7.5 * v).collect();
        let d1 = ncc_distance(&x, &y, NccVariant::Coefficient);
        let d2 = ncc_distance(&x, &y_scaled, NccVariant::Coefficient);
        assert!((d1 - d2).abs() < 1e-9);
        // The biased variant is NOT scale invariant — that is the point of
        // coefficient normalization.
        let b1 = ncc_distance(&x, &y, NccVariant::Biased);
        let b2 = ncc_distance(&x, &y_scaled, NccVariant::Biased);
        assert!((b1 - b2).abs() > 1e-3);
    }
}
