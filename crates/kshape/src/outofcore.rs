//! Out-of-core k-Shape: the Algorithm 3 refinement loop streamed over a
//! [`SeriesView`] row source — a spilled
//! [`SeriesStore`](tsdata::store::SeriesStore), an in-memory store, or a
//! plain `[Vec<f64>]` slice — with working memory independent of `n`.
//!
//! The in-memory fit ([`crate::KShape::fit_with`]) caches one packed
//! half-spectrum per series, so its footprint grows with the dataset. At
//! Figure-12 scale (`n` up to 10⁵–10⁶) that cache is exactly what no
//! longer fits, so this module trades the cache for recomputation and
//! *fuses* the two halves of each iteration:
//!
//! * the **assignment sweep** reads each row once (through the view's
//!   borrow-or-stage contract), FFTs it on the fly into a reused
//!   [`PreparedSeries`] slot, picks the SBD-nearest centroid — and, in
//!   the same touch, folds the row (aligned by the winning shift) into
//!   the new cluster's [`GramAccumulator`];
//! * the next **refinement** then extracts every centroid from those
//!   O(k·m²) accumulated Grams without revisiting a single row.
//!
//! One row pass per iteration, `O(k·m² + m)` working state, and the
//! spill window is the only thing standing between the fit and a dataset
//! bigger than RAM.
//!
//! # Divergences from the in-memory fit
//!
//! The member sets, alignment shifts, and accumulation order match the
//! in-memory refinement exactly, so on clusters with at least `m`
//! members the extracted centroids are floating-point-identical to the
//! primal path. Three deliberate differences remain (see `DESIGN.md`
//! §10):
//!
//! * clusters with fewer than `m` members still use the primal `m×m`
//!   Gram here (the in-memory path switches to the `n×n` dual — same
//!   eigenvector, different rounding);
//! * a degenerate extraction keeps the previous centroid instead of
//!   falling back to the SBD-medoid (the medoid needs a full extra pass
//!   over the members);
//! * an empty cluster reseeds from the worst-served row, but the Grams
//!   of the *current* iteration were accumulated before the reseed, so
//!   the moved row is re-attributed one iteration later.
//!
//! All three are unreachable or benign on well-separated data; the
//! cross-checks in `tests/scale.rs` hold both paths to the same labels
//! there.

use tsdata::distort::shift_zero_pad_into;
use tsdata::normalize::z_normalize;
use tsdata::store::SeriesView;
use tserror::{ensure_k, TsError, TsResult};
use tsfft::correlate::autocorr0;
use tsobs::IterationEvent;
use tsrand::StdRng;
use tsrun::RunControl;

use crate::algorithm::{l2_delta_sq, KShapeOptions, KShapeResult};
use crate::extraction::GramAccumulator;
use crate::init::{random_assignment, InitStrategy};
use crate::sbd::{PreparedSeries, SbdPlan, SbdScratch};
use crate::sbd_unequal::{place_into_frame, unequal_dist_shift};

/// Clusters the rows of `view` into `k` groups with working memory
/// independent of the row count — the out-of-core counterpart of
/// [`crate::KShape::fit_with`].
///
/// Accepts any [`SeriesView`]: a resident or spilled
/// [`SeriesStore`](tsdata::store::SeriesStore) (either element width), a
/// `[Vec<f64>]` slice, a multichannel
/// [`ChannelView`](tsdata::store::ChannelView) (rows clustered under
/// summed per-channel NCC with one shared shift), or a variable-length
/// [`RaggedStore`](tsdata::store::RaggedStore) (rows compared to the
/// max-length centroid frame through the unequal-length SBD of paper
/// footnote 3). Budget, cancellation, and telemetry ride on the same
/// [`KShapeOptions`] as the in-memory fit; cost is charged at the same
/// `k·channels·m` rate per row so a deadline trips mid-sweep.
///
/// # Errors
///
/// * [`TsError::EmptyInput`] when the view holds no rows;
/// * [`TsError::InvalidK`] unless `1 <= k <= n`;
/// * [`TsError::NumericalFailure`] for
///   [`InitStrategy::PlusPlus`] — the k-shape++ seeding needs the full
///   in-memory spectrum cache, which is the one thing this path exists
///   to avoid — and for views reporting zero channels or combining
///   ragged rows with multiple channels;
/// * [`TsError::Stopped`] when the budget trips or the token cancels
///   (carrying the best labeling so far);
/// * [`TsError::CorruptData`] if a spilled segment fails validation
///   mid-stream.
pub fn fit_store<V: SeriesView + ?Sized>(
    view: &V,
    opts: &KShapeOptions<'_>,
) -> TsResult<KShapeResult> {
    let ctrl = opts.control();
    let obs = opts.obs();
    let cfg = &opts.config;
    let n = view.n_series();
    let m = view.series_len();
    if n == 0 || m == 0 {
        return Err(TsError::EmptyInput);
    }
    ensure_k(cfg.k, n)?;
    if !matches!(cfg.init, InitStrategy::Random) {
        return Err(TsError::NumericalFailure {
            context: "out-of-core k-Shape supports InitStrategy::Random only: \
                      k-shape++ seeding requires the in-memory spectrum cache"
                .into(),
        });
    }
    if view.is_ragged() {
        return fit_store_ragged(view, opts);
    }
    let c = view.channels();
    if c == 0 {
        return Err(TsError::NumericalFailure {
            context: "view reports zero channels".into(),
        });
    }
    let k = cfg.k;
    let fit_span = obs.span("kshape.ooc.fit");
    let plan = SbdPlan::new(m);

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut labels = random_assignment(n, k, &mut rng);
    // Centroids are channel-major (`c·m` samples); each (cluster,
    // channel) pair accumulates its own `m×m` Gram because the shared
    // winning shift aligns every channel but the Rayleigh extraction is
    // per channel.
    let mut centroids: Vec<Vec<f64>> = vec![vec![0.0; c * m]; k];
    let mut grams: Vec<GramAccumulator> = (0..k * c).map(|_| GramAccumulator::new(m)).collect();
    let mut dists = vec![0.0f64; n];

    // Every per-row buffer is hoisted out of the sweep: the row staging
    // area, the FFT scratch, the prepared-spectrum slots (one per
    // channel), and the aligned copy. The assignment loop below
    // allocates nothing.
    let mut row_scratch: Vec<f64> = Vec::new();
    let mut fft_scratch = Vec::new();
    let mut sbd_scratch = SbdScratch::default();
    let mut prepared: Vec<PreparedSeries> = (0..c).map(|_| PreparedSeries::empty()).collect();
    let mut aligned = vec![0.0f64; m];

    // Pass 0: fold every row, unaligned, into its initial cluster's Gram.
    // The initial centroids are all-zero, which skips alignment — the
    // same rule the in-memory first refinement applies.
    for (i, &label) in labels.iter().enumerate() {
        let row = view.try_row(i, &mut row_scratch)?;
        for (ch, chunk) in row.chunks_exact(m).enumerate() {
            grams[label * c + ch].push_aligned(chunk);
        }
    }

    let mut iterations = 0usize;
    let mut converged = false;
    // Armed-only per-cluster squared centroid movement (see the
    // in-memory loop for the write-site accounting rationale).
    let mut deltas = if obs.is_armed() {
        Some(vec![0.0f64; k])
    } else {
        None
    };
    while iterations < cfg.max_iter {
        if let Err(reason) = ctrl.check_iteration(iterations) {
            return Err(RunControl::stop_error(labels, iterations, reason));
        }
        iterations += 1;
        if let Some(d) = deltas.as_deref_mut() {
            d.fill(0.0);
        }

        // ----- Refinement: extract centroids from the Grams. -----
        let refine_span = obs.span("kshape.ooc.refinement");
        for j in 0..k {
            if let Err(reason) = ctrl.poll() {
                return Err(RunControl::stop_error(labels, iterations - 1, reason));
            }
            let next = if grams[j * c].count() == 0 {
                // Re-seed an empty cluster with the row currently
                // worst-served by its own centroid.
                let worst = dists
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map_or(0, |(i, _)| i);
                labels[worst] = j;
                obs.counter("kshape.empty_cluster_reseeds", 1);
                let row = view.try_row(worst, &mut row_scratch)?;
                let mut seeded = Vec::with_capacity(c * m);
                for chunk in row.chunks_exact(m) {
                    seeded.extend_from_slice(&z_normalize(chunk));
                }
                Some(seeded)
            } else {
                let mut parts: Vec<f64> = Vec::with_capacity(c * m);
                let mut complete = true;
                for gram in &grams[j * c..(j + 1) * c] {
                    let part = gram.extract(cfg.eigen);
                    if let Err(reason) = ctrl.charge((gram.count() * m + m * m) as u64) {
                        return Err(RunControl::stop_error(labels, iterations - 1, reason));
                    }
                    match part {
                        Some(v) => parts.extend_from_slice(&v),
                        None => complete = false,
                    }
                }
                // None = degenerate eigenvector (in any channel): keep
                // the previous centroid (the documented divergence from
                // the in-memory SBD-medoid fallback).
                complete.then_some(parts)
            };
            if let Some(next) = next {
                if let Some(d) = deltas.as_deref_mut() {
                    d[j] = l2_delta_sq(&centroids[j], &next);
                }
                centroids[j] = next;
            }
        }
        refine_span.end();

        // ----- Fused assignment sweep: one streaming row pass. -----
        let assign_span = obs.span("kshape.ooc.assignment");
        // Channel-major centroid spectra: `cents[j*c..(j+1)*c]` is
        // cluster j, matching the per-channel layout of `prepared`.
        let cents: Vec<PreparedSeries> = centroids
            .iter()
            .flat_map(|cent| cent.chunks_exact(m))
            .map(|chunk| plan.prepare_with(chunk, &mut fft_scratch))
            .collect();
        obs.counter("sbd.spectra.centroid_ffts", (k * c) as u64);
        for gram in &mut grams {
            gram.clear();
        }
        let mut changed = 0usize;
        let pair_cost = (k * c * m) as u64;
        for i in 0..n {
            if let Err(reason) = ctrl.charge(pair_cost) {
                return Err(RunControl::stop_error(labels, iterations - 1, reason));
            }
            let row = view.try_row(i, &mut row_scratch)?;
            for (ch, chunk) in row.chunks_exact(m).enumerate() {
                plan.prepare_into(chunk, &mut prepared[ch], &mut fft_scratch);
            }
            let mut best = f64::INFINITY;
            let mut best_j = 0usize;
            let mut best_shift = 0isize;
            for j in 0..k {
                // x = centroid, y = series: the shift aligns the row
                // *toward* the centroid, which is exactly what the Gram
                // it is about to join needs.
                let (d, s) =
                    plan.sbd_spectra_multi(&cents[j * c..(j + 1) * c], &prepared, &mut sbd_scratch);
                if d < best {
                    best = d;
                    best_j = j;
                    best_shift = s;
                }
            }
            if labels[i] != best_j {
                changed += 1;
                labels[i] = best_j;
            }
            dists[i] = best;
            for (ch, chunk) in row.chunks_exact(m).enumerate() {
                shift_zero_pad_into(chunk, best_shift, &mut aligned);
                grams[best_j * c + ch].push_aligned(&aligned);
            }
        }
        obs.counter("sbd.spectra.series_ffts", (n * c) as u64);
        obs.counter("sbd.spectra.pair_sweeps", (n * k) as u64);
        assign_span.end();
        if obs.is_armed() {
            let inertia_now: f64 = dists.iter().map(|d| d * d).sum();
            let shift = deltas
                .as_deref()
                .map_or(f64::NAN, |d| d.iter().sum::<f64>().sqrt());
            obs.iteration(&IterationEvent {
                algorithm: "kshape-ooc",
                iter: iterations - 1,
                inertia: inertia_now,
                moved: changed,
                centroid_shift: shift,
            });
        }
        if changed == 0 {
            converged = true;
            break;
        }
    }
    obs.counter("kshape.iterations", iterations as u64);
    fit_span.end();
    ctrl.report_cost(obs);

    let inertia = dists.iter().map(|d| d * d).sum();
    Ok(KShapeResult {
        labels,
        centroids,
        iterations,
        converged,
        inertia,
    })
}

/// The variable-length counterpart of [`fit_store`]: rows keep their
/// native lengths and are compared to a shared max-length centroid frame
/// through the unequal-length SBD (paper footnote 3).
///
/// The centroid frame is `m_ref = view.series_len()` — the view's
/// declared maximum row length — and one [`SbdPlan`] sized for `m_ref`
/// serves every pair, so the padded FFT covers the full `m_ref + len − 1`
/// lag range of any row. A row's winning alignment places it *into* the
/// frame at the winning offset (zero-filled elsewhere), which is exactly
/// the member matrix the frame-sized Gram wants, so refinement is
/// unchanged from the fixed-length path.
fn fit_store_ragged<V: SeriesView + ?Sized>(
    view: &V,
    opts: &KShapeOptions<'_>,
) -> TsResult<KShapeResult> {
    let ctrl = opts.control();
    let obs = opts.obs();
    let cfg = &opts.config;
    let n = view.n_series();
    let m = view.series_len();
    if view.channels() != 1 {
        return Err(TsError::NumericalFailure {
            context: "ragged multichannel views are unsupported: pad rows to a fixed \
                      length before stacking channels"
                .into(),
        });
    }
    let k = cfg.k;
    let fit_span = obs.span("kshape.ooc.fit");
    let plan = SbdPlan::new(m);

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut labels = random_assignment(n, k, &mut rng);
    let mut centroids: Vec<Vec<f64>> = vec![vec![0.0; m]; k];
    let mut grams: Vec<GramAccumulator> = (0..k).map(|_| GramAccumulator::new(m)).collect();
    let mut dists = vec![0.0f64; n];

    let mut row_scratch: Vec<f64> = Vec::new();
    let mut sbd_scratch = SbdScratch::default();
    let mut cc: Vec<f64> = Vec::new();
    let mut aligned = vec![0.0f64; m];

    // Pass 0: each row enters its initial cluster's Gram left-anchored
    // and zero-padded to the reference frame — the ragged analogue of
    // the unaligned first fold.
    for (i, &label) in labels.iter().enumerate() {
        let row = view.try_row(i, &mut row_scratch)?;
        place_into_frame(row, 0, &mut aligned);
        grams[label].push_aligned(&aligned);
    }

    let mut iterations = 0usize;
    let mut converged = false;
    let mut deltas = if obs.is_armed() {
        Some(vec![0.0f64; k])
    } else {
        None
    };
    while iterations < cfg.max_iter {
        if let Err(reason) = ctrl.check_iteration(iterations) {
            return Err(RunControl::stop_error(labels, iterations, reason));
        }
        iterations += 1;
        if let Some(d) = deltas.as_deref_mut() {
            d.fill(0.0);
        }

        // ----- Refinement: identical to the fixed-length path. -----
        let refine_span = obs.span("kshape.ooc.refinement");
        for (j, gram) in grams.iter().enumerate() {
            if let Err(reason) = ctrl.poll() {
                return Err(RunControl::stop_error(labels, iterations - 1, reason));
            }
            let next = if gram.count() == 0 {
                let worst = dists
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map_or(0, |(i, _)| i);
                labels[worst] = j;
                obs.counter("kshape.empty_cluster_reseeds", 1);
                let row = view.try_row(worst, &mut row_scratch)?;
                let mut seeded = vec![0.0; m];
                place_into_frame(&z_normalize(row), 0, &mut seeded);
                Some(seeded)
            } else {
                let next = gram.extract(cfg.eigen);
                if let Err(reason) = ctrl.charge((gram.count() * m + m * m) as u64) {
                    return Err(RunControl::stop_error(labels, iterations - 1, reason));
                }
                next
            };
            if let Some(next) = next {
                if let Some(d) = deltas.as_deref_mut() {
                    d[j] = l2_delta_sq(&centroids[j], &next);
                }
                centroids[j] = next;
            }
        }
        refine_span.end();

        // ----- Assignment: unequal-length SBD against the frame. -----
        let assign_span = obs.span("kshape.ooc.assignment");
        let cents: Vec<(PreparedSeries, f64)> = centroids
            .iter()
            .map(|cent| (plan.prepare_padded(cent), autocorr0(cent)))
            .collect();
        obs.counter("sbd.spectra.centroid_ffts", k as u64);
        for gram in &mut grams {
            gram.clear();
        }
        let mut changed = 0usize;
        let pair_cost = (k * m) as u64;
        for i in 0..n {
            if let Err(reason) = ctrl.charge(pair_cost) {
                return Err(RunControl::stop_error(labels, iterations - 1, reason));
            }
            let row = view.try_row(i, &mut row_scratch)?;
            let ny = row.len();
            let y_r0 = autocorr0(row);
            let py = plan.prepare_padded(row);
            let mut best = f64::INFINITY;
            let mut best_j = 0usize;
            let mut best_shift = 0isize;
            for (j, (px, x_r0)) in cents.iter().enumerate() {
                // x = centroid (full frame), y = the native-length row.
                let (d, s) = unequal_dist_shift(
                    &plan,
                    px,
                    m,
                    *x_r0,
                    &py,
                    ny,
                    y_r0,
                    &mut cc,
                    &mut sbd_scratch,
                );
                if d < best {
                    best = d;
                    best_j = j;
                    best_shift = s;
                }
            }
            if labels[i] != best_j {
                changed += 1;
                labels[i] = best_j;
            }
            dists[i] = best;
            place_into_frame(row, best_shift, &mut aligned);
            grams[best_j].push_aligned(&aligned);
        }
        obs.counter("sbd.spectra.series_ffts", n as u64);
        obs.counter("sbd.spectra.pair_sweeps", (n * k) as u64);
        assign_span.end();
        if obs.is_armed() {
            let inertia_now: f64 = dists.iter().map(|d| d * d).sum();
            let shift = deltas
                .as_deref()
                .map_or(f64::NAN, |d| d.iter().sum::<f64>().sqrt());
            obs.iteration(&IterationEvent {
                algorithm: "kshape-ooc",
                iter: iterations - 1,
                inertia: inertia_now,
                moved: changed,
                centroid_shift: shift,
            });
        }
        if changed == 0 {
            converged = true;
            break;
        }
    }
    obs.counter("kshape.iterations", iterations as u64);
    fit_span.end();
    ctrl.report_cost(obs);

    let inertia = dists.iter().map(|d| d * d).sum();
    Ok(KShapeResult {
        labels,
        centroids,
        iterations,
        converged,
        inertia,
    })
}

/// One streaming assignment sweep over `view`: per row, the SBD-nearest
/// of `centroids`, written to `labels[i]` / `dists[i]`. Returns how many
/// labels changed.
///
/// This is the standalone counterpart of the sweep inside [`fit_store`]
/// (no Gram accumulation) and the measured kernel of the `scale` bench
/// group: it never materializes a spectrum cache, so its footprint is
/// one prepared row regardless of `n`. Results are bit-identical to
/// [`crate::SpectraEngine`]'s cached `assign` on the same rows and
/// centroids.
///
/// Multichannel views dispatch through the summed per-channel NCC
/// (centroids must hold `channels·m` channel-major samples); ragged
/// views compare each native-length row to the max-length centroid
/// frame through the unequal-length SBD.
///
/// # Errors
///
/// * [`TsError::EmptyInput`] for no rows or no centroids;
/// * [`TsError::LengthMismatch`] when `labels`/`dists` lengths differ
///   from the row count, or a centroid's sample count differs from the
///   view's `channels·m`;
/// * [`TsError::NumericalFailure`] for views reporting zero channels or
///   combining ragged rows with multiple channels;
/// * [`TsError::CorruptData`] if a spilled segment fails validation
///   mid-stream.
pub fn assign_store<V: SeriesView + ?Sized>(
    view: &V,
    centroids: &[Vec<f64>],
    labels: &mut [usize],
    dists: &mut [f64],
) -> TsResult<usize> {
    let n = view.n_series();
    let m = view.series_len();
    if n == 0 || m == 0 || centroids.is_empty() {
        return Err(TsError::EmptyInput);
    }
    let ragged = view.is_ragged();
    let c = view.channels();
    if c == 0 || (ragged && c != 1) {
        return Err(TsError::NumericalFailure {
            context: "view must report at least one channel, and ragged views are \
                      single-channel"
                .into(),
        });
    }
    for found in [labels.len(), dists.len()] {
        if found != n {
            return Err(TsError::LengthMismatch {
                expected: n,
                found,
                series: 0,
            });
        }
    }
    for (j, cent) in centroids.iter().enumerate() {
        if cent.len() != c * m {
            return Err(TsError::LengthMismatch {
                expected: c * m,
                found: cent.len(),
                series: j,
            });
        }
    }
    let plan = SbdPlan::new(m);
    let mut sbd_scratch = SbdScratch::default();
    let mut row_scratch: Vec<f64> = Vec::new();
    let mut changed = 0usize;
    if ragged {
        let mut cc: Vec<f64> = Vec::new();
        let cents: Vec<(PreparedSeries, f64)> = centroids
            .iter()
            .map(|cent| (plan.prepare_padded(cent), autocorr0(cent)))
            .collect();
        for i in 0..n {
            let row = view.try_row(i, &mut row_scratch)?;
            let ny = row.len();
            let y_r0 = autocorr0(row);
            let py = plan.prepare_padded(row);
            let mut best = f64::INFINITY;
            let mut best_j = 0usize;
            for (j, (px, x_r0)) in cents.iter().enumerate() {
                let (d, _) = unequal_dist_shift(
                    &plan,
                    px,
                    m,
                    *x_r0,
                    &py,
                    ny,
                    y_r0,
                    &mut cc,
                    &mut sbd_scratch,
                );
                if d < best {
                    best = d;
                    best_j = j;
                }
            }
            if labels[i] != best_j {
                changed += 1;
                labels[i] = best_j;
            }
            dists[i] = best;
        }
        return Ok(changed);
    }
    let mut fft_scratch = Vec::new();
    let mut prepared: Vec<PreparedSeries> = (0..c).map(|_| PreparedSeries::empty()).collect();
    let cents: Vec<PreparedSeries> = centroids
        .iter()
        .flat_map(|cent| cent.chunks_exact(m))
        .map(|chunk| plan.prepare_with(chunk, &mut fft_scratch))
        .collect();
    let k = centroids.len();
    for i in 0..n {
        let row = view.try_row(i, &mut row_scratch)?;
        for (ch, chunk) in row.chunks_exact(m).enumerate() {
            plan.prepare_into(chunk, &mut prepared[ch], &mut fft_scratch);
        }
        let mut best = f64::INFINITY;
        let mut best_j = 0usize;
        for j in 0..k {
            let (d, _) =
                plan.sbd_spectra_multi(&cents[j * c..(j + 1) * c], &prepared, &mut sbd_scratch);
            if d < best {
                best = d;
                best_j = j;
            }
        }
        if labels[i] != best_j {
            changed += 1;
            labels[i] = best_j;
        }
        dists[i] = best;
    }
    Ok(changed)
}

#[cfg(test)]
mod tests {
    use super::{assign_store, fit_store};
    use crate::algorithm::{KShape, KShapeOptions};
    use crate::init::InitStrategy;
    use crate::spectra::SpectraEngine;
    use tsdata::normalize::z_normalize;
    use tsdata::store::{ChannelView, ElemType, RaggedStore, SeriesStore, SpillConfig};
    use tserror::TsError;
    use tsrun::RunControl;

    fn bump(m: usize, center: f64, width: f64) -> Vec<f64> {
        (0..m)
            .map(|i| (-((i as f64 - center) / width).powi(2)).exp())
            .collect()
    }

    /// Two clearly separated shape classes with per-member phase jitter
    /// (the same family as the in-memory algorithm tests).
    fn two_class_data() -> (Vec<Vec<f64>>, Vec<usize>) {
        let m = 64;
        let mut series = Vec::new();
        let mut truth = Vec::new();
        for j in 0..8 {
            let shift = j as f64 * 1.5 - 5.0;
            let a: Vec<f64> = (0..m)
                .map(|i| (-((i as f64 - 20.0 - shift) / 2.5).powi(2)).exp())
                .collect();
            let b: Vec<f64> = bump(m, 18.0 + shift, 6.0)
                .iter()
                .zip(bump(m, 42.0 + shift, 6.0).iter())
                .map(|(x, y)| x - y)
                .collect();
            series.push(z_normalize(&a));
            truth.push(0);
            series.push(z_normalize(&b));
            truth.push(1);
        }
        (series, truth)
    }

    fn agrees(labels: &[usize], truth: &[usize]) -> bool {
        let direct = labels.iter().zip(truth.iter()).all(|(a, b)| a == b);
        let flipped = labels.iter().zip(truth.iter()).all(|(a, b)| *a == 1 - *b);
        direct || flipped
    }

    #[test]
    fn recovers_two_shape_classes_from_a_slice_view() {
        let (series, truth) = two_class_data();
        let fit = fit_store(&series[..], &KShapeOptions::new(2).with_seed(7)).expect("clean");
        assert!(fit.converged);
        assert!(agrees(&fit.labels, &truth), "labels {:?}", fit.labels);
        assert!(fit.inertia.is_finite());
        for c in &fit.centroids {
            assert_eq!(c.len(), 64);
        }
    }

    #[test]
    fn resident_and_spilled_stores_produce_identical_fits() {
        let (series, _) = two_class_data();
        let resident = SeriesStore::from_rows(&series, ElemType::F64).expect("build");
        let dir = std::env::temp_dir().join(format!("ooc_fit_spill_{}", std::process::id()));
        let mut spilled = SeriesStore::spilled(
            64,
            ElemType::F64,
            SpillConfig::new(&dir)
                .rows_per_segment(3)
                .resident_segments(1),
        )
        .expect("spill tier");
        for row in &series {
            spilled.push_row(row).expect("push");
        }
        let opts = KShapeOptions::new(2).with_seed(7);
        let a = fit_store(&resident, &opts).expect("resident fit");
        let b = fit_store(&spilled, &opts).expect("spilled fit");
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.inertia.to_bits(), b.inertia.to_bits());
        assert_eq!(a.centroids, b.centroids);
        assert!(spilled.spill_stats().expect("stats").sealed_segments > 0);
    }

    #[test]
    fn matches_in_memory_truth_on_separable_data() {
        let (series, truth) = two_class_data();
        let opts = KShapeOptions::new(2).with_seed(7);
        let in_mem = KShape::fit_with(&series, &opts).expect("in-memory");
        let ooc = fit_store(&series[..], &opts).expect("out-of-core");
        assert!(agrees(&in_mem.labels, &truth));
        assert!(agrees(&ooc.labels, &truth));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (series, _) = two_class_data();
        let opts = KShapeOptions::new(2).with_seed(3);
        let a = fit_store(&series[..], &opts).expect("fit");
        let b = fit_store(&series[..], &opts).expect("fit");
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.inertia.to_bits(), b.inertia.to_bits());
    }

    #[test]
    fn k_equals_one_converges_trivially() {
        let (series, _) = two_class_data();
        let fit = fit_store(&series[..], &KShapeOptions::new(1).with_seed(1)).expect("fit");
        assert!(fit.labels.iter().all(|&l| l == 0));
        assert!(fit.converged);
    }

    #[test]
    fn typed_errors_for_bad_input() {
        let empty: Vec<Vec<f64>> = Vec::new();
        assert!(matches!(
            fit_store(&empty[..], &KShapeOptions::new(1)),
            Err(TsError::EmptyInput)
        ));
        let (series, _) = two_class_data();
        assert!(matches!(
            fit_store(&series[..], &KShapeOptions::new(series.len() + 1)),
            Err(TsError::InvalidK { .. })
        ));
        let pp = KShapeOptions::new(2).with_init(InitStrategy::PlusPlus);
        assert!(matches!(
            fit_store(&series[..], &pp),
            Err(TsError::NumericalFailure { .. })
        ));
    }

    #[test]
    fn stops_on_cancellation_with_best_labels() {
        use tsrun::CancelToken;
        let (series, _) = two_class_data();
        let token = CancelToken::new();
        token.cancel();
        let opts = KShapeOptions::new(2).with_cancel(token);
        let err = fit_store(&series[..], &opts).expect_err("cancelled");
        assert!(matches!(err, TsError::Stopped { .. }), "{err:?}");
    }

    #[test]
    fn assign_store_is_bit_identical_to_the_cached_engine_sweep() {
        let (series, _) = two_class_data();
        let centroids = vec![
            z_normalize(&series[0]),
            z_normalize(&series[1]),
            z_normalize(&series[5]),
        ];
        let n = series.len();

        let engine = SpectraEngine::new(&series, 1).expect("engine");
        let cents = engine.prepare_centroids(&centroids);
        let mut labels_a = vec![0usize; n];
        let mut dists_a = vec![0.0f64; n];
        let mut shifts_a = vec![0isize; n];
        engine
            .assign(
                &cents,
                &mut labels_a,
                &mut dists_a,
                &mut shifts_a,
                &RunControl::unlimited(),
            )
            .expect("engine assign");

        let mut labels_b = vec![0usize; n];
        let mut dists_b = vec![0.0f64; n];
        let changed = assign_store(&series[..], &centroids, &mut labels_b, &mut dists_b)
            .expect("streaming assign");
        assert_eq!(labels_a, labels_b);
        for (a, b) in dists_a.iter().zip(dists_b.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(changed > 0);
    }

    #[test]
    fn one_channel_view_is_bit_identical_to_the_slice_path() {
        let (series, _) = two_class_data();
        let opts = KShapeOptions::new(2).with_seed(7);
        let a = fit_store(&series[..], &opts).expect("slice fit");
        let view = ChannelView::new(&series[..], 1).expect("view");
        let b = fit_store(&view, &opts).expect("channel-view fit");
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.inertia.to_bits(), b.inertia.to_bits());
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn three_channel_rows_cluster_end_to_end() {
        let (series, truth) = two_class_data();
        // Each row stacks its class shape three times channel-major, so
        // the summed per-channel NCC sees three consistent votes for
        // the same alignment.
        let rows: Vec<Vec<f64>> = series.iter().map(|s| s.repeat(3)).collect();
        let view = ChannelView::new(&rows[..], 3).expect("view");
        let opts = KShapeOptions::new(2).with_seed(7);
        let fit = fit_store(&view, &opts).expect("multichannel fit");
        assert!(agrees(&fit.labels, &truth), "labels {:?}", fit.labels);
        for c in &fit.centroids {
            assert_eq!(c.len(), 3 * 64);
        }
        // A fresh assignment sweep over the fitted centroids is a fixed
        // point of the converged fit.
        let mut labels = fit.labels.clone();
        let mut dists = vec![0.0f64; rows.len()];
        let changed = assign_store(&view, &fit.centroids, &mut labels, &mut dists).expect("assign");
        assert_eq!(changed, 0);
        assert_eq!(labels, fit.labels);
    }

    /// Two shape classes at native lengths 48..=62: a narrow bump versus
    /// a two-period sine, both z-normalized per row.
    fn ragged_two_class_data() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for j in 0..8usize {
            let len = 48 + 2 * j;
            let a: Vec<f64> = (0..len)
                .map(|i| (-((i as f64 - 14.0 - 1.5 * j as f64) / 2.5).powi(2)).exp())
                .collect();
            let b: Vec<f64> = (0..len)
                .map(|i| (i as f64 * std::f64::consts::TAU * 2.0 / len as f64).sin())
                .collect();
            rows.push(z_normalize(&a));
            truth.push(0);
            rows.push(z_normalize(&b));
            truth.push(1);
        }
        (rows, truth)
    }

    #[test]
    fn ragged_rows_cluster_end_to_end() {
        let (rows, truth) = ragged_two_class_data();
        let store = RaggedStore::from_rows(&rows).expect("store");
        let opts = KShapeOptions::new(2).with_seed(7);
        let fit = fit_store(&store, &opts).expect("ragged fit");
        assert!(fit.converged);
        assert!(agrees(&fit.labels, &truth), "labels {:?}", fit.labels);
        for c in &fit.centroids {
            assert_eq!(c.len(), store.max_len());
        }
        let mut labels = fit.labels.clone();
        let mut dists = vec![0.0f64; rows.len()];
        let changed =
            assign_store(&store, &fit.centroids, &mut labels, &mut dists).expect("assign");
        assert_eq!(changed, 0);
    }

    #[test]
    fn ragged_resident_and_spilled_fits_are_bit_identical() {
        let (rows, _) = ragged_two_class_data();
        let resident = RaggedStore::from_rows(&rows).expect("resident");
        let dir = std::env::temp_dir().join(format!("ooc_ragged_spill_{}", std::process::id()));
        let mut spilled = RaggedStore::spilled(
            ElemType::F64,
            SpillConfig::new(&dir)
                .rows_per_segment(3)
                .resident_segments(1),
        )
        .expect("spill tier");
        for row in &rows {
            spilled.push_row(row).expect("push");
        }
        let opts = KShapeOptions::new(2).with_seed(7);
        let a = fit_store(&resident, &opts).expect("resident fit");
        let b = fit_store(&spilled, &opts).expect("spilled fit");
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.inertia.to_bits(), b.inertia.to_bits());
        assert_eq!(a.centroids, b.centroids);
        assert!(spilled.spill_stats().expect("stats").sealed_segments > 0);
    }

    #[test]
    fn assign_store_rejects_mismatched_buffers() {
        let (series, _) = two_class_data();
        let cents = vec![z_normalize(&series[0])];
        let mut labels = vec![0usize; 3];
        let mut dists = vec![0.0f64; series.len()];
        assert!(matches!(
            assign_store(&series[..], &cents, &mut labels, &mut dists),
            Err(TsError::LengthMismatch { .. })
        ));
        let mut labels = vec![0usize; series.len()];
        let bad_cents = vec![vec![0.0; 7]];
        assert!(matches!(
            assign_store(&series[..], &bad_cents, &mut labels, &mut dists),
            Err(TsError::LengthMismatch { .. })
        ));
    }
}
