//! Property-based tests for SBD, shape extraction, and k-Shape.

use kshape::extraction::{shape_extraction, EigenMethod};
use kshape::sbd::{sbd, sbd_with, CorrMethod, SbdPlan};
use kshape::{KShape, KShapeConfig};
use proptest::prelude::*;
use tsdata::normalize::z_normalize;

fn pair() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (2usize..40).prop_flat_map(|m| {
        (
            prop::collection::vec(-100.0f64..100.0, m..=m),
            prop::collection::vec(-100.0f64..100.0, m..=m),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sbd_range_symmetry_identity((x, y) in pair()) {
        let d = sbd(&x, &y).dist;
        prop_assert!((-1e-9..=2.0 + 1e-9).contains(&d));
        prop_assert!((d - sbd(&y, &x).dist).abs() < 1e-9);
        prop_assert!(sbd(&x, &x).dist.abs() < 1e-9);
    }

    #[test]
    fn sbd_methods_agree((x, y) in pair()) {
        let a = sbd_with(&x, &y, CorrMethod::FftPow2);
        let b = sbd_with(&x, &y, CorrMethod::FftExact);
        let c = sbd_with(&x, &y, CorrMethod::Naive);
        prop_assert!((a.dist - b.dist).abs() < 1e-7);
        prop_assert!((a.dist - c.dist).abs() < 1e-7);
    }

    #[test]
    fn sbd_plan_matches_direct((x, y) in pair()) {
        let plan = SbdPlan::new(x.len());
        let prepared = plan.prepare(&x);
        let fast = plan.sbd_prepared(&prepared, &y);
        let slow = sbd(&x, &y);
        prop_assert!((fast.dist - slow.dist).abs() < 1e-9);
        prop_assert_eq!(fast.shift, slow.shift);
    }

    #[test]
    fn sbd_scale_invariance((x, y) in pair(), a in 0.001f64..1000.0) {
        let ys: Vec<f64> = y.iter().map(|v| a * v).collect();
        let d1 = sbd(&x, &y).dist;
        let d2 = sbd(&x, &ys).dist;
        prop_assert!((d1 - d2).abs() < 1e-7);
    }

    #[test]
    fn sbd_alignment_never_increases_pointwise_mismatch((x, y) in pair()) {
        // After alignment, the NCCc at lag 0 of (x, aligned) must equal
        // the peak NCCc of (x, y): aligning by the reported shift is
        // exactly what the peak promised.
        let zx = z_normalize(&x);
        let zy = z_normalize(&y);
        prop_assume!(zx.iter().any(|&v| v != 0.0) && zy.iter().any(|&v| v != 0.0));
        let r = sbd(&zx, &zy);
        let dot: f64 = zx.iter().zip(r.aligned.iter()).map(|(a, b)| a * b).sum();
        let ex: f64 = zx.iter().map(|v| v * v).sum::<f64>();
        let ey: f64 = zy.iter().map(|v| v * v).sum::<f64>();
        let ncc0 = dot / (ex * ey).sqrt();
        prop_assert!(((1.0 - ncc0) - r.dist).abs() < 1e-7,
            "dist {} vs 1-ncc0 {}", r.dist, 1.0 - ncc0);
    }

    #[test]
    fn extraction_output_is_z_normalized(
        (x, y) in pair(),
    ) {
        let zx = z_normalize(&x);
        let zy = z_normalize(&y);
        prop_assume!(zx.iter().any(|&v| v != 0.0) && zy.iter().any(|&v| v != 0.0));
        let members: Vec<&[f64]> = vec![&zx, &zy];
        let c = shape_extraction(&members, &zx, EigenMethod::Full);
        let m = c.len() as f64;
        let mean: f64 = c.iter().sum::<f64>() / m;
        let var: f64 = c.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / m;
        prop_assert!(mean.abs() < 1e-7);
        prop_assert!((var - 1.0).abs() < 1e-7 || c.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn extraction_eigen_backends_agree((x, y) in pair()) {
        let zx = z_normalize(&x);
        let zy = z_normalize(&y);
        prop_assume!(zx.iter().any(|&v| v != 0.0) && zy.iter().any(|&v| v != 0.0));
        let members: Vec<&[f64]> = vec![&zx, &zy];
        let full = shape_extraction(&members, &zx, EigenMethod::Full);
        let power = shape_extraction(&members, &zx, EigenMethod::Power);
        // Same subspace up to numerical tolerance: SBD between them ~ 0.
        let d = sbd(&full, &power).dist;
        prop_assert!(d < 1e-5, "backends disagree: SBD {d}");
    }

    #[test]
    fn kshape_labels_always_valid(
        seed in 0u64..1000,
        k in 1usize..4,
    ) {
        // Small fixed dataset; fuzz seeds and k.
        let series: Vec<Vec<f64>> = (0..8)
            .map(|i| {
                z_normalize(
                    &(0..24)
                        .map(|t| ((t + i * 3) as f64 * 0.4).sin() + (i as f64 * 0.2))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let r = KShape::new(KShapeConfig { k, seed, max_iter: 20, ..Default::default() })
            .fit(&series);
        prop_assert_eq!(r.labels.len(), 8);
        prop_assert!(r.labels.iter().all(|&l| l < k));
        prop_assert!(r.inertia >= -1e-9);
        // Every cluster in 0..k is non-empty (the algorithm re-seeds).
        for j in 0..k {
            prop_assert!(r.labels.contains(&j), "cluster {j} empty");
        }
        prop_assert_eq!(r.centroids.len(), k);
    }
}
