//! Property-based tests for SBD, shape extraction, and k-Shape (tscheck
//! harness).

use kshape::extraction::{shape_extraction, EigenMethod};
use kshape::ncc::{ncc, ncc_max, ncc_max_prepared, ncc_prepared, NccVariant};
use kshape::sbd::{sbd, sbd_with, CorrMethod, SbdPlan, SbdScratch};
use kshape::{KShape, KShapeConfig, KShapeOptions, Sbd, SbdOptions};
use tscheck::Gen;
use tsdata::normalize::z_normalize;

fn pair(g: &mut Gen) -> (Vec<f64>, Vec<f64>) {
    g.pair_f64(2..40, -100.0..100.0)
}

tscheck::props! {
    #[cases(48)]
    fn sbd_range_symmetry_identity(g) {
        let (x, y) = pair(g);
        let d = sbd(&x, &y).dist;
        assert!((-1e-9..=2.0 + 1e-9).contains(&d));
        assert!((d - sbd(&y, &x).dist).abs() < 1e-9);
        assert!(sbd(&x, &x).dist.abs() < 1e-9);
    }

    #[cases(48)]
    fn sbd_methods_agree(g) {
        let (x, y) = pair(g);
        let a = sbd_with(&x, &y, CorrMethod::FftPow2);
        let b = sbd_with(&x, &y, CorrMethod::FftExact);
        let c = sbd_with(&x, &y, CorrMethod::Naive);
        assert!((a.dist - b.dist).abs() < 1e-7);
        assert!((a.dist - c.dist).abs() < 1e-7);
    }

    #[cases(48)]
    fn sbd_plan_matches_direct(g) {
        let (x, y) = pair(g);
        let plan = SbdPlan::new(x.len());
        let prepared = plan.prepare(&x);
        let fast = plan.sbd_prepared(&prepared, &y);
        let slow = sbd(&x, &y);
        assert!((fast.dist - slow.dist).abs() < 1e-9);
        assert_eq!(fast.shift, slow.shift);
    }

    #[cases(48)]
    fn sbd_scale_invariance(g) {
        let (x, y) = pair(g);
        let a = g.f64_in(0.001..1000.0);
        let ys: Vec<f64> = y.iter().map(|v| a * v).collect();
        let d1 = sbd(&x, &y).dist;
        let d2 = sbd(&x, &ys).dist;
        assert!((d1 - d2).abs() < 1e-7);
    }

    #[cases(48)]
    fn sbd_alignment_never_increases_pointwise_mismatch(g) {
        // After alignment, the NCCc at lag 0 of (x, aligned) must equal
        // the peak NCCc of (x, y): aligning by the reported shift is
        // exactly what the peak promised.
        let (x, y) = pair(g);
        let zx = z_normalize(&x);
        let zy = z_normalize(&y);
        tscheck::assume!(zx.iter().any(|&v| v != 0.0) && zy.iter().any(|&v| v != 0.0));
        let r = sbd(&zx, &zy);
        let dot: f64 = zx.iter().zip(r.aligned.iter()).map(|(a, b)| a * b).sum();
        let ex: f64 = zx.iter().map(|v| v * v).sum::<f64>();
        let ey: f64 = zy.iter().map(|v| v * v).sum::<f64>();
        let ncc0 = dot / (ex * ey).sqrt();
        assert!(((1.0 - ncc0) - r.dist).abs() < 1e-7,
            "dist {} vs 1-ncc0 {}", r.dist, 1.0 - ncc0);
    }

    #[cases(48)]
    fn extraction_output_is_z_normalized(g) {
        let (x, y) = pair(g);
        let zx = z_normalize(&x);
        let zy = z_normalize(&y);
        tscheck::assume!(zx.iter().any(|&v| v != 0.0) && zy.iter().any(|&v| v != 0.0));
        let members: Vec<&[f64]> = vec![&zx, &zy];
        let c = shape_extraction(&members, &zx, EigenMethod::Full);
        let m = c.len() as f64;
        let mean: f64 = c.iter().sum::<f64>() / m;
        let var: f64 = c.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / m;
        assert!(mean.abs() < 1e-7);
        assert!((var - 1.0).abs() < 1e-7 || c.iter().all(|&v| v == 0.0));
    }

    #[cases(48)]
    fn extraction_eigen_backends_agree(g) {
        let (x, y) = pair(g);
        let zx = z_normalize(&x);
        let zy = z_normalize(&y);
        tscheck::assume!(zx.iter().any(|&v| v != 0.0) && zy.iter().any(|&v| v != 0.0));
        let members: Vec<&[f64]> = vec![&zx, &zy];
        let full = shape_extraction(&members, &zx, EigenMethod::Full);
        let power = shape_extraction(&members, &zx, EigenMethod::Power);
        // Same subspace up to numerical tolerance: SBD between them ~ 0.
        let d = sbd(&full, &power).dist;
        assert!(d < 1e-5, "backends disagree: SBD {d}");
    }

    #[cases(48)]
    fn kshape_labels_always_valid(g) {
        // Small fixed dataset; fuzz seeds and k.
        let seed = g.u64_in(0..1000);
        let k = g.usize_in(1..4);
        let series: Vec<Vec<f64>> = (0..8)
            .map(|i| {
                z_normalize(
                    &(0..24)
                        .map(|t| ((t + i * 3) as f64 * 0.4).sin() + (i as f64 * 0.2))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let opts = KShapeOptions::from(KShapeConfig { k, seed, max_iter: 20, ..Default::default() });
        let r = KShape::fit_with(&series, &opts).expect("generated data is clean");
        assert_eq!(r.labels.len(), 8);
        assert!(r.labels.iter().all(|&l| l < k));
        assert!(r.inertia >= -1e-9);
        // Every cluster in 0..k is non-empty (the algorithm re-seeds).
        for j in 0..k {
            assert!(r.labels.contains(&j), "cluster {j} empty");
        }
        assert_eq!(r.centroids.len(), k);
    }

    #[cases(48)]
    fn batched_ncc_matches_pairwise(g) {
        // Every variant of the cached-spectra NCC agrees with the direct
        // pairwise path to 1e-9: the batched sweep may never change what
        // the distance measures.
        let (x, y) = pair(g);
        let plan = SbdPlan::new(x.len());
        let (px, py) = (plan.prepare(&x), plan.prepare(&y));
        let mut scratch = SbdScratch::default();
        for variant in [NccVariant::Coefficient, NccVariant::Biased, NccVariant::Unbiased] {
            let batched = ncc_prepared(&plan, &px, &py, variant, &mut scratch);
            let pairwise = ncc(&x, &y, variant);
            assert_eq!(batched.len(), pairwise.len());
            let scale: f64 = pairwise.iter().map(|v| v.abs()).fold(1.0, f64::max);
            for (i, (a, b)) in batched.iter().zip(pairwise.iter()).enumerate() {
                assert!((a - b).abs() / scale < 1e-9, "{variant:?} lag {i}: {a} vs {b}");
            }
            let (bv, bl) = ncc_max_prepared(&plan, &px, &py, variant, &mut scratch);
            let (pv, pl) = ncc_max(&x, &y, variant);
            assert!((bv - pv).abs() < 1e-9);
            assert_eq!(bl, pl);
        }
    }

    #[cases(48)]
    fn spectra_kernel_matches_pairwise_sbd(g) {
        // The allocation-free batched kernel (both spectra cached) is
        // bit-compatible with the pairwise path on distance and shift.
        let (x, y) = pair(g);
        let plan = SbdPlan::new(x.len());
        let (px, py) = (plan.prepare(&x), plan.prepare(&y));
        let mut scratch = SbdScratch::default();
        let (dist, shift) = plan.sbd_spectra(&px, &py, &mut scratch);
        let direct = sbd(&x, &y);
        assert_eq!(dist.to_bits(), direct.dist.to_bits());
        assert_eq!(shift, direct.shift);
    }

    #[cases(32)]
    fn unequal_plan_path_is_symmetric_and_bounded(g) {
        let x = g.vec_f64(2..40, -100.0..100.0);
        let y = g.vec_f64(2..40, -100.0..100.0);
        let s = Sbd::new();
        let d = s.distance(&x, &y, &SbdOptions::new()).expect("finite input");
        assert!((-1e-9..=2.0 + 1e-9).contains(&d.dist));
        assert_eq!(d.aligned.len(), x.len());
        let d2 = s.distance(&y, &x, &SbdOptions::new()).expect("finite input");
        assert!((d.dist - d2.dist).abs() < 1e-9);
    }
}
