//! Edit distance with Real Penalty (ERP; Chen & Ng, VLDB 2004 — the
//! paper's reference [11], "on the marriage of Lp-norms and edit
//! distance").
//!
//! ERP is an *elastic* measure like DTW but, unlike DTW, a true metric: a
//! gap aligned against element `v` costs `|v − g|` for a fixed gap value
//! `g` (conventionally 0 on z-normalized data), and matched elements cost
//! `|xᵢ − yⱼ|`:
//!
//! ```text
//! dp[i][j] = min( dp[i-1][j-1] + |xᵢ − yⱼ|,     match
//!                 dp[i-1][j]   + |xᵢ − g|,      gap in y
//!                 dp[i][j-1]   + |yⱼ − g| )     gap in x
//! ```

use crate::Distance;

/// ERP distance with a configurable gap value.
#[derive(Debug, Clone, Copy)]
pub struct Erp {
    /// Gap element `g`; 0 is the standard choice for z-normalized series.
    pub gap: f64,
}

impl Default for Erp {
    fn default() -> Self {
        Erp { gap: 0.0 }
    }
}

/// Computes the ERP distance between two sequences (lengths may differ).
///
/// Uses two rolling rows: O(|x|·|y|) time, O(|y|) space.
#[must_use]
pub fn erp_distance(x: &[f64], y: &[f64], gap: f64) -> f64 {
    let (nx, ny) = (x.len(), y.len());
    if nx == 0 {
        return y.iter().map(|v| (v - gap).abs()).sum();
    }
    if ny == 0 {
        return x.iter().map(|v| (v - gap).abs()).sum();
    }
    let mut prev = vec![0.0; ny + 1];
    let mut curr = vec![0.0; ny + 1];
    // First row: everything in y matched against gaps.
    for j in 1..=ny {
        prev[j] = prev[j - 1] + (y[j - 1] - gap).abs();
    }
    for i in 1..=nx {
        curr[0] = prev[0] + (x[i - 1] - gap).abs();
        for j in 1..=ny {
            let matched = prev[j - 1] + (x[i - 1] - y[j - 1]).abs();
            let gap_y = prev[j] + (x[i - 1] - gap).abs();
            let gap_x = curr[j - 1] + (y[j - 1] - gap).abs();
            curr[j] = matched.min(gap_y).min(gap_x);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[ny]
}

impl Distance for Erp {
    fn name(&self) -> String {
        "ERP".into()
    }

    fn dist(&self, x: &[f64], y: &[f64]) -> f64 {
        erp_distance(x, y, self.gap)
    }

    /// O(m²) DP — quadratic cost hint for budget-aware loops.
    fn cost_hint(&self, m: usize) -> u64 {
        let m = m.max(1) as u64;
        m.saturating_mul(m)
    }
}

#[cfg(test)]
mod tests {
    use super::{erp_distance, Erp};
    use crate::Distance;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        }
    }

    #[test]
    fn identity_and_symmetry() {
        let mut next = lcg(1);
        let x: Vec<f64> = (0..20).map(|_| next()).collect();
        let y: Vec<f64> = (0..20).map(|_| next()).collect();
        assert_eq!(erp_distance(&x, &x, 0.0), 0.0);
        assert!((erp_distance(&x, &y, 0.0) - erp_distance(&y, &x, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn triangle_inequality_holds() {
        // ERP is a metric; spot-check the triangle inequality on random
        // triples (this is where DTW fails).
        let mut next = lcg(5);
        for _ in 0..50 {
            let a: Vec<f64> = (0..12).map(|_| next()).collect();
            let b: Vec<f64> = (0..12).map(|_| next()).collect();
            let c: Vec<f64> = (0..12).map(|_| next()).collect();
            let ab = erp_distance(&a, &b, 0.0);
            let bc = erp_distance(&b, &c, 0.0);
            let ac = erp_distance(&a, &c, 0.0);
            assert!(ac <= ab + bc + 1e-9, "{ac} > {ab} + {bc}");
        }
    }

    #[test]
    fn empty_sequence_costs_gap_alignment() {
        let y = [1.0, -2.0, 3.0];
        assert!((erp_distance(&[], &y, 0.0) - 6.0).abs() < 1e-12);
        assert!((erp_distance(&y, &[], 0.0) - 6.0).abs() < 1e-12);
        assert_eq!(erp_distance(&[], &[], 0.0), 0.0);
    }

    #[test]
    fn hand_computed_case() {
        // x = [0], y = [0, 5], g = 0: match 0-0 (cost 0) + gap for 5
        // (cost 5) = 5.
        assert!((erp_distance(&[0.0], &[0.0, 5.0], 0.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn unequal_lengths_supported() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, 3.0];
        let d = erp_distance(&x, &y, 0.0);
        assert!(d > 0.0 && d.is_finite());
    }

    #[test]
    fn absorbs_insertion_cheaper_than_ed_mismatch() {
        // Insert one near-gap element: ERP charges ~|v - g| for it while
        // the rest matches perfectly.
        let x = [1.0, 5.0, 1.0, 1.0];
        let y = [1.0, 0.1, 5.0, 1.0]; // 0.1 inserted, tail shifted
        let d = erp_distance(&x, &y, 0.0);
        assert!(d <= 0.1 + 1.0 + 1e-9, "ERP {d}");
    }

    #[test]
    fn distance_trait() {
        let e = Erp::default();
        assert_eq!(e.name(), "ERP");
        assert_eq!(e.dist(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }
}
