//! 1-NN classification, the paper's protocol for evaluating distance
//! measures (Table 2): every test series is assigned the label of its
//! nearest training series, and accuracy is the fraction classified
//! correctly. The 1-NN classifier is parameter-free and deterministic,
//! which is why the paper (following Ding et al.) uses it.

use tsdata::dataset::Dataset;
use tserror::{ensure_finite, validate_series_set, TsError, TsResult};

use crate::dtw::dtw_distance;
use crate::lb_keogh::{lb_keogh, Envelope};
use crate::Distance;

/// Options for [`one_nn_accuracy_with`]: optional budget, cancellation,
/// and observability for the 1-NN scan.
///
/// The 1-NN protocol itself is parameter-free, so unlike the clustering
/// options objects there is no algorithm config — only the control and
/// telemetry surface.
#[derive(Clone, Default)]
pub struct NnOptions<'a> {
    /// Optional execution budget (deadline / iteration cap / cost quota).
    pub budget: Option<tsrun::Budget>,
    /// Optional cooperative cancellation token.
    pub cancel: Option<tsrun::CancelToken>,
    /// Optional telemetry recorder.
    pub recorder: Option<&'a dyn tsobs::Recorder>,
}

impl std::fmt::Debug for NnOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NnOptions")
            .field("budget", &self.budget)
            .field("cancel", &self.cancel.is_some())
            .field("recorder", &self.recorder.is_some())
            .finish()
    }
}

impl<'a> NnOptions<'a> {
    /// Options with no budget, no cancellation, and no recorder.
    #[must_use]
    pub fn new() -> Self {
        NnOptions::default()
    }

    /// Attaches an execution budget.
    #[must_use]
    pub fn with_budget(mut self, budget: tsrun::Budget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Attaches a cooperative cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, cancel: tsrun::CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Attaches a telemetry recorder.
    #[must_use]
    pub fn with_recorder(mut self, recorder: &'a dyn tsobs::Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    fn control(&self) -> tsrun::RunControl {
        tsrun::RunControl::from_parts(self.budget, self.cancel.clone())
    }

    fn obs(&self) -> tsobs::Obs<'a> {
        tsobs::Obs::from_option(self.recorder)
    }
}

/// Validates a train/test pair once up front: both series sets must be
/// internally consistent (finite, equal-length) and, when both are
/// non-empty, their series lengths must agree.
fn validate_split(train: &Dataset, test: &Dataset) -> TsResult<()> {
    if !train.is_empty() {
        validate_series_set(&train.series)?;
    }
    if !test.is_empty() {
        validate_series_set(&test.series)?;
    }
    if !train.is_empty() && !test.is_empty() && train.series_len() != test.series_len() {
        return Err(TsError::LengthMismatch {
            expected: train.series_len(),
            found: test.series_len(),
            series: 0,
        });
    }
    Ok(())
}

/// Classifies one query by scanning all training series with `dist`.
///
/// Returns the predicted label, or `None` when the training set is empty.
#[must_use]
pub fn classify_one<D: Distance + ?Sized>(
    dist: &D,
    train: &Dataset,
    query: &[f64],
) -> Option<usize> {
    let mut best = f64::INFINITY;
    let mut label = None;
    for (s, &l) in train.series.iter().zip(train.labels.iter()) {
        let d = dist.dist(query, s);
        if d < best {
            best = d;
            label = Some(l);
        }
    }
    label
}

/// Fallible [`classify_one`]: validates the training set and query once
/// before scanning.
///
/// Returns `Ok(None)` for an empty training set, matching the panicking
/// variant's semantics.
///
/// # Errors
///
/// [`TsError::NonFinite`] on a NaN/infinite sample, or
/// [`TsError::LengthMismatch`] when the query length differs from the
/// training series length.
pub fn try_classify_one<D: Distance + ?Sized>(
    dist: &D,
    train: &Dataset,
    query: &[f64],
) -> TsResult<Option<usize>> {
    if train.is_empty() {
        return Ok(None);
    }
    validate_series_set(&train.series)?;
    ensure_finite(query, 0)?;
    if query.len() != train.series_len() {
        return Err(TsError::LengthMismatch {
            expected: train.series_len(),
            found: query.len(),
            series: 0,
        });
    }
    Ok(classify_one(dist, train, query))
}

/// 1-NN classification accuracy of `dist` over a train/test split.
///
/// Returns 0 when the test set is empty.
#[must_use]
pub fn one_nn_accuracy<D: Distance + ?Sized>(dist: &D, train: &Dataset, test: &Dataset) -> f64 {
    if test.is_empty() {
        return 0.0;
    }
    let correct = test
        .series
        .iter()
        .zip(test.labels.iter())
        .filter(|(s, &l)| classify_one(dist, train, s) == Some(l))
        .count();
    correct as f64 / test.n_series() as f64
}

/// Fallible [`one_nn_accuracy`]: validates both splits once up front.
///
/// # Errors
///
/// [`TsError::NonFinite`] or [`TsError::LengthMismatch`] when either
/// split contains corrupt or inconsistently sized series.
pub fn try_one_nn_accuracy<D: Distance + ?Sized>(
    dist: &D,
    train: &Dataset,
    test: &Dataset,
) -> TsResult<f64> {
    validate_split(train, test)?;
    Ok(one_nn_accuracy(dist, train, test))
}

/// Budget-, cancellation-, and observability-aware 1-NN accuracy.
///
/// The scan charges [`Distance::cost_hint`] per train/test comparison, so
/// a wall-clock deadline on a quadratic measure (DTW over thousands of
/// series) is detected within a bounded amount of *work* rather than
/// after a full test row completes. With a recorder attached it emits an
/// `nn.one_nn` span plus `nn.queries` and `nn.comparisons` counters; the
/// accuracy itself is bit-identical armed or disarmed.
///
/// # Errors
///
/// Everything [`try_one_nn_accuracy`] reports, plus
/// [`TsError::Stopped`] when the control trips; the error carries the
/// predicted labels of the queries classified so far and the count of
/// completed queries as `iterations`.
///
/// # Examples
///
/// ```
/// use tsdist::nn::{one_nn_accuracy_with, NnOptions};
/// use tsdist::EuclideanDistance;
/// use tsdata::dataset::Dataset;
///
/// let train = Dataset::new(
///     "train",
///     vec![vec![0.0, 0.0], vec![5.0, 5.0]],
///     vec![0, 1],
/// );
/// let test = Dataset::new("test", vec![vec![0.1, 0.1]], vec![0]);
/// let acc = one_nn_accuracy_with(&EuclideanDistance, &train, &test, &NnOptions::new()).unwrap();
/// assert_eq!(acc, 1.0);
/// ```
pub fn one_nn_accuracy_with<D: Distance + ?Sized>(
    dist: &D,
    train: &Dataset,
    test: &Dataset,
    opts: &NnOptions<'_>,
) -> TsResult<f64> {
    let ctrl = opts.control();
    let obs = opts.obs();
    let scan_span = obs.span("nn.one_nn");
    let acc = one_nn_core(dist, train, test, &ctrl, obs)?;
    scan_span.end();
    ctrl.report_cost(obs);
    Ok(acc)
}

/// Shared instrumented scan behind [`one_nn_accuracy_with`].
fn one_nn_core<D: Distance + ?Sized>(
    dist: &D,
    train: &Dataset,
    test: &Dataset,
    ctrl: &tsrun::RunControl,
    obs: tsobs::Obs<'_>,
) -> TsResult<f64> {
    validate_split(train, test)?;
    if test.is_empty() {
        return Ok(0.0);
    }
    let m = train.series_len();
    let pair_cost = dist.cost_hint(m);
    let mut predicted = Vec::with_capacity(test.n_series());
    let mut correct = 0usize;
    let mut comparisons = 0u64;
    for (q, &ql) in test.series.iter().zip(test.labels.iter()) {
        let mut best = f64::INFINITY;
        let mut label = None;
        for (s, &l) in train.series.iter().zip(train.labels.iter()) {
            if let Err(reason) = ctrl.charge(pair_cost) {
                let done = predicted.len();
                obs.counter("nn.queries", done as u64);
                obs.counter("nn.comparisons", comparisons);
                return Err(tsrun::RunControl::stop_error(predicted, done, reason));
            }
            let d = dist.dist(q, s);
            comparisons += 1;
            if d < best {
                best = d;
                label = Some(l);
            }
        }
        predicted.push(label.unwrap_or(0));
        if label == Some(ql) {
            correct += 1;
        }
    }
    obs.counter("nn.queries", predicted.len() as u64);
    obs.counter("nn.comparisons", comparisons);
    Ok(correct as f64 / test.n_series() as f64)
}

/// 1-NN accuracy for cDTW with LB_Keogh cascading (the `cDTW_LB` rows of
/// Table 2): training envelopes are precomputed, candidates whose lower
/// bound exceeds the best-so-far distance are pruned without running the
/// DP.
///
/// `window = None` runs unconstrained DTW with a full-width envelope
/// (`DTW_LB`). Returns `(accuracy, pruned_fraction)` so experiments can
/// report the pruning effectiveness.
#[must_use]
pub fn one_nn_accuracy_lb(window: Option<usize>, train: &Dataset, test: &Dataset) -> (f64, f64) {
    if test.is_empty() || train.is_empty() {
        return (0.0, 0.0);
    }
    let m = train.series_len();
    let w = window.unwrap_or(m).min(m);
    let envelopes: Vec<Envelope> = train.series.iter().map(|s| Envelope::new(s, w)).collect();

    let mut pruned = 0usize;
    let mut evaluated = 0usize;
    let mut correct = 0usize;
    for (q, &ql) in test.series.iter().zip(test.labels.iter()) {
        let mut best = f64::INFINITY;
        let mut label = None;
        for ((s, &l), env) in train
            .series
            .iter()
            .zip(train.labels.iter())
            .zip(envelopes.iter())
        {
            evaluated += 1;
            if lb_keogh(q, env) >= best {
                pruned += 1;
                continue;
            }
            let d = dtw_distance(q, s, window);
            if d < best {
                best = d;
                label = Some(l);
            }
        }
        if label == Some(ql) {
            correct += 1;
        }
    }
    (
        correct as f64 / test.n_series() as f64,
        pruned as f64 / evaluated.max(1) as f64,
    )
}

/// Fallible [`one_nn_accuracy_lb`]: validates both splits once up front so
/// the envelope construction and the DP never see NaN.
///
/// # Errors
///
/// [`TsError::NonFinite`] or [`TsError::LengthMismatch`] when either
/// split contains corrupt or inconsistently sized series.
pub fn try_one_nn_accuracy_lb(
    window: Option<usize>,
    train: &Dataset,
    test: &Dataset,
) -> TsResult<(f64, f64)> {
    validate_split(train, test)?;
    Ok(one_nn_accuracy_lb(window, train, test))
}

#[cfg(test)]
mod tests {
    use super::{
        classify_one, one_nn_accuracy, one_nn_accuracy_lb, try_classify_one, try_one_nn_accuracy,
        try_one_nn_accuracy_lb,
    };
    use crate::ed::EuclideanDistance;
    use tsdata::dataset::Dataset;
    use tserror::TsError;

    fn toy_split() -> (Dataset, Dataset) {
        // Two well-separated classes: low values vs high values.
        let train = Dataset::new(
            "train",
            vec![
                vec![0.0, 0.1, 0.0],
                vec![0.1, 0.0, 0.1],
                vec![5.0, 5.1, 5.0],
                vec![5.1, 5.0, 5.1],
            ],
            vec![0, 0, 1, 1],
        );
        let test = Dataset::new(
            "test",
            vec![vec![0.05, 0.05, 0.05], vec![5.05, 5.05, 5.05]],
            vec![0, 1],
        );
        (train, test)
    }

    #[test]
    fn perfect_separation_gives_full_accuracy() {
        let (train, test) = toy_split();
        assert_eq!(one_nn_accuracy(&EuclideanDistance, &train, &test), 1.0);
    }

    #[test]
    fn wrong_labels_give_zero_accuracy() {
        let (train, mut test) = toy_split();
        test.labels = vec![1, 0];
        assert_eq!(one_nn_accuracy(&EuclideanDistance, &train, &test), 0.0);
    }

    #[test]
    fn classify_one_empty_train() {
        let train = Dataset::new("e", vec![], vec![]);
        assert_eq!(classify_one(&EuclideanDistance, &train, &[1.0]), None);
    }

    #[test]
    fn empty_test_set() {
        let (train, _) = toy_split();
        let test = Dataset::new("e", vec![], vec![]);
        assert_eq!(one_nn_accuracy(&EuclideanDistance, &train, &test), 0.0);
    }

    #[test]
    fn lb_cascade_matches_plain_cdtw_accuracy() {
        let (train, test) = toy_split();
        let plain = one_nn_accuracy(&crate::dtw::Dtw::with_window(1), &train, &test);
        let (lb, _) = one_nn_accuracy_lb(Some(1), &train, &test);
        assert_eq!(plain, lb);
    }

    #[test]
    fn try_variants_match_and_report_typed_errors() {
        let (train, test) = toy_split();
        assert_eq!(
            try_one_nn_accuracy(&EuclideanDistance, &train, &test),
            Ok(one_nn_accuracy(&EuclideanDistance, &train, &test))
        );
        assert_eq!(
            try_one_nn_accuracy_lb(Some(1), &train, &test),
            Ok(one_nn_accuracy_lb(Some(1), &train, &test))
        );
        assert_eq!(
            try_classify_one(&EuclideanDistance, &train, &[0.0, 0.0, 0.0]),
            Ok(classify_one(&EuclideanDistance, &train, &[0.0, 0.0, 0.0]))
        );

        // Empty train keeps the `None` contract.
        let empty = Dataset::new("e", vec![], vec![]);
        assert_eq!(
            try_classify_one(&EuclideanDistance, &empty, &[1.0]),
            Ok(None)
        );
        assert_eq!(
            try_one_nn_accuracy(&EuclideanDistance, &train, &empty),
            Ok(0.0)
        );

        // NaN in a training series is a typed error.
        let bad = Dataset::new("bad", vec![vec![0.0, f64::NAN, 0.0]], vec![0]);
        assert_eq!(
            try_one_nn_accuracy(&EuclideanDistance, &bad, &test),
            Err(TsError::NonFinite {
                series: 0,
                index: 1
            })
        );
        assert!(matches!(
            try_one_nn_accuracy_lb(Some(1), &bad, &test),
            Err(TsError::NonFinite { .. })
        ));

        // Query of the wrong length is a typed mismatch, not a bogus answer.
        assert_eq!(
            try_classify_one(&EuclideanDistance, &train, &[1.0]),
            Err(TsError::LengthMismatch {
                expected: 3,
                found: 1,
                series: 0
            })
        );

        // Cross-split length disagreement is detected up front.
        let short = Dataset::new("short", vec![vec![0.0, 1.0]], vec![0]);
        assert_eq!(
            try_one_nn_accuracy(&EuclideanDistance, &train, &short),
            Err(TsError::LengthMismatch {
                expected: 3,
                found: 2,
                series: 0
            })
        );
    }

    #[test]
    fn lb_cascade_prunes_something_on_separated_data() {
        let (train, test) = toy_split();
        let (_, pruned) = one_nn_accuracy_lb(Some(1), &train, &test);
        assert!(pruned > 0.0, "expected some pruning, got {pruned}");
    }

    #[test]
    fn one_nn_with_matches_and_emits_telemetry() {
        use super::{one_nn_accuracy_with, NnOptions};
        let (train, test) = toy_split();
        let plain = one_nn_accuracy(&EuclideanDistance, &train, &test);
        let sink = tsobs::MemorySink::new();
        let armed = one_nn_accuracy_with(
            &EuclideanDistance,
            &train,
            &test,
            &NnOptions::new().with_recorder(&sink),
        )
        .expect("clean split");
        assert_eq!(plain.to_bits(), armed.to_bits());
        assert_eq!(sink.span_count("nn.one_nn"), 1);
        assert_eq!(sink.counter_total("nn.queries"), 2);
        assert_eq!(sink.counter_total("nn.comparisons"), 8);

        // A tripped budget still reports the partial scan counters.
        let sink2 = tsobs::MemorySink::new();
        let starved = NnOptions::new()
            .with_budget(tsrun::Budget::unlimited().with_cost_cap(1))
            .with_recorder(&sink2);
        assert!(one_nn_accuracy_with(&EuclideanDistance, &train, &test, &starved).is_err());
        assert_eq!(sink2.counter_total("nn.queries"), 0);
    }
}
