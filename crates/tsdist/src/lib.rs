//! Time-series distance measures and 1-NN classification.
//!
//! Implements the baseline measures the paper compares SBD against
//! (Section 2.3, Table 2):
//!
//! * [`ed::EuclideanDistance`] — the ED baseline,
//! * [`dtw::Dtw`] — full Dynamic Time Warping and its Sakoe–Chiba
//!   constrained variant cDTW, with warping-path recovery,
//! * [`lb_keogh`] — the LB_Keogh lower bound and envelope machinery used to
//!   prune 1-NN search (`cDTW_LB` rows of Table 2),
//! * [`nn`] — 1-NN classification over a train/test split, with and
//!   without lower-bound cascading,
//! * [`tune`] — leave-one-out selection of the cDTW warping window
//!   (`cDTW-opt` of the paper).
//!
//! As extensions, the elastic measures the paper's Section 2.3 reviews are
//! implemented in full so the broader measure landscape of references
//! [11, 12, 75, 78] is testable side by side:
//!
//! * [`erp`] — Edit distance with Real Penalty (a metric),
//! * [`edr`] — Edit Distance on Real sequences (outlier-robust),
//! * [`lcss`] — Longest Common SubSequence (occlusion-tolerant),
//! * [`msm`] — Move-Split-Merge (a metric),
//! * [`cid`] — the Complexity-Invariant Distance of Batista et al.
//!   (reference [7]), covering the complexity entry of the Section 2.2
//!   invariance taxonomy.
//!
//! The SBD measure itself lives in the `kshape` crate (it is part of the
//! paper's contribution) and plugs in through the [`Distance`] trait.

#![warn(missing_docs)]

pub mod cid;
pub mod dtw;
pub mod ed;
pub mod edr;
pub mod erp;
pub mod lb_keogh;
pub mod lcss;
pub mod msm;
pub mod nn;
pub mod tune;

pub use dtw::Dtw;
pub use ed::EuclideanDistance;

/// A dissimilarity measure between two equal-length time series.
///
/// Implementations must be symmetric in intent (`d(x,y) = d(y,x)`) and
/// non-negative, but need not satisfy the triangle inequality (DTW and SBD
/// do not).
pub trait Distance: Send + Sync {
    /// Short machine-friendly name, e.g. `"ED"`, `"cDTW5"`, `"SBD"`.
    fn name(&self) -> String;

    /// Computes the dissimilarity of `x` and `y`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `x.len() != y.len()`.
    fn dist(&self, x: &[f64], y: &[f64]) -> f64;

    /// Approximate cost, in execution-control units (≈ one unit per
    /// sample of floating-point work), of one `dist` call on series of
    /// length `m`.
    ///
    /// Budget-aware loops charge this per pair so wall-clock deadline
    /// detection latency is bounded by *work*, not by call count: a
    /// quadratic kernel like unconstrained DTW reports `m²` and therefore
    /// reads the strided clock every pair, while a linear kernel batches
    /// several pairs per clock read. The default of `m` suits every
    /// linear/log-linear measure (ED, SBD, LB_Keogh).
    fn cost_hint(&self, m: usize) -> u64 {
        m.max(1) as u64
    }
}

impl<D: Distance + ?Sized> Distance for &D {
    fn name(&self) -> String {
        (**self).name()
    }
    fn dist(&self, x: &[f64], y: &[f64]) -> f64 {
        (**self).dist(x, y)
    }
    fn cost_hint(&self, m: usize) -> u64 {
        (**self).cost_hint(m)
    }
}
