//! Move-Split-Merge distance (MSM; Stefan, Athitsos & Das, TKDE 2013 —
//! the paper's reference [75]).
//!
//! MSM edits one series into the other with three operations: **move**
//! (change a value; costs the change), **split** (duplicate a value), and
//! **merge** (collapse two equal-ish values) — split/merge cost a constant
//! `c`, plus a penalty when the inserted value lies outside the interval
//! of its neighbors. MSM is a metric.
//!
//! ```text
//! dp[i][j] = min( dp[i-1][j-1] + |xᵢ − yⱼ|,
//!                 dp[i-1][j]   + C(xᵢ, xᵢ₋₁, yⱼ),
//!                 dp[i][j-1]   + C(yⱼ, xᵢ, yⱼ₋₁) )
//! C(new, a, b) = c                                if a ≤ new ≤ b or a ≥ new ≥ b
//!                c + min(|new − a|, |new − b|)    otherwise
//! ```

use crate::Distance;

/// MSM distance with a configurable split/merge cost.
#[derive(Debug, Clone, Copy)]
pub struct Msm {
    /// Split/merge base cost `c` (0.5 is a common default on z-normalized
    /// data).
    pub cost: f64,
}

impl Default for Msm {
    fn default() -> Self {
        Msm { cost: 0.5 }
    }
}

/// The split/merge cost `C(new, a, b)`.
#[inline]
fn edit_cost(new: f64, a: f64, b: f64, c: f64) -> f64 {
    if (a <= new && new <= b) || (a >= new && new >= b) {
        c
    } else {
        c + (new - a).abs().min((new - b).abs())
    }
}

/// Computes the MSM distance (lengths may differ; both must be non-empty).
///
/// # Panics
///
/// Panics if either sequence is empty.
#[must_use]
pub fn msm_distance(x: &[f64], y: &[f64], c: f64) -> f64 {
    let (nx, ny) = (x.len(), y.len());
    assert!(nx > 0 && ny > 0, "MSM requires non-empty sequences");
    let mut prev = vec![0.0; ny];
    let mut curr = vec![0.0; ny];
    prev[0] = (x[0] - y[0]).abs();
    for j in 1..ny {
        prev[j] = prev[j - 1] + edit_cost(y[j], y[j - 1], x[0], c);
    }
    for i in 1..nx {
        curr[0] = prev[0] + edit_cost(x[i], x[i - 1], y[0], c);
        for j in 1..ny {
            let matched = prev[j - 1] + (x[i] - y[j]).abs();
            let split_x = prev[j] + edit_cost(x[i], x[i - 1], y[j], c);
            let split_y = curr[j - 1] + edit_cost(y[j], x[i], y[j - 1], c);
            curr[j] = matched.min(split_x).min(split_y);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[ny - 1]
}

impl Distance for Msm {
    fn name(&self) -> String {
        "MSM".into()
    }

    fn dist(&self, x: &[f64], y: &[f64]) -> f64 {
        msm_distance(x, y, self.cost)
    }

    /// O(m²) DP — quadratic cost hint for budget-aware loops.
    fn cost_hint(&self, m: usize) -> u64 {
        let m = m.max(1) as u64;
        m.saturating_mul(m)
    }
}

#[cfg(test)]
mod tests {
    use super::{msm_distance, Msm};
    use crate::Distance;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        }
    }

    #[test]
    fn identity_and_symmetry() {
        let mut next = lcg(3);
        let x: Vec<f64> = (0..16).map(|_| next()).collect();
        let y: Vec<f64> = (0..16).map(|_| next()).collect();
        assert_eq!(msm_distance(&x, &x, 0.5), 0.0);
        assert!((msm_distance(&x, &y, 0.5) - msm_distance(&y, &x, 0.5)).abs() < 1e-9);
    }

    #[test]
    fn triangle_inequality_holds() {
        let mut next = lcg(9);
        for _ in 0..50 {
            let a: Vec<f64> = (0..10).map(|_| next()).collect();
            let b: Vec<f64> = (0..10).map(|_| next()).collect();
            let c: Vec<f64> = (0..10).map(|_| next()).collect();
            let ab = msm_distance(&a, &b, 0.5);
            let bc = msm_distance(&b, &c, 0.5);
            let ac = msm_distance(&a, &c, 0.5);
            assert!(ac <= ab + bc + 1e-9, "{ac} > {ab} + {bc}");
        }
    }

    #[test]
    fn pure_move_costs_the_value_change() {
        let x = [1.0, 2.0, 3.0];
        let y = [1.0, 2.5, 3.0];
        assert!((msm_distance(&x, &y, 0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn split_costs_c_when_value_between_neighbors() {
        // y duplicates x's middle value: one split at cost c.
        let x = [1.0, 2.0, 3.0];
        let y = [1.0, 2.0, 2.0, 3.0];
        let c = 0.37;
        assert!((msm_distance(&x, &y, c) - c).abs() < 1e-12);
    }

    #[test]
    fn out_of_interval_insertion_pays_extra() {
        // The inserted 10 is far outside its neighbors' interval.
        let x = [1.0, 2.0];
        let y = [1.0, 10.0, 2.0];
        let c = 0.5;
        let d = msm_distance(&x, &y, c);
        assert!(d > c + 5.0, "{d}");
    }

    #[test]
    fn unequal_lengths_supported() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 5.0];
        let d = msm_distance(&x, &y, 0.5);
        assert!(d.is_finite() && d > 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty() {
        let _ = msm_distance(&[], &[1.0], 0.5);
    }

    #[test]
    fn distance_trait() {
        let m = Msm::default();
        assert_eq!(m.name(), "MSM");
        assert_eq!(m.dist(&[2.0, 2.0], &[2.0, 2.0]), 0.0);
    }
}
