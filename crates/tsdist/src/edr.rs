//! Edit Distance on Real sequences (EDR; Chen, Özsu & Oria, SIGMOD 2005 —
//! the paper's reference [12], "robust and fast similarity search for
//! moving object trajectories").
//!
//! EDR quantizes real-valued matches with a tolerance ε: a pair within ε
//! costs 0, anything else costs 1 (substitution, insertion, or deletion):
//!
//! ```text
//! subcost  = 0 if |xᵢ − yⱼ| ≤ ε else 1
//! dp[i][j] = min(dp[i-1][j-1] + subcost, dp[i-1][j] + 1, dp[i][j-1] + 1)
//! ```
//!
//! The hard threshold gives robustness to outliers (one wild sample costs
//! at most 1) at the price of losing metricity.

use crate::Distance;

/// EDR distance with a configurable match tolerance.
#[derive(Debug, Clone, Copy)]
pub struct Edr {
    /// Match tolerance ε; 0.25 of a standard deviation is the customary
    /// default for z-normalized series.
    pub epsilon: f64,
}

impl Default for Edr {
    fn default() -> Self {
        Edr { epsilon: 0.25 }
    }
}

/// Computes the (raw, unnormalized) EDR edit count.
#[must_use]
pub fn edr_distance(x: &[f64], y: &[f64], epsilon: f64) -> f64 {
    let (nx, ny) = (x.len(), y.len());
    if nx == 0 {
        return ny as f64;
    }
    if ny == 0 {
        return nx as f64;
    }
    let mut prev: Vec<f64> = (0..=ny).map(|j| j as f64).collect();
    let mut curr = vec![0.0; ny + 1];
    for i in 1..=nx {
        curr[0] = i as f64;
        for j in 1..=ny {
            let subcost = if (x[i - 1] - y[j - 1]).abs() <= epsilon {
                0.0
            } else {
                1.0
            };
            curr[j] = (prev[j - 1] + subcost)
                .min(prev[j] + 1.0)
                .min(curr[j - 1] + 1.0);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[ny]
}

/// EDR normalized by the longer length, in `[0, 1]`.
#[must_use]
pub fn edr_normalized(x: &[f64], y: &[f64], epsilon: f64) -> f64 {
    let denom = x.len().max(y.len());
    if denom == 0 {
        return 0.0;
    }
    edr_distance(x, y, epsilon) / denom as f64
}

impl Distance for Edr {
    fn name(&self) -> String {
        "EDR".into()
    }

    fn dist(&self, x: &[f64], y: &[f64]) -> f64 {
        edr_normalized(x, y, self.epsilon)
    }

    /// O(m²) DP — quadratic cost hint for budget-aware loops.
    fn cost_hint(&self, m: usize) -> u64 {
        let m = m.max(1) as u64;
        m.saturating_mul(m)
    }
}

#[cfg(test)]
mod tests {
    use super::{edr_distance, edr_normalized, Edr};
    use crate::Distance;

    #[test]
    fn identical_within_tolerance_is_zero() {
        let x = [1.0, 2.0, 3.0];
        let y = [1.1, 2.1, 2.9];
        assert_eq!(edr_distance(&x, &y, 0.2), 0.0);
    }

    #[test]
    fn each_mismatch_costs_one() {
        let x = [0.0, 0.0, 0.0];
        let y = [0.0, 5.0, 0.0];
        assert_eq!(edr_distance(&x, &y, 0.1), 1.0);
        let y = [5.0, 5.0, 5.0];
        assert_eq!(edr_distance(&x, &y, 0.1), 3.0);
    }

    #[test]
    fn reduces_to_edit_distance_on_symbols() {
        // Map symbols to well-separated reals: EDR = Levenshtein.
        // "kitten" -> "sitting" has edit distance 3.
        let enc = |s: &str| -> Vec<f64> { s.bytes().map(|b| b as f64 * 10.0).collect() };
        let d = edr_distance(&enc("kitten"), &enc("sitting"), 0.5);
        assert_eq!(d, 3.0);
    }

    #[test]
    fn outlier_costs_at_most_one() {
        // EDR's robustness claim: one wild sample adds at most 1.
        let x = [0.0; 10];
        let mut y = [0.0; 10];
        y[4] = 1e9;
        assert_eq!(edr_distance(&x, &y, 0.1), 1.0);
    }

    #[test]
    fn symmetry() {
        let x = [1.0, 4.0, 2.0, 8.0];
        let y = [0.0, 4.5, 2.0, 7.0];
        assert_eq!(edr_distance(&x, &y, 0.6), edr_distance(&y, &x, 0.6));
    }

    #[test]
    fn empty_sequences() {
        assert_eq!(edr_distance(&[], &[], 0.1), 0.0);
        assert_eq!(edr_distance(&[], &[1.0, 2.0], 0.1), 2.0);
        assert_eq!(edr_normalized(&[], &[], 0.1), 0.0);
    }

    #[test]
    fn normalized_in_unit_interval() {
        let x = [0.0, 1.0, 2.0];
        let y = [9.0, 9.0, 9.0, 9.0];
        let d = edr_normalized(&x, &y, 0.1);
        assert!((0.0..=1.0).contains(&d));
        assert_eq!(d, 1.0);
    }

    #[test]
    fn distance_trait() {
        let e = Edr::default();
        assert_eq!(e.name(), "EDR");
        assert_eq!(e.dist(&[1.0, 1.0], &[1.0, 1.0]), 0.0);
    }
}
