//! Longest Common SubSequence similarity (LCSS; Vlachos, Kollios &
//! Gunopulos, ICDE 2002 — the paper's reference [78], "discovering similar
//! multidimensional trajectories").
//!
//! LCSS counts how many samples can be matched within a value tolerance ε
//! and an optional temporal window δ, *ignoring* everything that does not
//! match — which provides the "occlusion invariance" of the paper's
//! Section 2.2 taxonomy (missing subsequences are simply skipped):
//!
//! ```text
//! lcss[i][j] = lcss[i-1][j-1] + 1        if |xᵢ − yⱼ| ≤ ε and |i − j| ≤ δ
//!              max(lcss[i-1][j], lcss[i][j-1])   otherwise
//! dist(x, y) = 1 − lcss / min(|x|, |y|)
//! ```

use crate::Distance;

/// LCSS-derived distance with tolerance ε and optional window δ.
#[derive(Debug, Clone, Copy)]
pub struct Lcss {
    /// Value-match tolerance ε.
    pub epsilon: f64,
    /// Temporal matching window δ (`None` = unconstrained).
    pub delta: Option<usize>,
}

impl Default for Lcss {
    fn default() -> Self {
        Lcss {
            epsilon: 0.25,
            delta: None,
        }
    }
}

/// Length of the longest common subsequence under `(epsilon, delta)`.
#[must_use]
pub fn lcss_length(x: &[f64], y: &[f64], epsilon: f64, delta: Option<usize>) -> usize {
    let (nx, ny) = (x.len(), y.len());
    if nx == 0 || ny == 0 {
        return 0;
    }
    let mut prev = vec![0usize; ny + 1];
    let mut curr = vec![0usize; ny + 1];
    for i in 1..=nx {
        curr[0] = 0;
        for j in 1..=ny {
            let in_window = delta.is_none_or(|d| i.abs_diff(j) <= d);
            if in_window && (x[i - 1] - y[j - 1]).abs() <= epsilon {
                curr[j] = prev[j - 1] + 1;
            } else {
                curr[j] = prev[j].max(curr[j - 1]);
            }
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[ny]
}

/// LCSS distance `1 − lcss/min(|x|,|y|)`, in `[0, 1]`.
///
/// Two empty sequences are defined as distance 0.
#[must_use]
pub fn lcss_distance(x: &[f64], y: &[f64], epsilon: f64, delta: Option<usize>) -> f64 {
    let denom = x.len().min(y.len());
    if denom == 0 {
        return if x.len() == y.len() { 0.0 } else { 1.0 };
    }
    1.0 - lcss_length(x, y, epsilon, delta) as f64 / denom as f64
}

impl Distance for Lcss {
    fn name(&self) -> String {
        "LCSS".into()
    }

    fn dist(&self, x: &[f64], y: &[f64]) -> f64 {
        lcss_distance(x, y, self.epsilon, self.delta)
    }

    /// O(m²) DP — quadratic cost hint for budget-aware loops.
    fn cost_hint(&self, m: usize) -> u64 {
        let m = m.max(1) as u64;
        m.saturating_mul(m)
    }
}

#[cfg(test)]
mod tests {
    use super::{lcss_distance, lcss_length, Lcss};
    use crate::Distance;

    #[test]
    fn identical_sequences_full_match() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(lcss_length(&x, &x, 0.01, None), 4);
        assert_eq!(lcss_distance(&x, &x, 0.01, None), 0.0);
    }

    #[test]
    fn classic_string_lcs() {
        // "ABCBDAB" vs "BDCABA" has LCS length 4 (e.g. BCAB).
        let enc = |s: &str| -> Vec<f64> { s.bytes().map(|b| b as f64 * 10.0).collect() };
        assert_eq!(lcss_length(&enc("ABCBDAB"), &enc("BDCABA"), 0.5, None), 4);
    }

    #[test]
    fn occlusion_is_skipped_not_punished() {
        // y is x with a chunk zeroed (occluded); the remaining samples
        // still match, so the distance stays moderate.
        let x: Vec<f64> = (0..20).map(|i| (i as f64 * 0.4).sin() + 2.0).collect();
        let mut y = x.clone();
        for v in &mut y[5..10] {
            *v = 0.0;
        }
        let d = lcss_distance(&x, &y, 0.05, None);
        assert!((d - 5.0 / 20.0).abs() < 1e-9, "{d}");
    }

    #[test]
    fn temporal_window_restricts_matching() {
        // Same values but shifted by 3; an unconstrained LCSS matches most
        // of them, a δ = 1 window cannot.
        let x: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..16).map(|i| i as f64 + 3.0).collect();
        let free = lcss_length(&x, &y, 0.01, None);
        let tight = lcss_length(&x, &y, 0.01, Some(1));
        assert_eq!(free, 13);
        assert!(tight < free, "tight {tight} vs free {free}");
    }

    #[test]
    fn distance_bounds() {
        let x = [0.0, 0.0];
        let y = [100.0, 100.0];
        assert_eq!(lcss_distance(&x, &y, 0.1, None), 1.0);
        assert_eq!(lcss_distance(&[], &[], 0.1, None), 0.0);
        assert_eq!(lcss_distance(&[], &[1.0], 0.1, None), 1.0);
    }

    #[test]
    fn symmetry() {
        let x = [1.0, 5.0, 2.0, 4.0, 3.0];
        let y = [2.0, 5.0, 1.0, 3.0, 4.0];
        assert_eq!(
            lcss_length(&x, &y, 0.6, Some(2)),
            lcss_length(&y, &x, 0.6, Some(2))
        );
    }

    #[test]
    fn distance_trait() {
        let l = Lcss::default();
        assert_eq!(l.name(), "LCSS");
        assert_eq!(l.dist(&[1.0], &[1.0]), 0.0);
    }
}
