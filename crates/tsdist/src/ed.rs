//! Euclidean distance (Equation 3 of the paper).

use crate::Distance;

/// The plain Euclidean distance between equal-length sequences.
#[derive(Debug, Clone, Copy, Default)]
pub struct EuclideanDistance;

/// Computes `√Σ (xᵢ − yᵢ)²`.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
#[must_use]
pub fn euclidean(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "ED requires equal-length sequences");
    x.iter()
        .zip(y.iter())
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

/// Squared Euclidean distance — avoids the square root on hot paths that
/// only compare distances (e.g. k-means assignment).
#[inline]
#[must_use]
pub fn euclidean_sq(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "ED requires equal-length sequences");
    x.iter().zip(y.iter()).map(|(a, b)| (a - b) * (a - b)).sum()
}

impl Distance for EuclideanDistance {
    fn name(&self) -> String {
        "ED".into()
    }

    fn dist(&self, x: &[f64], y: &[f64]) -> f64 {
        euclidean(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::{euclidean, euclidean_sq, EuclideanDistance};
    use crate::Distance;

    #[test]
    fn known_values() {
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(euclidean(&[], &[]), 0.0);
        assert!((euclidean_sq(&[0.0, 0.0], &[3.0, 4.0]) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn identity_and_symmetry() {
        let x = [1.0, -2.0, 3.5];
        let y = [0.5, 4.0, -1.0];
        assert_eq!(euclidean(&x, &x), 0.0);
        assert!((euclidean(&x, &y) - euclidean(&y, &x)).abs() < 1e-12);
    }

    #[test]
    fn triangle_inequality() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 0.0, -2.0];
        let z = [0.0, 1.0, 1.0];
        assert!(euclidean(&x, &z) <= euclidean(&x, &y) + euclidean(&y, &z) + 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn rejects_mismatch() {
        let _ = euclidean(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn trait_impl() {
        let d = EuclideanDistance;
        assert_eq!(d.name(), "ED");
        assert!((d.dist(&[0.0], &[2.0]) - 2.0).abs() < 1e-12);
    }
}
