//! Dynamic Time Warping and its Sakoe–Chiba constrained variant
//! (Equation 4 and Figure 2 of the paper).
//!
//! The DP recurrence is
//! `γ(i, j) = d(i, j) + min{γ(i−1, j−1), γ(i−1, j), γ(i, j−1)}`
//! over squared point distances, with the final distance being `√γ(m, m)`.
//! The constrained variant restricts `|i − j|` to a Sakoe–Chiba band of a
//! given half-width (the *warping window*).
//!
//! [`dtw_distance`] uses two rolling rows — O(m·w) time, O(m) space — and
//! is the hot path for Tables 2–4. [`dtw_path`] keeps the full matrix to
//! recover the warping path, which DBA averaging and the Figure 2
//! reproduction need.

use crate::Distance;
use tserror::{validate_nonempty_pair, validate_pair, TsResult};

/// DTW distance measure with an optional Sakoe–Chiba warping window.
#[derive(Debug, Clone, Copy)]
pub struct Dtw {
    /// Sakoe–Chiba half-width in samples; `None` means unconstrained.
    pub window: Option<usize>,
}

impl Dtw {
    /// Unconstrained DTW.
    #[must_use]
    pub fn unconstrained() -> Self {
        Dtw { window: None }
    }

    /// cDTW with an absolute window of `w` samples.
    #[must_use]
    pub fn with_window(w: usize) -> Self {
        Dtw { window: Some(w) }
    }

    /// cDTW with a window that is `fraction` of the series length `m`,
    /// rounded to the nearest sample — the paper's `cDTW5` (5%) and
    /// `cDTW10` (10%) variants.
    #[must_use]
    pub fn with_window_fraction(fraction: f64, m: usize) -> Self {
        let w = (fraction * m as f64).round() as usize;
        Dtw { window: Some(w) }
    }
}

impl Distance for Dtw {
    fn name(&self) -> String {
        match self.window {
            None => "DTW".into(),
            Some(w) => format!("cDTW(w={w})"),
        }
    }

    fn dist(&self, x: &[f64], y: &[f64]) -> f64 {
        dtw_distance(x, y, self.window)
    }

    /// DTW's DP visits `m·(2w+1)` cells (all `m²` when unconstrained), so
    /// the cost hint is quadratic in the band — this is what makes a
    /// 50 ms deadline on a large DTW matrix trip *during* the first pairs
    /// rather than after the row completes.
    fn cost_hint(&self, m: usize) -> u64 {
        let m = m.max(1) as u64;
        let band = match self.window {
            Some(w) => (2 * w as u64 + 1).min(m),
            None => m,
        };
        m.saturating_mul(band)
    }
}

/// Computes the DTW distance with an optional Sakoe–Chiba window,
/// in O(m·w) time and O(m) space.
///
/// A window of 0 degenerates to Euclidean alignment (the diagonal path).
///
/// # Example
///
/// ```
/// use tsdist::dtw::dtw_distance;
///
/// let x = [0.0, 0.0, 1.0, 2.0, 1.0, 0.0];
/// let y = [0.0, 1.0, 2.0, 1.0, 0.0, 0.0]; // same hump, one step early
/// // DTW warps the hump onto itself; ED cannot.
/// assert!(dtw_distance(&x, &y, None) < 1e-9);
/// assert!(dtw_distance(&x, &y, Some(0)) > 1.0);
/// ```
///
/// # Panics
///
/// Panics if the lengths differ or samples are non-finite. See
/// [`try_dtw_distance`] for the fallible variant.
#[must_use]
pub fn dtw_distance(x: &[f64], y: &[f64], window: Option<usize>) -> f64 {
    assert_eq!(x.len(), y.len(), "DTW requires equal-length sequences");
    try_dtw_distance(x, y, window).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible DTW distance: validates once up front, never panics. Empty
/// inputs have distance 0 (matching the panicking variant).
///
/// # Errors
///
/// [`tserror::TsError::LengthMismatch`] or
/// [`tserror::TsError::NonFinite`].
pub fn try_dtw_distance(x: &[f64], y: &[f64], window: Option<usize>) -> TsResult<f64> {
    validate_pair(x, y)?;
    Ok(dtw_distance_unchecked(x, y, window))
}

/// The rolling-row DP itself, with preconditions already established.
pub(crate) fn dtw_distance_unchecked(x: &[f64], y: &[f64], window: Option<usize>) -> f64 {
    let m = x.len();
    if m == 0 {
        return 0.0;
    }
    let w = window.unwrap_or(m).min(m);

    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;

    for i in 1..=m {
        curr.fill(f64::INFINITY);
        let lo = i.saturating_sub(w).max(1);
        let hi = (i + w).min(m);
        // γ(i, 0) is only reachable when the band touches column 0.
        if i == 1 {
            // handled through prev[0]
        }
        for j in lo..=hi {
            let d = (x[i - 1] - y[j - 1]) * (x[i - 1] - y[j - 1]);
            let best = prev[j - 1].min(prev[j]).min(curr[j - 1]);
            curr[j] = d + best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m].sqrt()
}

/// A warping path: pairs of 0-based indices `(i, j)` from `(0, 0)` to
/// `(m−1, m−1)`, monotone in both coordinates.
pub type WarpingPath = Vec<(usize, usize)>;

/// Computes the DTW distance *and* the optimal warping path, keeping the
/// full O(m²) matrix.
///
/// # Panics
///
/// Panics if the lengths differ, either input is empty, or samples are
/// non-finite. See [`try_dtw_path`] for the fallible variant.
#[must_use]
pub fn dtw_path(x: &[f64], y: &[f64], window: Option<usize>) -> (f64, WarpingPath) {
    assert_eq!(x.len(), y.len(), "DTW requires equal-length sequences");
    assert!(!x.is_empty(), "DTW path requires non-empty sequences");
    try_dtw_path(x, y, window).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible DTW distance + warping path: validates once up front, never
/// panics.
///
/// # Errors
///
/// [`tserror::TsError::EmptyInput`],
/// [`tserror::TsError::LengthMismatch`], or
/// [`tserror::TsError::NonFinite`].
pub fn try_dtw_path(x: &[f64], y: &[f64], window: Option<usize>) -> TsResult<(f64, WarpingPath)> {
    validate_nonempty_pair(x, y)?;
    let m = x.len();
    let w = window.unwrap_or(m).min(m);

    let idx = |i: usize, j: usize| i * (m + 1) + j;
    let mut cost = vec![f64::INFINITY; (m + 1) * (m + 1)];
    cost[idx(0, 0)] = 0.0;
    for i in 1..=m {
        let lo = i.saturating_sub(w).max(1);
        let hi = (i + w).min(m);
        for j in lo..=hi {
            let d = (x[i - 1] - y[j - 1]) * (x[i - 1] - y[j - 1]);
            let best = cost[idx(i - 1, j - 1)]
                .min(cost[idx(i - 1, j)])
                .min(cost[idx(i, j - 1)]);
            cost[idx(i, j)] = d + best;
        }
    }

    // Backtrack from (m, m).
    let mut path = Vec::with_capacity(2 * m);
    let (mut i, mut j) = (m, m);
    while i > 0 && j > 0 {
        path.push((i - 1, j - 1));
        let diag = cost[idx(i - 1, j - 1)];
        let up = cost[idx(i - 1, j)];
        let left = cost[idx(i, j - 1)];
        if diag <= up && diag <= left {
            i -= 1;
            j -= 1;
        } else if up <= left {
            i -= 1;
        } else {
            j -= 1;
        }
    }
    path.reverse();
    Ok((cost[idx(m, m)].sqrt(), path))
}

#[cfg(test)]
mod tests {
    use super::{dtw_distance, dtw_path, Dtw};
    use crate::ed::euclidean;
    use crate::Distance;

    #[test]
    fn identical_sequences_have_zero_distance() {
        let x = [1.0, 2.0, 3.0, 2.0, 1.0];
        assert_eq!(dtw_distance(&x, &x, None), 0.0);
        assert_eq!(dtw_distance(&x, &x, Some(1)), 0.0);
    }

    #[test]
    fn empty_sequences() {
        assert_eq!(dtw_distance(&[], &[], None), 0.0);
    }

    #[test]
    fn window_zero_equals_euclidean() {
        let x = [1.0, 5.0, -2.0, 4.0];
        let y = [0.0, 2.0, 3.0, -1.0];
        let d0 = dtw_distance(&x, &y, Some(0));
        assert!((d0 - euclidean(&x, &y)).abs() < 1e-12);
    }

    #[test]
    fn dtw_never_exceeds_euclidean() {
        let mut state = 9u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for _ in 0..20 {
            let x: Vec<f64> = (0..30).map(|_| next()).collect();
            let y: Vec<f64> = (0..30).map(|_| next()).collect();
            assert!(dtw_distance(&x, &y, None) <= euclidean(&x, &y) + 1e-12);
        }
    }

    #[test]
    fn wider_windows_never_increase_distance() {
        let x: Vec<f64> = (0..40).map(|i| (i as f64 * 0.3).sin()).collect();
        let y: Vec<f64> = (0..40).map(|i| ((i as f64 + 4.0) * 0.3).sin()).collect();
        let mut last = f64::INFINITY;
        for w in [0usize, 1, 2, 4, 8, 16, 40] {
            let d = dtw_distance(&x, &y, Some(w));
            assert!(d <= last + 1e-12, "w={w}: {d} > {last}");
            last = d;
        }
        // Unconstrained equals the full window.
        assert!((dtw_distance(&x, &y, None) - last).abs() < 1e-12);
    }

    #[test]
    fn absorbs_phase_shift_that_defeats_ed() {
        let m = 64;
        let x: Vec<f64> = (0..m)
            .map(|i| (-((i as f64 - 20.0) / 4.0).powi(2)).exp())
            .collect();
        let y: Vec<f64> = (0..m)
            .map(|i| (-((i as f64 - 26.0) / 4.0).powi(2)).exp())
            .collect();
        let dtw = dtw_distance(&x, &y, None);
        let ed = euclidean(&x, &y);
        assert!(dtw < 0.2 * ed, "dtw {dtw} vs ed {ed}");
    }

    #[test]
    fn known_small_case() {
        // x = [0, 1], y = [1, 1]: optimal alignment matches x[1] to both
        // y's; cost = (0-1)^2 = 1, distance 1.
        let d = dtw_distance(&[0.0, 1.0], &[1.0, 1.0], None);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn path_endpoints_and_monotonicity() {
        let x: Vec<f64> = (0..20).map(|i| (i as f64 * 0.4).cos()).collect();
        let y: Vec<f64> = (0..20).map(|i| ((i as f64 - 2.0) * 0.4).cos()).collect();
        let (d, path) = dtw_path(&x, &y, None);
        assert_eq!(*path.first().unwrap(), (0, 0));
        assert_eq!(*path.last().unwrap(), (19, 19));
        for w in path.windows(2) {
            let (i0, j0) = w[0];
            let (i1, j1) = w[1];
            assert!(i1 >= i0 && j1 >= j0);
            assert!(i1 - i0 <= 1 && j1 - j0 <= 1);
            assert!(i1 + j1 > i0 + j0);
        }
        // Path cost equals the rolling-row distance.
        assert!((d - dtw_distance(&x, &y, None)).abs() < 1e-9);
    }

    #[test]
    fn path_respects_band() {
        let x: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..30).map(|i| 29.0 - i as f64).collect();
        let w = 3;
        let (_, path) = dtw_path(&x, &y, Some(w));
        for (i, j) in path {
            assert!(i.abs_diff(j) <= w, "({i},{j}) outside band {w}");
        }
    }

    #[test]
    fn path_cost_matches_summed_point_costs() {
        let x = [1.0, 3.0, 2.0, 5.0, 4.0];
        let y = [2.0, 1.0, 4.0, 3.0, 5.0];
        let (d, path) = dtw_path(&x, &y, None);
        let sum: f64 = path
            .iter()
            .map(|&(i, j)| (x[i] - y[j]) * (x[i] - y[j]))
            .sum();
        assert!((d * d - sum).abs() < 1e-9);
    }

    #[test]
    fn distance_trait_names() {
        assert_eq!(Dtw::unconstrained().name(), "DTW");
        assert_eq!(Dtw::with_window(5).name(), "cDTW(w=5)");
        let d = Dtw::with_window_fraction(0.05, 100);
        assert_eq!(d.window, Some(5));
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn rejects_mismatch() {
        let _ = dtw_distance(&[1.0], &[1.0, 2.0], None);
    }

    #[test]
    fn try_variants_match_and_report_typed_errors() {
        use super::{try_dtw_distance, try_dtw_path};
        use tserror::TsError;
        let x: Vec<f64> = (0..24).map(|i| (i as f64 * 0.4).sin()).collect();
        let y: Vec<f64> = (0..24).map(|i| ((i as f64 + 3.0) * 0.4).sin()).collect();
        let d = dtw_distance(&x, &y, Some(4));
        let td = try_dtw_distance(&x, &y, Some(4)).expect("clean data");
        assert!((d - td).abs() < 1e-15);
        let (pd, path) = dtw_path(&x, &y, None);
        let (tpd, tpath) = try_dtw_path(&x, &y, None).expect("clean data");
        assert_eq!(path, tpath);
        assert!((pd - tpd).abs() < 1e-15);
        assert_eq!(try_dtw_distance(&[], &[], None), Ok(0.0));
        assert!(matches!(
            try_dtw_distance(&[1.0], &[1.0, 2.0], None),
            Err(TsError::LengthMismatch { .. })
        ));
        assert!(matches!(
            try_dtw_distance(&[f64::NAN], &[1.0], None),
            Err(TsError::NonFinite {
                series: 0,
                index: 0
            })
        ));
        assert!(matches!(
            try_dtw_path(&[], &[], None),
            Err(TsError::EmptyInput)
        ));
        assert!(matches!(
            try_dtw_path(&[1.0], &[f64::INFINITY], None),
            Err(TsError::NonFinite {
                series: 1,
                index: 0
            })
        ));
    }
}
