//! Complexity-Invariant Distance (CID; Batista et al., cited as [7] in the
//! paper).
//!
//! Section 2.2 lists *complexity invariance* among the distortions a
//! distance may need to tolerate: sequences with similar shape but
//! different complexities (e.g. an indoor vs outdoor audio recording,
//! where one is noisier). CID corrects ED by a complexity factor:
//!
//! ```text
//! CE(x)     = √ Σᵢ (x[i+1] − x[i])²          (complexity estimate)
//! CID(x, y) = ED(x, y) · max(CE(x), CE(y)) / min(CE(x), CE(y))
//! ```
//!
//! Included as an extension so the invariance taxonomy of the paper's
//! preliminaries is fully exercised by the test suite.

use crate::ed::euclidean;
use crate::Distance;

/// The complexity estimate `CE(x)`: length of the first-difference curve.
#[must_use]
pub fn complexity_estimate(x: &[f64]) -> f64 {
    x.windows(2)
        .map(|w| (w[1] - w[0]) * (w[1] - w[0]))
        .sum::<f64>()
        .sqrt()
}

/// Computes the complexity-invariant distance.
///
/// When both complexity estimates are zero (two constant sequences) the
/// correction factor is 1 and CID degenerates to ED.
///
/// # Panics
///
/// Panics if lengths differ.
#[must_use]
pub fn cid(x: &[f64], y: &[f64]) -> f64 {
    let ce_x = complexity_estimate(x);
    let ce_y = complexity_estimate(y);
    let (hi, lo) = if ce_x >= ce_y {
        (ce_x, ce_y)
    } else {
        (ce_y, ce_x)
    };
    let factor = if lo > 0.0 {
        hi / lo
    } else if hi > 0.0 {
        // One flat, one complex: maximally penalized. Use the complexity
        // itself as the factor so the penalty grows with the mismatch.
        1.0 + hi
    } else {
        1.0
    };
    euclidean(x, y) * factor
}

/// CID as a [`Distance`] implementation.
#[derive(Debug, Clone, Copy, Default)]
pub struct ComplexityInvariantDistance;

impl Distance for ComplexityInvariantDistance {
    fn name(&self) -> String {
        "CID".into()
    }

    fn dist(&self, x: &[f64], y: &[f64]) -> f64 {
        cid(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::{cid, complexity_estimate, ComplexityInvariantDistance};
    use crate::ed::euclidean;
    use crate::Distance;

    #[test]
    fn complexity_estimate_basics() {
        assert_eq!(complexity_estimate(&[]), 0.0);
        assert_eq!(complexity_estimate(&[5.0]), 0.0);
        assert_eq!(complexity_estimate(&[1.0, 1.0, 1.0]), 0.0);
        // Line with slope 1 over 4 steps: CE = sqrt(4).
        assert!((complexity_estimate(&[0.0, 1.0, 2.0, 3.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn noisier_series_has_higher_complexity() {
        let smooth: Vec<f64> = (0..50).map(|i| (i as f64 * 0.1).sin()).collect();
        let noisy: Vec<f64> = smooth
            .iter()
            .enumerate()
            .map(|(i, v)| v + if i % 2 == 0 { 0.3 } else { -0.3 })
            .collect();
        assert!(complexity_estimate(&noisy) > complexity_estimate(&smooth));
    }

    #[test]
    fn equal_complexity_reduces_to_ed() {
        let x = [1.0, 3.0, 2.0, 4.0];
        let y = [2.0, 4.0, 3.0, 5.0]; // same differences, hence same CE
        assert!((cid(&x, &y) - euclidean(&x, &y)).abs() < 1e-12);
    }

    #[test]
    fn complexity_mismatch_inflates_distance() {
        let smooth: Vec<f64> = (0..40).map(|i| (i as f64 * 0.15).sin()).collect();
        let complex: Vec<f64> = (0..40).map(|i| (i as f64 * 1.9).sin()).collect();
        assert!(cid(&smooth, &complex) > euclidean(&smooth, &complex));
    }

    #[test]
    fn identity_and_symmetry() {
        let x = [0.5, -1.0, 2.0, 0.0];
        let y = [1.0, 0.0, -2.0, 1.5];
        assert_eq!(cid(&x, &x), 0.0);
        assert!((cid(&x, &y) - cid(&y, &x)).abs() < 1e-12);
    }

    #[test]
    fn two_constants_fall_back_to_ed() {
        let x = [1.0, 1.0, 1.0];
        let y = [4.0, 4.0, 4.0];
        assert!((cid(&x, &y) - euclidean(&x, &y)).abs() < 1e-12);
    }

    #[test]
    fn flat_vs_complex_is_heavily_penalized() {
        let flat = [0.0; 16];
        let busy: Vec<f64> = (0..16)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(cid(&flat, &busy) > euclidean(&flat, &busy));
    }

    #[test]
    fn distance_trait() {
        let d = ComplexityInvariantDistance;
        assert_eq!(d.name(), "CID");
        assert!(d.dist(&[1.0, 2.0], &[1.0, 2.0]).abs() < 1e-12);
    }
}
