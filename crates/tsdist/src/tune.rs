//! Warping-window tuning for cDTW (the paper's `cDTW-opt`).
//!
//! The paper computes the optimal window "by performing a leave-one-out
//! classification step over the training set of each dataset": for each
//! candidate window, classify every training series against the remaining
//! ones and keep the window with the highest accuracy. Ties break toward
//! the *smaller* window (cheaper and, per the paper, small windows — ~4.5%
//! on average — win).

use tsdata::dataset::Dataset;

use crate::dtw::dtw_distance;

/// Leave-one-out 1-NN accuracy of cDTW with window `w` on `train`.
#[must_use]
pub fn loo_accuracy(train: &Dataset, window: usize) -> f64 {
    let n = train.n_series();
    if n < 2 {
        return 0.0;
    }
    let mut correct = 0usize;
    for i in 0..n {
        let mut best = f64::INFINITY;
        let mut label = None;
        for j in 0..n {
            if i == j {
                continue;
            }
            let d = dtw_distance(&train.series[i], &train.series[j], Some(window));
            if d < best {
                best = d;
                label = Some(train.labels[j]);
            }
        }
        if label == Some(train.labels[i]) {
            correct += 1;
        }
    }
    correct as f64 / n as f64
}

/// Selects the best warping window from `candidates` by leave-one-out
/// accuracy on the training set. Returns `(window, accuracy)`.
///
/// # Panics
///
/// Panics if `candidates` is empty.
#[must_use]
pub fn tune_window(train: &Dataset, candidates: &[usize]) -> (usize, f64) {
    assert!(!candidates.is_empty(), "need at least one candidate window");
    let mut best_w = candidates[0];
    let mut best_acc = -1.0;
    for &w in candidates {
        let acc = loo_accuracy(train, w);
        // Strict improvement required, so ties keep the smaller window
        // (candidates are conventionally passed in ascending order).
        if acc > best_acc {
            best_acc = acc;
            best_w = w;
        }
    }
    (best_w, best_acc)
}

/// Default candidate windows: 0%..=20% of the series length in 1% steps,
/// deduplicated. Matches the granularity the paper's `cDTW-opt` sweeps.
#[must_use]
pub fn default_candidates(series_len: usize) -> Vec<usize> {
    let mut out: Vec<usize> = (0..=20)
        .map(|pct| (pct as f64 / 100.0 * series_len as f64).round() as usize)
        .collect();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::{default_candidates, loo_accuracy, tune_window};
    use tsdata::dataset::Dataset;

    /// Two classes of gaussian bumps whose positions jitter by ±3 samples;
    /// a window of ~3 is needed to classify them reliably.
    fn shifted_bumps() -> Dataset {
        let m = 40;
        let bump = |center: f64| -> Vec<f64> {
            (0..m)
                .map(|i| (-((i as f64 - center) / 2.0).powi(2)).exp())
                .collect()
        };
        let mut series = Vec::new();
        let mut labels = Vec::new();
        for j in 0..5 {
            // Class 0: bump near 10; class 1: bump near 28.
            series.push(bump(10.0 + j as f64 - 2.0));
            labels.push(0);
            series.push(bump(28.0 + j as f64 - 2.0));
            labels.push(1);
        }
        Dataset::new("bumps", series, labels)
    }

    #[test]
    fn loo_accuracy_perfect_on_separable_data() {
        let d = shifted_bumps();
        assert_eq!(loo_accuracy(&d, 5), 1.0);
    }

    #[test]
    fn loo_accuracy_tiny_dataset() {
        let d = Dataset::new("one", vec![vec![1.0, 2.0]], vec![0]);
        assert_eq!(loo_accuracy(&d, 1), 0.0);
    }

    #[test]
    fn tuning_picks_smallest_tied_window() {
        let d = shifted_bumps();
        // All windows ≥ some small value achieve 1.0; ties must break low.
        let (w, acc) = tune_window(&d, &[0, 1, 2, 4, 8]);
        assert_eq!(acc, 1.0);
        // The data is separable even at w=0 (bumps are far apart), so the
        // tie-break must select 0.
        assert_eq!(w, 0);
    }

    #[test]
    fn default_candidates_are_ascending_and_deduped() {
        let c = default_candidates(128);
        assert_eq!(c[0], 0);
        assert!(c.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*c.last().unwrap(), 26); // 20% of 128 ≈ 26
                                            // Short series collapse many percentages onto the same window.
        let c = default_candidates(10);
        assert!(c.len() <= 21);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn rejects_empty_candidates() {
        let d = shifted_bumps();
        let _ = tune_window(&d, &[]);
    }
}
