//! The LB_Keogh lower bound for constrained DTW (Keogh & Ratanamahatana,
//! 2005), used by the `DTW_LB` / `cDTW_LB` rows of Table 2 to prune 1-NN
//! candidates.
//!
//! For a candidate `y` with warping window `w`, build the envelope
//! `L[i] = min(y[i−w..=i+w])`, `U[i] = max(y[i−w..=i+w])`. Then for any
//! query `x`,
//!
//! ```text
//! LB_Keogh(x, y) = √ Σᵢ  (x[i] − U[i])²  if x[i] > U[i]
//!                        (L[i] − x[i])²  if x[i] < L[i]
//!                        0               otherwise
//! ```
//!
//! satisfies `LB_Keogh(x, y) ≤ cDTW_w(x, y)`, so any candidate whose bound
//! already exceeds the best distance found can be skipped without running
//! the DP.

use tserror::{ensure_finite, TsError, TsResult};

/// Upper/lower envelope of a sequence under a warping window.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Pointwise lower envelope.
    pub lower: Vec<f64>,
    /// Pointwise upper envelope.
    pub upper: Vec<f64>,
}

impl Envelope {
    /// Fallible envelope construction: rejects non-finite samples (whose
    /// ordering under the deque algorithm is meaningless) with a typed
    /// error.
    ///
    /// # Errors
    ///
    /// [`TsError::NonFinite`] at the first NaN/infinite sample.
    pub fn try_new(y: &[f64], w: usize) -> TsResult<Self> {
        ensure_finite(y, 0)?;
        Ok(Self::new(y, w))
    }

    /// Builds the envelope of `y` for window half-width `w`.
    ///
    /// Uses the monotonic-deque algorithm (Lemire 2009): O(m) regardless of
    /// window size.
    #[must_use]
    pub fn new(y: &[f64], w: usize) -> Self {
        let m = y.len();
        let mut lower = vec![0.0; m];
        let mut upper = vec![0.0; m];
        if m == 0 {
            return Envelope { lower, upper };
        }
        // Deques of indices; front is the current extremum.
        let mut max_dq: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        let mut min_dq: std::collections::VecDeque<usize> = std::collections::VecDeque::new();

        for i in 0..m + w {
            if i < m {
                while let Some(&b) = max_dq.back() {
                    if y[b] <= y[i] {
                        max_dq.pop_back();
                    } else {
                        break;
                    }
                }
                max_dq.push_back(i);
                while let Some(&b) = min_dq.back() {
                    if y[b] >= y[i] {
                        min_dq.pop_back();
                    } else {
                        break;
                    }
                }
                min_dq.push_back(i);
            }
            // Window for output position `o = i - w` covers [o-w, o+w];
            // it is complete once i reaches o + w.
            if i >= w {
                let o = i - w;
                while let Some(&f) = max_dq.front() {
                    if f + w < o {
                        max_dq.pop_front();
                    } else {
                        break;
                    }
                }
                while let Some(&f) = min_dq.front() {
                    if f + w < o {
                        min_dq.pop_front();
                    } else {
                        break;
                    }
                }
                upper[o] = y[*max_dq.front().expect("non-empty window")];
                lower[o] = y[*min_dq.front().expect("non-empty window")];
            }
        }
        Envelope { lower, upper }
    }
}

/// Computes the LB_Keogh lower bound of `x` against the envelope of a
/// candidate.
///
/// # Panics
///
/// Panics if the lengths differ or the query is non-finite. See
/// [`try_lb_keogh`] for the fallible variant.
#[must_use]
pub fn lb_keogh(x: &[f64], env: &Envelope) -> f64 {
    assert_eq!(x.len(), env.lower.len(), "LB_Keogh requires equal lengths");
    try_lb_keogh(x, env).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible LB_Keogh: validates once up front, never panics.
///
/// # Errors
///
/// [`TsError::LengthMismatch`] when the query length differs from the
/// envelope's, or [`TsError::NonFinite`] on a NaN/infinite query sample.
pub fn try_lb_keogh(x: &[f64], env: &Envelope) -> TsResult<f64> {
    if x.len() != env.lower.len() {
        return Err(TsError::LengthMismatch {
            expected: env.lower.len(),
            found: x.len(),
            series: 0,
        });
    }
    ensure_finite(x, 0)?;
    let mut acc = 0.0;
    for ((&v, &lo), &hi) in x.iter().zip(env.lower.iter()).zip(env.upper.iter()) {
        if v > hi {
            acc += (v - hi) * (v - hi);
        } else if v < lo {
            acc += (lo - v) * (lo - v);
        }
    }
    Ok(acc.sqrt())
}

#[cfg(test)]
mod tests {
    use super::{lb_keogh, try_lb_keogh, Envelope};
    use crate::dtw::dtw_distance;
    use tserror::TsError;

    #[allow(clippy::needless_range_loop)]
    fn brute_envelope(y: &[f64], w: usize) -> Envelope {
        let m = y.len();
        let mut lower = vec![0.0; m];
        let mut upper = vec![0.0; m];
        for i in 0..m {
            let lo = i.saturating_sub(w);
            let hi = (i + w).min(m - 1);
            lower[i] = y[lo..=hi].iter().copied().fold(f64::INFINITY, f64::min);
            upper[i] = y[lo..=hi].iter().copied().fold(f64::NEG_INFINITY, f64::max);
        }
        Envelope { lower, upper }
    }

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn deque_envelope_matches_brute_force() {
        let mut next = lcg(17);
        for &w in &[0usize, 1, 3, 7, 50] {
            let y: Vec<f64> = (0..37).map(|_| next()).collect();
            let fast = Envelope::new(&y, w);
            let slow = brute_envelope(&y, w);
            for i in 0..y.len() {
                assert!((fast.lower[i] - slow.lower[i]).abs() < 1e-12, "w={w} i={i}");
                assert!((fast.upper[i] - slow.upper[i]).abs() < 1e-12, "w={w} i={i}");
            }
        }
    }

    #[test]
    fn envelope_window_zero_is_identity() {
        let y = vec![3.0, -1.0, 4.0];
        let env = Envelope::new(&y, 0);
        assert_eq!(env.lower, y);
        assert_eq!(env.upper, y);
    }

    #[test]
    fn envelope_contains_sequence() {
        let mut next = lcg(5);
        let y: Vec<f64> = (0..50).map(|_| next()).collect();
        let env = Envelope::new(&y, 4);
        for ((&lo, &v), &hi) in env.lower.iter().zip(y.iter()).zip(env.upper.iter()) {
            assert!(lo <= v && v <= hi);
        }
    }

    #[test]
    fn lb_is_zero_for_sequence_inside_envelope() {
        let mut next = lcg(11);
        let y: Vec<f64> = (0..40).map(|_| next()).collect();
        let env = Envelope::new(&y, 3);
        assert_eq!(lb_keogh(&y, &env), 0.0);
    }

    #[test]
    fn lower_bounds_cdtw() {
        let mut next = lcg(23);
        for trial in 0..30 {
            let m = 48;
            let w = 1 + trial % 8;
            let x: Vec<f64> = (0..m).map(|_| next()).collect();
            let y: Vec<f64> = (0..m).map(|_| next()).collect();
            let env = Envelope::new(&y, w);
            let lb = lb_keogh(&x, &env);
            let d = dtw_distance(&x, &y, Some(w));
            assert!(lb <= d + 1e-9, "trial {trial}: LB {lb} > cDTW {d}");
        }
    }

    #[test]
    fn empty_sequences() {
        let env = Envelope::new(&[], 3);
        assert!(env.lower.is_empty());
        assert_eq!(lb_keogh(&[], &env), 0.0);
    }

    #[test]
    fn try_variants_match_and_report_typed_errors() {
        let y = vec![1.0, 2.0, 3.0, 2.0];
        let env = Envelope::try_new(&y, 1).expect("finite input");
        let x = vec![0.0, 4.0, 1.0, 2.0];
        assert_eq!(try_lb_keogh(&x, &env), Ok(lb_keogh(&x, &env)));

        assert_eq!(
            Envelope::try_new(&[1.0, f64::NAN], 1).unwrap_err(),
            TsError::NonFinite {
                series: 0,
                index: 1
            }
        );
        assert_eq!(
            try_lb_keogh(&[1.0], &env),
            Err(TsError::LengthMismatch {
                expected: 4,
                found: 1,
                series: 0
            })
        );
        assert_eq!(
            try_lb_keogh(&[1.0, f64::INFINITY, 0.0, 0.0], &env),
            Err(TsError::NonFinite {
                series: 0,
                index: 1
            })
        );
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn rejects_mismatch() {
        let env = Envelope::new(&[1.0, 2.0], 1);
        let _ = lb_keogh(&[1.0], &env);
    }
}
