//! Property-based tests for the distance measures (tscheck harness).

use tscheck::Gen;
use tsdist::cid::cid;
use tsdist::dtw::{dtw_distance, dtw_path, try_dtw_distance};
use tsdist::ed::euclidean;
use tsdist::lb_keogh::{lb_keogh, try_lb_keogh, Envelope};

fn pair(g: &mut Gen) -> (Vec<f64>, Vec<f64>) {
    g.pair_f64(2..48, -100.0..100.0)
}

/// Runs every distance kernel over a degenerate pair and asserts the
/// results are finite and non-negative — degenerate inputs must never
/// poison a kernel with NaN.
fn assert_kernels_finite(x: &[f64], y: &[f64], w: usize) {
    for d in [
        euclidean(x, y),
        dtw_distance(x, y, None),
        dtw_distance(x, y, Some(w)),
        cid(x, y),
        lb_keogh(x, &Envelope::new(y, w)),
    ] {
        assert!(
            d.is_finite() && d >= 0.0,
            "kernel emitted {d} on degenerate input"
        );
    }
    // The fallible twins agree with the panicking kernels on clean data.
    assert_eq!(
        try_dtw_distance(x, y, Some(w)),
        Ok(dtw_distance(x, y, Some(w)))
    );
    let env = Envelope::try_new(y, w).expect("finite envelope input");
    assert_eq!(try_lb_keogh(x, &env), Ok(lb_keogh(x, &env)));
}

tscheck::props! {
    #[cases(64)]
    fn ed_metric_axioms(g) {
        let (x, y) = pair(g);
        assert!(euclidean(&x, &x).abs() < 1e-12);
        assert!((euclidean(&x, &y) - euclidean(&y, &x)).abs() < 1e-9);
        assert!(euclidean(&x, &y) >= 0.0);
    }

    #[cases(64)]
    fn dtw_identity_symmetry_nonneg(g) {
        let (x, y) = pair(g);
        assert!(dtw_distance(&x, &x, None).abs() < 1e-12);
        let a = dtw_distance(&x, &y, None);
        let b = dtw_distance(&y, &x, None);
        assert!((a - b).abs() < 1e-9);
        assert!(a >= 0.0);
    }

    #[cases(64)]
    fn dtw_bounded_by_ed(g) {
        let (x, y) = pair(g);
        assert!(dtw_distance(&x, &y, None) <= euclidean(&x, &y) + 1e-9);
    }

    #[cases(64)]
    fn dtw_monotone_in_window(g) {
        let (x, y) = pair(g);
        let w1 = g.usize_in(0..8);
        let w2 = g.usize_in(8..64);
        let d1 = dtw_distance(&x, &y, Some(w1));
        let d2 = dtw_distance(&x, &y, Some(w2));
        assert!(d2 <= d1 + 1e-9, "w1={w1} {d1} vs w2={w2} {d2}");
    }

    #[cases(64)]
    fn dtw_path_cost_matches_distance(g) {
        let (x, y) = pair(g);
        let (d, path) = dtw_path(&x, &y, None);
        let sum: f64 = path.iter().map(|&(i, j)| (x[i] - y[j]).powi(2)).sum();
        assert!((d * d - sum).abs() < 1e-6 * (1.0 + sum));
        assert_eq!(*path.first().unwrap(), (0, 0));
        assert_eq!(*path.last().unwrap(), (x.len() - 1, y.len() - 1));
    }

    #[cases(64)]
    fn lb_keogh_lower_bounds_cdtw(g) {
        let (x, y) = pair(g);
        let w = g.usize_in(0..10);
        let env = Envelope::new(&y, w);
        let lb = lb_keogh(&x, &env);
        let d = dtw_distance(&x, &y, Some(w));
        assert!(lb <= d + 1e-9, "LB {lb} > cDTW {d} (w={w})");
    }

    #[cases(64)]
    fn lb_keogh_shrinks_with_window(g) {
        let (x, y) = pair(g);
        let w = g.usize_in(0..10);
        let lb_small = lb_keogh(&x, &Envelope::new(&y, w));
        let lb_large = lb_keogh(&x, &Envelope::new(&y, w + 5));
        assert!(lb_large <= lb_small + 1e-9);
    }

    #[cases(64)]
    fn cid_dominates_ed_and_is_symmetric(g) {
        let (x, y) = pair(g);
        let c = cid(&x, &y);
        assert!(c >= euclidean(&x, &y) - 1e-9);
        assert!((c - cid(&y, &x)).abs() < 1e-9);
        assert!(cid(&x, &x).abs() < 1e-12);
    }

    #[cases(64)]
    fn constant_series_keep_kernels_finite(g) {
        // Constant (zero-variance) series: z-normalization would reject
        // them, but the raw kernels must still produce finite distances.
        let m = g.usize_in(2..48);
        let a = g.f64_in(-100.0..100.0);
        let b = g.f64_in(-100.0..100.0);
        let w = g.usize_in(0..8);
        let x = vec![a; m];
        let y = vec![b; m];
        assert_kernels_finite(&x, &y, w);
        // Against an ordinary series too.
        let (z, _) = g.pair_f64(m..m + 1, -100.0..100.0);
        assert_kernels_finite(&x, &z, w);
    }

    #[cases(64)]
    fn single_element_series_keep_kernels_finite(g) {
        let x = vec![g.f64_in(-100.0..100.0)];
        let y = vec![g.f64_in(-100.0..100.0)];
        let w = g.usize_in(0..4);
        assert_kernels_finite(&x, &y, w);
    }

    #[cases(64)]
    fn zero_series_keep_kernels_finite(g) {
        // A constant series z-normalizes to all zeros; kernels must treat
        // the all-zero vector without NaN (e.g. CID's complexity ratio).
        let m = g.usize_in(2..48);
        let w = g.usize_in(0..8);
        let zeros = vec![0.0; m];
        assert_kernels_finite(&zeros, &zeros, w);
        let (y, _) = g.pair_f64(m..m + 1, -100.0..100.0);
        assert_kernels_finite(&zeros, &y, w);
    }

    #[cases(32)]
    fn non_finite_inputs_yield_typed_errors(g) {
        // Fallible kernels reject NaN/infinity with a typed error rather
        // than emitting NaN distances.
        let (mut x, y) = pair(g);
        let idx = g.usize_in(0..x.len());
        x[idx] = if g.usize_in(0..2) == 0 { f64::NAN } else { f64::INFINITY };
        let w = g.usize_in(0..8);
        assert!(try_dtw_distance(&x, &y, Some(w)).is_err());
        assert!(Envelope::try_new(&x, w).is_err());
        let env = Envelope::try_new(&y, w).expect("finite envelope input");
        assert!(try_lb_keogh(&x, &env).is_err());
    }
}
