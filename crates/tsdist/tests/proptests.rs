//! Property-based tests for the distance measures (tscheck harness).

use tscheck::Gen;
use tsdist::cid::cid;
use tsdist::dtw::{dtw_distance, dtw_path};
use tsdist::ed::euclidean;
use tsdist::lb_keogh::{lb_keogh, Envelope};

fn pair(g: &mut Gen) -> (Vec<f64>, Vec<f64>) {
    g.pair_f64(2..48, -100.0..100.0)
}

tscheck::props! {
    #[cases(64)]
    fn ed_metric_axioms(g) {
        let (x, y) = pair(g);
        assert!(euclidean(&x, &x).abs() < 1e-12);
        assert!((euclidean(&x, &y) - euclidean(&y, &x)).abs() < 1e-9);
        assert!(euclidean(&x, &y) >= 0.0);
    }

    #[cases(64)]
    fn dtw_identity_symmetry_nonneg(g) {
        let (x, y) = pair(g);
        assert!(dtw_distance(&x, &x, None).abs() < 1e-12);
        let a = dtw_distance(&x, &y, None);
        let b = dtw_distance(&y, &x, None);
        assert!((a - b).abs() < 1e-9);
        assert!(a >= 0.0);
    }

    #[cases(64)]
    fn dtw_bounded_by_ed(g) {
        let (x, y) = pair(g);
        assert!(dtw_distance(&x, &y, None) <= euclidean(&x, &y) + 1e-9);
    }

    #[cases(64)]
    fn dtw_monotone_in_window(g) {
        let (x, y) = pair(g);
        let w1 = g.usize_in(0..8);
        let w2 = g.usize_in(8..64);
        let d1 = dtw_distance(&x, &y, Some(w1));
        let d2 = dtw_distance(&x, &y, Some(w2));
        assert!(d2 <= d1 + 1e-9, "w1={w1} {d1} vs w2={w2} {d2}");
    }

    #[cases(64)]
    fn dtw_path_cost_matches_distance(g) {
        let (x, y) = pair(g);
        let (d, path) = dtw_path(&x, &y, None);
        let sum: f64 = path.iter().map(|&(i, j)| (x[i] - y[j]).powi(2)).sum();
        assert!((d * d - sum).abs() < 1e-6 * (1.0 + sum));
        assert_eq!(*path.first().unwrap(), (0, 0));
        assert_eq!(*path.last().unwrap(), (x.len() - 1, y.len() - 1));
    }

    #[cases(64)]
    fn lb_keogh_lower_bounds_cdtw(g) {
        let (x, y) = pair(g);
        let w = g.usize_in(0..10);
        let env = Envelope::new(&y, w);
        let lb = lb_keogh(&x, &env);
        let d = dtw_distance(&x, &y, Some(w));
        assert!(lb <= d + 1e-9, "LB {lb} > cDTW {d} (w={w})");
    }

    #[cases(64)]
    fn lb_keogh_shrinks_with_window(g) {
        let (x, y) = pair(g);
        let w = g.usize_in(0..10);
        let lb_small = lb_keogh(&x, &Envelope::new(&y, w));
        let lb_large = lb_keogh(&x, &Envelope::new(&y, w + 5));
        assert!(lb_large <= lb_small + 1e-9);
    }

    #[cases(64)]
    fn cid_dominates_ed_and_is_symmetric(g) {
        let (x, y) = pair(g);
        let c = cid(&x, &y);
        assert!(c >= euclidean(&x, &y) - 1e-9);
        assert!((c - cid(&y, &x)).abs() < 1e-9);
        assert!(cid(&x, &x).abs() < 1e-12);
    }
}
