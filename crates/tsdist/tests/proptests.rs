//! Property-based tests for the distance measures.

use proptest::prelude::*;
use tsdist::cid::cid;
use tsdist::dtw::{dtw_distance, dtw_path};
use tsdist::ed::euclidean;
use tsdist::lb_keogh::{lb_keogh, Envelope};

fn pair() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (2usize..48).prop_flat_map(|m| {
        (
            prop::collection::vec(-100.0f64..100.0, m..=m),
            prop::collection::vec(-100.0f64..100.0, m..=m),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ed_metric_axioms((x, y) in pair()) {
        prop_assert!(euclidean(&x, &x).abs() < 1e-12);
        prop_assert!((euclidean(&x, &y) - euclidean(&y, &x)).abs() < 1e-9);
        prop_assert!(euclidean(&x, &y) >= 0.0);
    }

    #[test]
    fn dtw_identity_symmetry_nonneg((x, y) in pair()) {
        prop_assert!(dtw_distance(&x, &x, None).abs() < 1e-12);
        let a = dtw_distance(&x, &y, None);
        let b = dtw_distance(&y, &x, None);
        prop_assert!((a - b).abs() < 1e-9);
        prop_assert!(a >= 0.0);
    }

    #[test]
    fn dtw_bounded_by_ed((x, y) in pair()) {
        prop_assert!(dtw_distance(&x, &y, None) <= euclidean(&x, &y) + 1e-9);
    }

    #[test]
    fn dtw_monotone_in_window((x, y) in pair(), w1 in 0usize..8, w2 in 8usize..64) {
        let d1 = dtw_distance(&x, &y, Some(w1));
        let d2 = dtw_distance(&x, &y, Some(w2));
        prop_assert!(d2 <= d1 + 1e-9, "w1={w1} {d1} vs w2={w2} {d2}");
    }

    #[test]
    fn dtw_path_cost_matches_distance((x, y) in pair()) {
        let (d, path) = dtw_path(&x, &y, None);
        let sum: f64 = path.iter().map(|&(i, j)| (x[i] - y[j]).powi(2)).sum();
        prop_assert!((d * d - sum).abs() < 1e-6 * (1.0 + sum));
        prop_assert_eq!(*path.first().unwrap(), (0, 0));
        prop_assert_eq!(*path.last().unwrap(), (x.len() - 1, y.len() - 1));
    }

    #[test]
    fn lb_keogh_lower_bounds_cdtw((x, y) in pair(), w in 0usize..10) {
        let env = Envelope::new(&y, w);
        let lb = lb_keogh(&x, &env);
        let d = dtw_distance(&x, &y, Some(w));
        prop_assert!(lb <= d + 1e-9, "LB {lb} > cDTW {d} (w={w})");
    }

    #[test]
    fn lb_keogh_shrinks_with_window((x, y) in pair(), w in 0usize..10) {
        let lb_small = lb_keogh(&x, &Envelope::new(&y, w));
        let lb_large = lb_keogh(&x, &Envelope::new(&y, w + 5));
        prop_assert!(lb_large <= lb_small + 1e-9);
    }

    #[test]
    fn cid_dominates_ed_and_is_symmetric((x, y) in pair()) {
        let c = cid(&x, &y);
        prop_assert!(c >= euclidean(&x, &y) - 1e-9);
        prop_assert!((c - cid(&y, &x)).abs() < 1e-9);
        prop_assert!(cid(&x, &x).abs() < 1e-12);
    }
}
